"""Quickstart: build a tiny graph database with a K-NN graph and run an
extended BGP mixing an equijoin with a similarity clause.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GraphData,
    GraphDatabase,
    RingKnnEngine,
    TermDictionary,
    build_knn_graph,
    parse_query,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Author a small labeled graph with readable terms.
    # ------------------------------------------------------------------
    dictionary = TermDictionary()
    triples = dictionary.encode_triples(
        [
            ("alice", "follows", "bob"),
            ("alice", "follows", "carol"),
            ("bob", "follows", "dave"),
            ("carol", "follows", "dave"),
            ("dave", "follows", "erin"),
        ]
    )
    graph = GraphData(triples)

    # ------------------------------------------------------------------
    # 2. Give each person an "interest vector" and build the K-NN graph
    #    once, at indexing time (Sec. 3.2 of the paper: K is fixed here;
    #    queries may then use any k <= K).
    # ------------------------------------------------------------------
    people = ["alice", "bob", "carol", "dave", "erin"]
    ids = np.array(sorted(dictionary.id_of(p) for p in people))
    rng = np.random.default_rng(0)
    interests = rng.normal(size=(len(people), 4))
    knn = build_knn_graph(interests, K=3, members=ids)

    db = GraphDatabase(graph, knn)

    # ------------------------------------------------------------------
    # 3. Query: pairs of people where ?x follows ?y AND ?y is among the
    #    2 most interest-similar people to ?x.
    # ------------------------------------------------------------------
    query = parse_query("(?x, follows, ?y) . knn(?x, ?y, 2)", dictionary)
    result = RingKnnEngine(db).evaluate(query)

    print(f"query: {query}")
    print(f"{len(result.solutions)} solution(s):")
    for solution in result.solutions:
        readable = dictionary.decode_solution(solution)
        print("  " + ", ".join(f"?{v.name} = {t}" for v, t in readable.items()))
    print(
        f"stats: {result.stats.bindings} bindings, "
        f"{result.stats.leap_calls} leaps, {result.elapsed * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
