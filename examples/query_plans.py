"""Advanced features tour: plan explanation, multiple K-NN relations,
truncated neighbor lists, and direction-free similarity.

A "songs" catalog where each track has two independent descriptor
spaces — tonality and lyrics (the paper's motivating example 4: "pairs
of songs with similar tonality AND lyrics") — with the lyrics K-NN graph
truncated by a maximum distance, so some tracks have short lists.

Run with::

    python examples/query_plans.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GraphData,
    GraphDatabase,
    RingKnnEngine,
    Var,
    explain,
    parse_query,
    symmetric_to_directed,
)
from repro.knn.builders import build_knn_graph_bruteforce

N_SONGS = 100
BY_ARTIST = N_SONGS          # predicate: song -> artist
ARTIST_BASE = N_SONGS + 1


def build_catalog(seed: int = 21) -> GraphDatabase:
    rng = np.random.default_rng(seed)
    n_artists = 12
    artist = rng.integers(0, n_artists, size=N_SONGS)
    triples = [
        (int(s), BY_ARTIST, int(ARTIST_BASE + artist[s]))
        for s in range(N_SONGS)
    ]
    graph = GraphData(triples)
    # Two independent similarity relations over the same song ids; the
    # lyrics one truncated so far-apart lyrics are not neighbors at all.
    tonality = build_knn_graph_bruteforce(
        rng.normal(size=(N_SONGS, 4)), K=8
    )
    lyrics = build_knn_graph_bruteforce(
        rng.normal(size=(N_SONGS, 12)), K=8, max_distance=18.0
    )
    print(
        "lyrics K-NN truncated: "
        f"{int((lyrics.lengths < 8).sum())}/{N_SONGS} songs have < 8 "
        "neighbors within the distance cap"
    )
    return GraphDatabase(
        graph, knn_graphs={"tonality": tonality, "lyrics": lyrics}
    )


def main() -> None:
    db = build_catalog()
    engine = RingKnnEngine(db)

    # Songs by the same artist, similar in tonality AND lyrics.
    query = parse_query(
        f"(?a, {BY_ARTIST}, ?artist) . (?b, {BY_ARTIST}, ?artist) "
        ". knn:tonality(?a, ?b, 6) . knn:lyrics(?a, ?b, 6)"
    )
    print("\n--- plan explanation " + "-" * 40)
    print(explain(db, query).format())

    result = engine.evaluate(query, timeout=60)
    print(f"\n{len(result.solutions)} same-artist doubly-similar pairs")
    for sol in result.solutions[:5]:
        print(f"  songs {sol[Var('a')]} and {sol[Var('b')]}")

    # Symmetric similarity vs its system-oriented (acyclic) rewrite.
    print("\n--- Sec. 7 direction-free rewrite " + "-" * 27)
    symmetric = parse_query(
        f"(?a, {BY_ARTIST}, ?artist) . (?b, {BY_ARTIST}, ?artist) "
        ". sim:tonality(?a, ?b, 6)"
    )
    directed = symmetric_to_directed(symmetric)
    exact = engine.evaluate(symmetric, timeout=60)
    approx = engine.evaluate(directed, timeout=60)
    exact_set = set(exact.sorted_solutions())
    approx_set = set(approx.sorted_solutions())
    print(f"symmetric (exact):    {len(exact_set):4d} answers, "
          f"{exact.elapsed:.3f}s, constraint graph has a 2-cycle")
    print(f"directed  (acyclic):  {len(approx_set):4d} answers, "
          f"{approx.elapsed:.3f}s, wco by Thm. 2")
    print(f"every exact answer kept: {exact_set <= approx_set}; "
          f"precision of rewrite: {len(exact_set & approx_set) / len(approx_set):.2f}")


if __name__ == "__main__":
    main()
