"""Range-based similarity joins on geographic data (Sec. 3.3 extension;
the paper's motivating example 1: stadiums of clubs in the same league
that are geographically close).

Builds a synthetic map of stadiums with league memberships, indexes
coordinates in a :class:`DistanceRangeIndex`, and answers:

* pairs of same-league stadiums within a distance threshold, via a
  ``dist(x, y) <= d`` clause evaluated inside LTJ;
* the same query through the post-processing baseline, checking both
  agree.

Run with::

    python examples/geo_range_join.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BaselineEngine,
    DistanceRangeIndex,
    GraphData,
    GraphDatabase,
    RingKnnEngine,
    Var,
    build_knn_graph,
    parse_query,
)

N_STADIUMS = 120
N_LEAGUES = 5
IN_LEAGUE = N_STADIUMS          # predicate id
LEAGUE_BASE = N_STADIUMS + 1    # league constants follow


def main() -> None:
    rng = np.random.default_rng(8)
    # Stadium coordinates clustered by region; leagues assigned with a
    # regional bias so close stadiums often share a league.
    regions = rng.uniform(0, 100, size=(N_LEAGUES, 2))
    league = rng.integers(0, N_LEAGUES, size=N_STADIUMS)
    coords = regions[league] + rng.normal(scale=12.0, size=(N_STADIUMS, 2))

    triples = [
        (int(s), IN_LEAGUE, int(LEAGUE_BASE + league[s]))
        for s in range(N_STADIUMS)
    ]
    graph = GraphData(triples)
    members = np.arange(N_STADIUMS)
    knn = build_knn_graph(coords, K=10, members=members)
    distance_index = DistanceRangeIndex(coords, d_max=30.0, members=members)
    db = GraphDatabase(graph, knn, distance_index)

    # Same-league stadium pairs within 10 distance units.
    query = parse_query(
        f"(?a, {IN_LEAGUE}, ?l) . (?b, {IN_LEAGUE}, ?l) . dist(?a, ?b, 10.0)"
    )
    print("query:", query)
    ring = RingKnnEngine(db).evaluate(query, timeout=60)
    base = BaselineEngine(db).evaluate(query, timeout=60)
    assert ring.sorted_solutions() == base.sorted_solutions()
    pairs = {
        tuple(sorted((s[Var("a")], s[Var("b")]))) for s in ring.solutions
    }
    print(
        f"  ring-knn: {len(ring.solutions)} matches "
        f"({len(pairs)} unordered pairs) in {ring.elapsed:.3f}s"
    )
    print(f"  baseline: {base.elapsed:.3f}s (same answers)")

    # Contrast with the k-NN flavor: each stadium's geographically
    # closest stadium, required to be in the same league (k = 1).
    knn_query = parse_query(
        f"(?a, {IN_LEAGUE}, ?l) . (?b, {IN_LEAGUE}, ?l) . knn(?a, ?b, 1)"
    )
    nearest = RingKnnEngine(db).evaluate(knn_query, timeout=60)
    print(
        f"\nstadiums whose single nearest neighbor shares their league: "
        f"{len(nearest.solutions)} of {N_STADIUMS}"
    )
    for sol in nearest.solutions[:5]:
        a, b = sol[Var("a")], sol[Var("b")]
        d = float(np.linalg.norm(coords[a] - coords[b]))
        print(f"  stadium {a} -> {b} (distance {d:.1f})")


if __name__ == "__main__":
    main()
