"""Multimedia similarity joins on the Wikidata+IMGpedia-like benchmark —
the paper's headline scenario ("visually similar works", Sec. 1 example
3, and the Sec. 6 evaluation setting).

Demonstrates, on the synthetic benchmark graph:

1. a Q3-shaped query — pairs of *visually similar* images depicted by
   the same entity — under all three engines, comparing their times;
2. the k*-best semantics of Sec. 7: "give me the 5 best visually
   similar companions of this image", growing k automatically.

Run with::

    python examples/multimedia_search.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BaselineEngine,
    GraphDatabase,
    RingKnnEngine,
    RingKnnSEngine,
    evaluate_k_star,
    parse_query,
)
from repro.datasets.wikimedia import WikimediaConfig, generate_benchmark


def main() -> None:
    bench = generate_benchmark(
        WikimediaConfig(
            n_entities=500, n_images=220, n_misc_triples=3000, K=16, seed=12
        )
    )
    db = GraphDatabase(bench.graph, bench.knn_graph)
    depicts = bench.depicts

    # ------------------------------------------------------------------
    # Q3 shape: an entity ?e depicting two visually similar images.
    # ------------------------------------------------------------------
    query = parse_query(
        f"(?e, {depicts}, ?img) . (?e, {depicts}, ?other) . knn(?img, ?other, 8)"
    )
    print("query:", query)
    for engine in (BaselineEngine(db), RingKnnEngine(db), RingKnnSEngine(db)):
        result = engine.evaluate(query, timeout=60)
        print(
            f"  {engine.name:<11} {len(result.solutions):5d} answers in "
            f"{result.elapsed:.3f}s ({result.stats.bindings} bindings)"
        )

    # ------------------------------------------------------------------
    # k*-best (Sec. 7): grow k until 5 similar-companion answers exist
    # for one specific image.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(3)
    image = int(rng.choice(bench.image_ids))
    template = parse_query(
        f"(?e, {depicts}, {image}) . (?e, {depicts}, ?other) "
        f". knn({image}, ?other, 1)"
    )
    outcome = evaluate_k_star(
        RingKnnEngine(db), template, k_star=5, max_k=bench.knn_graph.K
    )
    print(
        f"\nk*-best for image {image}: k grew to {outcome.k} "
        f"({'satisfied' if outcome.satisfied else 'exhausted K'}) with "
        f"{len(outcome.solutions)} answers after {outcome.evaluations} "
        "evaluations"
    )
    for sol in outcome.solutions[:5]:
        values = {v.name: c for v, c in sol.items()}
        print(f"  entity {values['e']} also depicts image {values['other']}")


if __name__ == "__main__":
    main()
