"""The paper's motivating example (Sec. 1): follow recommendations from
a diamond motif *enriched with similarity*.

Twitter's diamond pattern recommends w to x from pure topology:

    (x, Follows, y), (x, Follows, z), (y, Follows, z),
    (y, Follows, w), (z, Follows, w)

The paper's enriched version replaces two of the topological edges with
similarity between users (same interests / posts / region):

    (x, Follows, y), (x, Follows, z), y ~ z, (y, Follows, w), z ~ w

This example generates a synthetic social network with clustered
interest vectors, runs both queries with the Ring-KNN engine, and shows
that the similarity-enriched diamond surfaces recommendations the
topology-only version misses.

Run with::

    python examples/social_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphData, GraphDatabase, RingKnnEngine, Var, build_knn_graph, parse_query

N_USERS = 150
FOLLOWS = N_USERS  # predicate id placed after the user ids


def build_network(seed: int = 4) -> tuple[GraphDatabase, np.ndarray]:
    """A follows-graph where users in the same interest cluster are more
    likely to follow each other (homophily), plus the interests K-NN."""
    rng = np.random.default_rng(seed)
    n_clusters = 6
    cluster = rng.integers(0, n_clusters, size=N_USERS)
    centers = rng.normal(scale=3.0, size=(n_clusters, 5))
    interests = centers[cluster] + rng.normal(size=(N_USERS, 5))

    triples = []
    for u in range(N_USERS):
        n_follow = 3 + int(rng.integers(0, 5))
        same = np.flatnonzero(cluster == cluster[u])
        for _ in range(n_follow):
            if same.size > 1 and rng.random() < 0.7:
                v = int(rng.choice(same))
            else:
                v = int(rng.integers(0, N_USERS))
            if v != u:
                triples.append((u, FOLLOWS, v))
    graph = GraphData(triples)
    knn = build_knn_graph(interests, K=10, members=np.arange(N_USERS))
    return GraphDatabase(graph, knn), cluster


def main() -> None:
    db, _cluster = build_network()
    engine = RingKnnEngine(db)

    topo_query = parse_query(
        f"(?x, {FOLLOWS}, ?y) . (?x, {FOLLOWS}, ?z) . (?y, {FOLLOWS}, ?z)"
        f" . (?y, {FOLLOWS}, ?w) . (?z, {FOLLOWS}, ?w)"
    )
    sim_query = parse_query(
        f"(?x, {FOLLOWS}, ?y) . (?x, {FOLLOWS}, ?z) . sim(?y, ?z, 8)"
        f" . (?y, {FOLLOWS}, ?w) . sim(?z, ?w, 8)"
    )

    topo = engine.evaluate(topo_query, timeout=60)
    sim = engine.evaluate(sim_query, timeout=60)

    def recommendations(result):
        return {(s[Var("x")], s[Var("w")]) for s in result.solutions}

    topo_recs = recommendations(topo)
    sim_recs = recommendations(sim)
    new_recs = sim_recs - topo_recs

    print(f"topology-only diamond:  {len(topo.solutions):5d} matches, "
          f"{len(topo_recs)} distinct (x -> w) recommendations "
          f"[{topo.elapsed:.2f}s]")
    print(f"similarity-enriched:    {len(sim.solutions):5d} matches, "
          f"{len(sim_recs)} distinct recommendations [{sim.elapsed:.2f}s]")
    print(f"recommendations only found via similarity: {len(new_recs)}")
    for x, w in sorted(new_recs)[:5]:
        print(f"  suggest user {w} to user {x}")


if __name__ == "__main__":
    main()
