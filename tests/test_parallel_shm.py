"""Pool-size-sweep battery for the shared-memory zero-copy transport.

Three layers of acceptance for :mod:`repro.parallel.shm`:

* **Round trips** — Hypothesis properties per flattened structure
  (BitVector, WaveletTree, CumulativeCounts, KnnRing,
  DistanceRangeIndex): flatten → attach → query answers exactly as the
  original, over a genuinely shared segment.
* **Golden sweep** — on the Figure-2 workload, solutions and merged
  traced op counts are byte-identical to serial for pool sizes 1, 2, 4
  under *both* fork and spawn start methods (spawn proves the transport
  carries everything — nothing rides copy-on-write inheritance).
* **Lifecycle** — every created segment is unlinked after an engine
  closes, after a worker raises mid-shard, and after a ``serve-batch``
  run finishes; a subprocess asserts a full create/evaluate/exit cycle
  emits no ``resource_tracker`` warnings.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import _build
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.distance_index import DistanceRangeIndex
from repro.knn.succinct import KnnRing
from repro.obs import QueryTrace, validate_trace
from repro.parallel import forced
from repro.parallel.executor import (
    close_pools_for,
    pool_for,
    shutdown_pools,
)
from repro.parallel.scheduler import QueryScheduler
from repro.parallel.shm import (
    ScratchBuffer,
    StructureShm,
    active_segments,
    attach,
)
from repro.parallel.worker import ShardTask
from repro.query.model import ExtendedBGP, TriplePattern, Var
from repro.succinct.arrays import CumulativeCounts
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree
from tests.test_golden_opcounts import CONFIG

WORKER_COUNTS = (1, 2, 4)
START_METHODS = ("fork", "spawn")

#: Trace-document keys that legitimately differ between serial and
#: sharded runs (wall times, phase breakdown, execution metadata, and
#: the engine label itself).
_EXCLUDED = frozenset({"elapsed", "phases", "meta", "engine"})


def _comparable(trace: QueryTrace) -> dict:
    doc = trace.to_dict()
    validate_trace(doc)
    return {key: doc[key] for key in doc if key not in _EXCLUDED}


# ----------------------------------------------------------------------
# round trips: flatten -> attach -> query == original
# ----------------------------------------------------------------------
class _RoundTrip:
    """Create + attach a structure over a real shared segment, with
    guaranteed unlink (leak-checked per example).

    Assertions against the attachment run inside :meth:`check` so no
    test-frame local keeps a numpy view alive when :meth:`close` drops
    the mapping — a lingering view would turn the close into a leak.
    """

    def __init__(self, structure: object) -> None:
        self.handle = StructureShm.create(structure)
        self.attached = attach(self.handle.manifest)

    def check(self, checker, *args) -> None:
        checker(self.attached.structure, *args)

    def close(self) -> None:
        name = self.handle.name
        self.attached.close()
        self.handle.close()
        assert name not in active_segments()


def _check_bitvector(got, original, bits):
    assert isinstance(got, BitVector)
    assert len(got) == len(original)
    assert list(got) == list(original)
    for i in range(len(bits) + 1):
        assert got.rank1(i) == original.rank1(i)
        assert got.rank0(i) == original.rank0(i)
    for j in range(1, original.n_ones + 1):
        assert got.select1(j) == original.select1(j)
    for j in range(1, original.n_zeros + 1):
        assert got.select0(j) == original.select0(j)


@settings(max_examples=30, deadline=None)
@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=160))
def test_bitvector_roundtrip(bits):
    original = BitVector(bits)
    trip = _RoundTrip(original)
    try:
        trip.check(_check_bitvector, original, bits)
    finally:
        trip.close()


def _check_wavelet(got, original, sequence, sigma):
    assert isinstance(got, WaveletTree)
    assert len(got) == len(original)
    assert got.alphabet_size == original.alphabet_size
    assert got.height == original.height
    for i in range(len(sequence)):
        assert got.access(i) == original.access(i)
    for c in range(sigma):
        assert got.total_count(c) == original.total_count(c)
        for i in range(0, len(sequence) + 1, 7):
            assert got.rank(c, i) == original.rank(c, i)
        for j in range(1, original.total_count(c) + 1):
            assert got.select(c, j) == original.select(c, j)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), sigma=st.integers(1, 12))
def test_wavelet_tree_roundtrip(data, sigma):
    sequence = data.draw(
        st.lists(st.integers(0, sigma - 1), min_size=1, max_size=120)
    )
    original = WaveletTree(sequence, sigma)
    trip = _RoundTrip(original)
    try:
        trip.check(_check_wavelet, original, sequence, sigma)
    finally:
        trip.close()


def _check_cumcounts(got, original, sigma):
    assert isinstance(got, CumulativeCounts)
    assert len(got) == len(original)
    assert got.alphabet_size == original.alphabet_size
    for c in range(sigma + 1):
        assert got.before(c) == original.before(c)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), sigma=st.integers(1, 12))
def test_cumulative_counts_roundtrip(data, sigma):
    column = data.draw(
        st.lists(st.integers(0, sigma - 1), min_size=1, max_size=120)
    )
    original = CumulativeCounts(column, sigma)
    trip = _RoundTrip(original)
    try:
        trip.check(_check_cumcounts, original, sigma)
    finally:
        trip.close()


def _check_knn_ring(got, original):
    assert isinstance(got, KnnRing)
    assert got.K == original.K
    assert np.array_equal(got.members, original.members)
    for u in original.members.tolist():
        for k in range(1, original.K + 1):
            assert got.neighbors_of(u, k) == original.neighbors_of(u, k)
            assert got.reverse_neighbors_of(
                u, k
            ) == original.reverse_neighbors_of(u, k)
            assert got.forward_count(u, k) == original.forward_count(u, k)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(5, 14))
def test_knn_ring_roundtrip(seed, n):
    points = np.random.default_rng(seed).normal(size=(n, 3))
    original = KnnRing(build_knn_graph_bruteforce(points, K=3))
    trip = _RoundTrip(original)
    try:
        trip.check(_check_knn_ring, original)
    finally:
        trip.close()


def _check_distance_index(got, original):
    assert isinstance(got, DistanceRangeIndex)
    assert got.d_max == original.d_max
    assert np.array_equal(got.members, original.members)
    for u in original.members.tolist():
        for d in (0.5, 1.25, 2.5):
            assert got.neighbors_within(u, d) == original.neighbors_within(
                u, d
            )
            assert got.count_within(u, d) == original.count_within(u, d)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(5, 14))
def test_distance_range_index_roundtrip(seed, n):
    points = np.random.default_rng(seed).normal(size=(n, 3))
    original = DistanceRangeIndex(points, d_max=2.5)
    trip = _RoundTrip(original)
    try:
        trip.check(_check_distance_index, original)
    finally:
        trip.close()


def test_scratch_buffer_publish_grow_and_reuse():
    scratch = ScratchBuffer()
    try:
        name1, n1 = scratch.publish(list(range(100)))
        assert n1 == 100
        assert name1 in active_segments()
        # Re-publishing within capacity reuses the same segment.
        name2, n2 = scratch.publish([7, 8, 9])
        assert (name2, n2) == (name1, 3)
        # Growing past capacity re-registers under a new name and
        # unlinks the old segment.
        name3, n3 = scratch.publish(list(range(10_000)))
        assert name3 != name1
        assert n3 == 10_000
        assert name1 not in active_segments()
        assert name3 in active_segments()
    finally:
        scratch.close()
    assert scratch.name is None


# ----------------------------------------------------------------------
# golden Figure-2 sweep: workers x start methods, byte-identical
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def figure2():
    db, workload = _build(CONFIG)
    queries = [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]
    serial = RingKnnEngine(db)
    expected = []
    for query in queries:
        trace = QueryTrace()
        result = serial.evaluate(query, trace=trace)
        expected.append((result.solutions, _comparable(trace)))
    # The scheduler routes through the auto engine, whose per-query
    # strategy choice (ring-knn vs ring-knn-s) fixes the solution order.
    from repro.engines.auto import AutoEngine

    auto = AutoEngine(db)
    auto_expected = [auto.evaluate(query).solutions for query in queries]
    return db, queries, expected, auto_expected


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sweep_byte_identical_to_serial(
    figure2, monkeypatch, workers, start_method
):
    db, queries, expected, _auto_expected = figure2
    monkeypatch.setenv(forced.ENV_START_METHOD, start_method)
    shutdown_pools()  # force a fresh pool under this start method
    try:
        parallel = ParallelRingKnnEngine(db, workers=workers)
        for query, (expected_solutions, expected_doc) in zip(
            queries, expected
        ):
            trace = QueryTrace()
            got = parallel.evaluate(query, trace=trace)
            assert got.solutions == expected_solutions, (
                workers,
                start_method,
                query,
            )
            assert _comparable(trace) == expected_doc, (
                workers,
                start_method,
                query,
            )
        if workers >= 2:
            assert pool_for(db, workers).start_method == start_method
    finally:
        shutdown_pools()


@pytest.mark.parametrize("start_method", START_METHODS)
def test_scheduler_batch_byte_identical_both_methods(
    figure2, monkeypatch, start_method
):
    db, queries, _expected, auto_expected = figure2
    monkeypatch.setenv(forced.ENV_START_METHOD, start_method)
    shutdown_pools()
    scheduler = QueryScheduler(db, workers=2)
    try:
        scheduler.warmup()
        results = scheduler.run_batch(queries)
        assert len(results) == len(queries)
        for result, expected_solutions in zip(results, auto_expected):
            assert result.solutions == expected_solutions
    finally:
        scheduler.close()
    assert active_segments() == ()


# ----------------------------------------------------------------------
# shm lifecycle: nothing leaks
# ----------------------------------------------------------------------
def test_segments_unlinked_after_engine_close(figure2):
    db, queries, _expected, _auto_expected = figure2
    engine = ParallelRingKnnEngine(db, workers=2)
    engine.evaluate(queries[0])
    assert active_segments(), "a warm pool must hold shared segments"
    engine.close()
    assert active_segments() == ()
    # The engine transparently restarts a pool on the next evaluation.
    result = engine.evaluate(queries[0])
    assert result.engine == "parallel-knn"
    engine.close()
    assert active_segments() == ()


def test_segments_unlinked_after_worker_raises_mid_shard(small_db):
    pool = pool_for(small_db, 2)
    segment = pool.publish_candidates([1, 2, 3, 4])
    bad = ShardTask(
        uid=pool.next_uid(),
        index=0,
        query=ExtendedBGP([TriplePattern(Var("x"), 20, Var("y"))]),
        engine="no-such-engine",
        exact_estimates=False,
        variable="x",
        span=(segment, 0, 4),
        candidates=None,
        budget=None,
        limit=None,
        traced=False,
    )
    with pytest.raises(KeyError):
        pool.map_shards([bad])
    # The pool survives a task exception and still answers correctly...
    expected = RingKnnEngine(small_db).evaluate(
        ExtendedBGP([TriplePattern(Var("x"), 20, Var("y"))])
    )
    got = ParallelRingKnnEngine(small_db, workers=2).evaluate(
        ExtendedBGP([TriplePattern(Var("x"), 20, Var("y"))])
    )
    assert got.solutions == expected.solutions
    # ...and closing it unlinks every segment it created.
    close_pools_for(small_db)
    assert active_segments() == ()


def test_segments_unlinked_after_serve_batch(tmp_path, small_db, small_graph, small_knn, small_points):
    from repro.cli import main as cli_main
    from repro.graph.io import save_bundle

    bundle = tmp_path / "small.npz"
    save_bundle(str(bundle), small_graph, small_knn, small_points)
    queries = tmp_path / "queries.txt"
    queries.write_text(
        "(?x, 20, ?y)\n"
        "(?x, 20, ?y) . (?y, 21, ?z)\n"
        "# comment\n"
        "(?x, 22, ?x)\n"
    )
    rc = cli_main(
        [
            "serve-batch",
            "--data",
            str(bundle),
            "--queries",
            str(queries),
            "--workers",
            "2",
        ]
    )
    assert rc == 0
    assert active_segments() == ()


_EXIT_SCRIPT = """
import numpy as np
from repro.engines.database import GraphDatabase
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.parallel.scheduler import QueryScheduler
from repro.query.model import ExtendedBGP, TriplePattern, Var

rng = np.random.default_rng(7)
triples = [
    (int(rng.integers(0, 20)), int(20 + rng.integers(0, 3)),
     int(rng.integers(0, 20)))
    for _ in range(120)
]
points = np.random.default_rng(11).normal(size=(20, 2))
db = GraphDatabase(GraphData(triples), build_knn_graph_bruteforce(points, K=5))
query = ExtendedBGP([TriplePattern(Var("x"), 20, Var("y"))])
engine = ParallelRingKnnEngine(db, workers=2)
engine.evaluate(query)
scheduler = QueryScheduler(db, workers=2)
scheduler.run_batch([query, query])
# Deliberately no close(): the atexit pool shutdown must unlink all
# segments, leaving nothing for the resource tracker to complain about.
print("OK")
"""


@pytest.mark.parametrize("start_method", START_METHODS)
def test_no_resource_tracker_warnings_on_exit(start_method):
    repo_src = Path(__file__).parents[1] / "src"
    env = {
        "PYTHONPATH": str(repo_src),
        "PATH": "/usr/bin:/bin",
        forced.ENV_START_METHOD: start_method,
    }
    proc = subprocess.run(
        [sys.executable, "-c", _EXIT_SCRIPT],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "leaked shared_memory" not in proc.stderr, proc.stderr
