"""Tests for the six-permutation ablation engine."""

import pytest

from repro.engines.classic import ClassicSixPermEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.query.parser import parse_query

QUERIES = [
    "(?x, 20, ?y) . (?y, 21, ?z)",
    "(?x, 20, ?y) . knn(?x, ?y, 4)",
    "(?x, 20, ?y) . (?y, 20, ?z) . sim(?y, ?z, 3)",
    "(?x, 22, ?x) . knn(?x, ?y, 3)",
    "(?x, ?p, ?y) . (?y, ?p, ?x)",
]


class TestClassicEngine:
    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_ring_engine(self, small_db, text):
        query = parse_query(text)
        classic = ClassicSixPermEngine(small_db).evaluate(query)
        ring = RingKnnEngine(small_db).evaluate(query)
        assert classic.sorted_solutions() == ring.sorted_solutions()

    def test_space_overhead_vs_ring(self, small_db):
        """The ablation's point: classic permutations cost several times
        the Ring's footprint (Sec. 1: 'extra index permutations')."""
        classic = ClassicSixPermEngine(small_db)
        assert classic.size_in_bytes() > small_db.ring_size_in_bytes()

    def test_timeout_and_limit(self, small_db):
        query = parse_query("(?a, ?b, ?c) . (?c, ?d, ?e)")
        limited = ClassicSixPermEngine(small_db).evaluate(query, limit=5)
        assert len(limited.solutions) == 5
        timed = ClassicSixPermEngine(small_db).evaluate(query, timeout=0.0)
        assert timed.timed_out

    def test_stats_populated(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        result = ClassicSixPermEngine(small_db).evaluate(query)
        assert result.engine == "sixperm-knn"
        assert result.stats.leap_calls > 0
