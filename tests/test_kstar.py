"""Tests for the Sec. 7 k*-best semantics."""

import pytest

from repro.engines.kstar import evaluate_k_star
from repro.engines.ring_knn import RingKnnEngine
from repro.query.parser import parse_query
from repro.utils.errors import QueryError


class TestKStar:
    def test_finds_minimal_k(self, small_db):
        engine = RingKnnEngine(small_db)
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 1)")
        # Count solutions at each k to know the ground truth.
        counts = {}
        for k in range(1, 6):
            q = parse_query(f"(?x, 20, ?y) . knn(?x, ?y, {k})")
            counts[k] = len(engine.evaluate(q).solutions)
        target = counts[3] if counts[3] > 0 else 1
        result = evaluate_k_star(engine, query, k_star=target, max_k=5)
        assert result.satisfied
        assert len(result.solutions) >= target
        # Minimality: k-1 (if any) has fewer than target solutions.
        if result.k > 1:
            assert counts[result.k - 1] < target
        assert counts[result.k] >= target

    def test_unsatisfiable_returns_max_k(self, small_db):
        engine = RingKnnEngine(small_db)
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 1)")
        result = evaluate_k_star(engine, query, k_star=10_000, max_k=5)
        assert not result.satisfied
        assert result.k == 5

    def test_k_star_one(self, small_db):
        engine = RingKnnEngine(small_db)
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 1)")
        result = evaluate_k_star(engine, query, k_star=1, max_k=5)
        assert result.evaluations >= 1
        if result.satisfied:
            assert len(result.solutions) >= 1

    def test_requires_clauses(self, small_db):
        engine = RingKnnEngine(small_db)
        query = parse_query("(?x, 20, ?y)")
        with pytest.raises(QueryError):
            evaluate_k_star(engine, query, k_star=1, max_k=5)

    def test_invalid_k_star(self, small_db):
        engine = RingKnnEngine(small_db)
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 1)")
        with pytest.raises(QueryError):
            evaluate_k_star(engine, query, k_star=0, max_k=5)

    def test_symmetric_clauses_resized_together(self, small_db):
        engine = RingKnnEngine(small_db)
        query = parse_query("(?x, 20, ?y) . sim(?x, ?y, 1)")
        result = evaluate_k_star(engine, query, k_star=1, max_k=5)
        # Whatever k is chosen, both directions used the same k: verify
        # by re-evaluating explicitly.
        q = parse_query(f"(?x, 20, ?y) . sim(?x, ?y, {result.k})")
        explicit = engine.evaluate(q)
        assert sorted(
            tuple(sorted((v.name, c) for v, c in s.items()))
            for s in result.solutions
        ) == explicit.sorted_solutions()
