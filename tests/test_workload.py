"""Tests for the Q1-Q5 workload generator (Sec. 6.1 construction rules)."""

import pytest

from repro.bounds.constraint_graph import ConstraintGraph
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.query.model import Var
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def workload(bench):
    return generate_workload(
        bench,
        WorkloadConfig(k=4, n_q1=4, n_q2=3, n_q3=4, n_q4=3, n_q5=4, seed=9),
    )


class TestFamilies:
    def test_all_families_present(self, workload):
        assert set(workload) == {
            "Q1", "Q1b", "Q2", "Q2b", "Q2t", "Q3", "Q4", "Q5",
        }

    def test_family_sizes(self, workload):
        assert len(workload["Q1"]) == 4
        assert len(workload["Q2"]) == 3
        assert len(workload["Q4"]) == 3

    def test_q1_one_directed_clause(self, workload):
        for q in workload["Q1"]:
            assert len(q.clauses) == 1
            assert ConstraintGraph(q).is_acyclic()

    def test_q1b_symmetric_pair(self, workload):
        for q in workload["Q1b"]:
            assert len(q.clauses) == 2
            a, b = q.clauses
            assert a.x == b.y and a.y == b.x
            g = ConstraintGraph(q)
            assert not g.is_acyclic()
            assert g.is_single_2_cyclic()

    def test_q2_chain(self, workload):
        for q in workload["Q2"]:
            assert len(q.clauses) == 2
            assert ConstraintGraph(q).is_acyclic()
            # Chain x -> y -> z shares the middle variable.
            assert q.clauses[0].y == q.clauses[1].x

    def test_q2b_two_cycles(self, workload):
        for q in workload["Q2b"]:
            assert len(q.clauses) == 4
            assert not ConstraintGraph(q).is_acyclic()

    def test_q2t_triangle(self, workload):
        for q in workload["Q2t"]:
            assert len(q.clauses) == 3
            g = ConstraintGraph(q)
            assert not g.is_acyclic()
            assert not g.is_single_2_cyclic()

    def test_q3_extends_with_similar_pair(self, workload, bench):
        for q in workload["Q3"]:
            assert len(q.clauses) == 1
            clause = q.clauses[0]
            assert clause.x == Var("y") and clause.y == Var("y2")
            # Both y and y' are objects of depicts triples sharing x.
            depicts = [t for t in q.triples if t.p == bench.depicts]
            assert len(depicts) == 2
            assert depicts[0].s == depicts[1].s

    def test_q4_copies_all_y_triples(self, workload):
        for q in workload["Q4"]:
            y_triples = [t for t in q.triples if Var("y") in t.variables]
            y2_triples = [t for t in q.triples if Var("y2") in t.variables]
            assert len(y_triples) >= 2  # "participates in more than one"
            assert len(y_triples) == len(y2_triples)

    def test_q5_has_lonely_variables(self, workload):
        for q in workload["Q5"]:
            lonely = set(q.lonely_variables())
            assert Var("l1") in lonely and Var("l2") in lonely

    def test_deterministic(self, bench):
        cfg = WorkloadConfig(k=4, n_q1=3, seed=42)
        assert generate_workload(bench, cfg) == generate_workload(bench, cfg)

    def test_k_bound_checked(self, bench):
        with pytest.raises(ValidationError):
            generate_workload(bench, WorkloadConfig(k=100))


class TestNonEmptiness:
    def test_base_patterns_are_satisfiable(self, workload, bench_db):
        """The mined q_{x} snippets must individually match the graph
        (family semantics then decide whether the join is empty)."""
        from repro.engines.ring_knn import RingKnnSEngine
        from repro.query.model import ExtendedBGP

        engine = RingKnnSEngine(bench_db)
        for q in workload["Q1"]:
            base = ExtendedBGP(list(q.triples))
            result = engine.evaluate(base, timeout=30)
            assert result.solutions, q
