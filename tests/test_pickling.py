"""Pickle round-trips of the succinct structures.

The parallel executor ships a :class:`GraphDatabase` to pool workers on
platforms without ``fork`` (and the pool machinery may pickle it even
under fork, e.g. for ``spawn`` fallbacks), so every succinct structure
must round-trip through pickle — *without* hauling its plain-int hot-path
caches (``_words_i``, ``_cum_i``, ...) along: those are redundant
``.tolist()`` mirrors of numpy arrays whose boxed ints dominate the
payload. They are dropped by ``__getstate__`` and rebuilt lazily on
first use after unpickling.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.distance_index import DistanceRangeIndex
from repro.knn.succinct import KnnRing
from repro.query.model import ExtendedBGP, SimClause, TriplePattern, Var
from repro.succinct.arrays import CumulativeCounts
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(11)


def test_bitvector_roundtrip(rng):
    bv = BitVector(rng.integers(0, 2, 2_000))
    payload = pickle.dumps(bv)
    # The plain-int mirrors must not be serialized.
    assert b"_words_i" not in payload
    assert b"_cum1_i" not in payload
    assert b"_cum0_i" not in payload
    copy = pickle.loads(payload)
    assert len(copy) == len(bv)
    assert copy.n_ones == bv.n_ones
    for i in range(0, len(bv), 97):
        assert copy.access(i) == bv.access(i)
        assert copy.rank1(i) == bv.rank1(i)
    for j in range(1, bv.n_ones + 1, 53):
        assert copy.select1(j) == bv.select1(j)
    # The caches rebuild lazily and identically.
    assert copy._words_i == bv._words_i
    assert copy._cum1_i == bv._cum1_i


def test_wavelet_tree_roundtrip(rng):
    values = rng.integers(0, 50, 1_500)
    wt = WaveletTree(values, 50)
    wt.ops = object()  # a recorder must never travel across processes
    payload = pickle.dumps(wt)
    assert b"_counts_i" not in payload
    copy = pickle.loads(payload)
    assert copy.ops is None
    assert copy._memo_users == 0
    assert copy._memo_rank is None
    assert copy._memo_next is None
    wt.ops = None
    assert len(copy) == len(wt)
    for c in range(0, 50, 7):
        assert copy.total_count(c) == wt.total_count(c)
        for i in range(0, len(wt), 211):
            assert copy.rank(c, i) == wt.rank(c, i)
    for i in range(0, len(wt), 131):
        assert copy.access(i) == wt.access(i)
    assert copy._counts_i == wt._counts_i


def test_cumulative_counts_roundtrip(rng):
    counts = CumulativeCounts(rng.integers(0, 30, 500), 30)
    payload = pickle.dumps(counts)
    assert b"_cum_i" not in payload
    copy = pickle.loads(payload)
    assert len(copy) == len(counts)
    assert copy.alphabet_size == counts.alphabet_size
    assert copy._cum_i == counts._cum_i


def _knn_fixture(rng):
    points = rng.normal(size=(12, 2))
    return points, build_knn_graph_bruteforce(points, K=3)


def test_knn_ring_roundtrip(rng):
    _points, graph = _knn_fixture(rng)
    ring = KnnRing(graph)
    payload = pickle.dumps(ring)
    assert b"_members_i" not in payload
    assert b"_s_offsets_i" not in payload
    copy = pickle.loads(payload)
    assert copy.K == ring.K
    assert copy.num_members == ring.num_members
    assert not copy.members.flags.writeable
    assert copy._members_i == ring._members_i
    assert copy._s_offsets_i == ring._s_offsets_i
    for node in copy._members_i:
        for k in (1, ring.K):
            assert copy.forward_range(node, k) == ring.forward_range(node, k)


def test_distance_index_roundtrip(rng):
    points, _graph = _knn_fixture(rng)
    index = DistanceRangeIndex(points, d_max=1.5)
    payload = pickle.dumps(index)
    assert b"_members_i" not in payload
    copy = pickle.loads(payload)
    assert copy.d_max == index.d_max
    assert not copy.members.flags.writeable
    assert copy._members_i == index._members_i
    for u in copy._members_i[:6]:
        assert copy.neighbors_within(u, 0.9) == index.neighbors_within(u, 0.9)


def test_graph_database_roundtrip_query_equality(rng):
    triples = [
        (int(rng.integers(0, 12)), 50, int(rng.integers(0, 12)))
        for _ in range(40)
    ]
    points, graph = _knn_fixture(rng)
    db = GraphDatabase(
        GraphData(triples), graph,
        distance_index=DistanceRangeIndex(points, d_max=1.5),
    )
    copy = pickle.loads(pickle.dumps(db))
    x, y, z = Var("x"), Var("y"), Var("z")
    query = ExtendedBGP(
        [TriplePattern(x, 50, y)], clauses=[SimClause(y, 2, z)]
    )
    original = RingKnnEngine(db).evaluate(query)
    rehydrated = RingKnnEngine(copy).evaluate(query)
    assert rehydrated.solutions == original.solutions
    assert rehydrated.stats.leap_calls == original.stats.leap_calls
    assert rehydrated.stats.bindings == original.stats.bindings
