"""Unit tests for the Figure-2 measurement model (EngineSeries etc.)."""

import pytest

from repro.experiments.figure2 import EngineSeries, FamilyResult


class TestEngineSeries:
    def test_empty_series(self):
        s = EngineSeries()
        assert s.mean == 0.0
        assert s.median == 0.0
        assert s.percentile(90) == 0.0
        assert s.mean_sim_bind_fraction is None

    def test_mean_median(self):
        s = EngineSeries(times=[1.0, 2.0, 6.0])
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(2.0)

    def test_percentiles(self):
        s = EngineSeries(times=list(map(float, range(1, 11))))
        assert s.percentile(90) == pytest.approx(9.1)
        assert s.percentile(50) == s.median

    def test_sim_bind_fraction_mean(self):
        s = EngineSeries(sim_bind_fractions=[0.0, 0.5, 1.0])
        assert s.mean_sim_bind_fraction == pytest.approx(0.5)


class TestFamilyResult:
    def test_speedup(self):
        fr = FamilyResult(
            "Q1",
            {
                "baseline": EngineSeries(times=[4.0]),
                "ring-knn": EngineSeries(times=[1.0]),
            },
        )
        assert fr.speedup("ring-knn") == pytest.approx(4.0)

    def test_speedup_infinite_when_engine_instant(self):
        fr = FamilyResult(
            "Q1",
            {
                "baseline": EngineSeries(times=[4.0]),
                "ring-knn": EngineSeries(),
            },
        )
        assert fr.speedup("ring-knn") == float("inf")
