"""Tests for the variable-ordering strategies (Secs. 4-5)."""

import pytest

from repro.ltj.ordering import (
    ConstraintAwareOrdering,
    FixedOrdering,
    MinCandidatesOrdering,
    OrderingContext,
    TopologicalOrdering,
)
from repro.query.model import Var
from repro.utils.errors import QueryError

X, Y, Z, L = Var("x"), Var("y"), Var("z"), Var("l")


def make_context(unbound, estimates, lonely=(), edges=()):
    return OrderingContext(
        unbound=tuple(unbound),
        estimates=dict(estimates),
        lonely=frozenset(lonely),
        constraint_edges=tuple(edges),
    )


class TestMinCandidates:
    def test_picks_minimum_estimate(self):
        ctx = make_context([X, Y, Z], {X: 5, Y: 2, Z: 9})
        assert MinCandidatesOrdering().choose(ctx) == Y

    def test_lonely_deferred(self):
        ctx = make_context([X, L], {X: 100, L: 1}, lonely=[L])
        assert MinCandidatesOrdering().choose(ctx) == X

    def test_only_lonely_left(self):
        ctx = make_context([L], {L: 7}, lonely=[L])
        assert MinCandidatesOrdering().choose(ctx) == L

    def test_tie_break_stable(self):
        ctx = make_context([X, Y], {X: 3, Y: 3})
        assert MinCandidatesOrdering().choose(ctx) == X


class TestConstraintAware:
    def test_marked_targets_deferred(self):
        # x <|_k y: y is marked; choose x even though y is cheaper.
        ctx = make_context([X, Y], {X: 100, Y: 1}, edges=[(X, Y)])
        assert ConstraintAwareOrdering().choose(ctx) == X

    def test_all_marked_falls_back_to_min(self):
        # 2-cycle: both marked; falls back to min estimate.
        ctx = make_context([X, Y], {X: 9, Y: 4}, edges=[(X, Y), (Y, X)])
        assert ConstraintAwareOrdering().choose(ctx) == Y

    def test_edge_disappears_when_source_bound(self):
        # After x is bound the edge is gone, y is free to be chosen.
        ctx = make_context([Y, Z], {Y: 1, Z: 5}, edges=[])
        assert ConstraintAwareOrdering().choose(ctx) == Y

    def test_lonely_still_last(self):
        ctx = make_context(
            [X, Y, L], {X: 10, Y: 1, L: 0}, lonely=[L], edges=[(X, Y)]
        )
        assert ConstraintAwareOrdering().choose(ctx) == X

    def test_marked_nonlonely_beats_lonely(self):
        # Even fully-marked regular variables go before lonely ones.
        ctx = make_context(
            [X, Y, L], {X: 10, Y: 20, L: 0}, lonely=[L],
            edges=[(X, Y), (Y, X)],
        )
        assert ConstraintAwareOrdering().choose(ctx) == X


class TestTopological:
    def test_respects_edges(self):
        ordering = TopologicalOrdering([(X, Y), (Y, Z)])
        ctx = make_context([X, Y, Z], {X: 9, Y: 1, Z: 1})
        assert ordering.choose(ctx) == X
        ctx2 = make_context([Y, Z], {Y: 9, Z: 1})
        assert ordering.choose(ctx2) == Y

    def test_rejects_cycles(self):
        with pytest.raises(QueryError):
            TopologicalOrdering([(X, Y), (Y, X)])

    def test_no_edges_is_min_estimate(self):
        ordering = TopologicalOrdering([])
        ctx = make_context([X, Y], {X: 5, Y: 2})
        assert ordering.choose(ctx) == Y


class TestFixed:
    def test_follows_given_order(self):
        ordering = FixedOrdering([Z, X, Y])
        ctx = make_context([X, Y, Z], {X: 0, Y: 0, Z: 100})
        assert ordering.choose(ctx) == Z
        ctx2 = make_context([X, Y], {X: 0, Y: 0})
        assert ordering.choose(ctx2) == X

    def test_uncovered_variable_raises(self):
        ordering = FixedOrdering([X])
        ctx = make_context([Y], {Y: 0})
        with pytest.raises(QueryError):
            ordering.choose(ctx)
