"""Cross-representation property: the succinct K-NN structure and the
plain adjacency must answer identically on arbitrary K-NN tables —
including truncated rows — since the baseline and the Ring engines
consult different representations of the same relation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn.adjacency import KnnAdjacency
from repro.knn.graph import KnnGraph
from repro.knn.succinct import KnnRing


@st.composite
def knn_tables(draw):
    """Arbitrary valid (possibly truncated) K-NN tables over 0..n-1."""
    n = draw(st.integers(3, 10))
    K = draw(st.integers(1, min(4, n - 1)))
    lists = []
    for i in range(n):
        others = [j for j in range(n) if j != i]
        perm = list(draw(st.permutations(others)))
        length = draw(st.integers(0, K))
        lists.append(perm[:length])
    return KnnGraph.from_lists(np.arange(n), lists, K)


@settings(max_examples=40, deadline=None)
@given(knn_tables(), st.data())
def test_representations_agree(graph, data):
    ring = KnnRing(graph)
    adjacency = KnnAdjacency(graph)
    n = graph.num_members
    k = data.draw(st.integers(1, graph.K))
    for u in range(n):
        assert ring.neighbors_of(u, k) == adjacency.neighbors_of(
            u, k
        ).tolist()
        assert sorted(ring.reverse_neighbors_of(u, k)) == sorted(
            adjacency.reverse_neighbors_of(u, k).tolist()
        )
        for v in range(n):
            if u == v:
                continue
            truth = graph.is_knn(u, v, k)
            assert ring.contains(u, v, k) == truth
            assert adjacency.is_knn(u, v, k) == truth


@settings(max_examples=25, deadline=None)
@given(knn_tables())
def test_counts_are_consistent(graph):
    ring = KnnRing(graph)
    k = graph.K
    # Total forward entries == total backward entries == valid pairs.
    forward_total = sum(
        ring.forward_count(int(u), k) for u in graph.members
    )
    backward_total = sum(
        ring.backward_count(int(v), k) for v in graph.members
    )
    assert forward_total == backward_total == int(graph.lengths.sum())
