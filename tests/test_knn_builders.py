"""Tests for exact and approximate K-NN graph construction."""

import numpy as np
import pytest

from repro.knn.builders import (
    build_knn_graph,
    build_knn_graph_bruteforce,
    build_knn_graph_kdtree,
    build_knn_graph_nn_descent,
)
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(17)
    return rng.normal(size=(60, 3))


def reference_neighbors(points, K):
    """Independent O(n^2) reference with index tie-break."""
    n = points.shape[0]
    out = np.empty((n, K), dtype=np.int64)
    for i in range(n):
        d = ((points - points[i]) ** 2).sum(axis=1)
        d[i] = np.inf
        order = np.lexsort((np.arange(n), d))
        out[i] = order[:K]
    return out


class TestBruteforce:
    def test_matches_reference(self, points):
        g = build_knn_graph_bruteforce(points, K=5)
        assert np.array_equal(g.neighbor_table, reference_neighbors(points, 5))

    def test_custom_metric(self, points):
        def l1(a, b):
            return float(np.abs(a - b).sum())

        g = build_knn_graph_bruteforce(points[:20], K=3, metric=l1)
        # Check row 0 against a direct computation.
        d = np.abs(points[:20] - points[0]).sum(axis=1)
        d[0] = np.inf
        expected = np.lexsort((np.arange(20), d))[:3]
        assert g.neighbors_of(0).tolist() == expected.tolist()

    def test_custom_members(self, points):
        members = np.arange(100, 160)
        g = build_knn_graph_bruteforce(points, K=4, members=members)
        assert g.is_member(100)
        assert not g.is_member(0)
        assert all(g.is_member(int(v)) for v in g.neighbors_of(100))

    def test_k_bounds(self, points):
        with pytest.raises(ValidationError):
            build_knn_graph_bruteforce(points, K=0)
        with pytest.raises(ValidationError):
            build_knn_graph_bruteforce(points, K=60)


class TestKDTree:
    def test_same_neighbor_sets_as_bruteforce(self, points):
        """Distance sets must agree (ordering may differ only on ties,
        which are measure-zero for random continuous data)."""
        a = build_knn_graph_kdtree(points, K=5)
        b = build_knn_graph_bruteforce(points, K=5)
        assert np.array_equal(a.neighbor_table, b.neighbor_table)

    def test_rejects_metric_via_dispatcher(self, points):
        with pytest.raises(ValidationError):
            build_knn_graph(points, K=3, method="kdtree", metric=lambda a, b: 0.0)


class TestNNDescent:
    def test_high_recall_on_clustered_data(self):
        rng = np.random.default_rng(3)
        centers = rng.normal(scale=10, size=(5, 4))
        pts = np.concatenate(
            [c + rng.normal(size=(40, 4)) for c in centers], axis=0
        )
        exact = build_knn_graph_bruteforce(pts, K=10)
        approx = build_knn_graph_nn_descent(pts, K=10, seed=1)
        recalls = []
        for i in range(pts.shape[0]):
            truth = set(exact.neighbors_of(i).tolist())
            found = set(approx.neighbors_of(i).tolist())
            recalls.append(len(truth & found) / 10)
        assert np.mean(recalls) > 0.9, np.mean(recalls)

    def test_structure_is_valid(self, points):
        g = build_knn_graph_nn_descent(points, K=4, seed=0, max_iters=3)
        assert g.K == 4
        assert g.num_members == 60


class TestDispatcher:
    def test_auto_uses_exact_euclidean(self, points):
        g = build_knn_graph(points, K=5)
        assert np.array_equal(g.neighbor_table, reference_neighbors(points, 5))

    def test_unknown_method(self, points):
        with pytest.raises(ValidationError):
            build_knn_graph(points, K=3, method="magic")

    def test_auto_with_metric_falls_back_to_bruteforce(self, points):
        def l2sq(a, b):
            diff = a - b
            return float(diff @ diff)

        g = build_knn_graph(points, K=5, metric=l2sq)
        assert np.array_equal(g.neighbor_table, reference_neighbors(points, 5))
