"""Tests for the succinct K-NN structure: S, S', B and Lemmas 1-2.

Includes the paper's worked Example 2 (Figure 1's 3-NN graph).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn.graph import KnnGraph
from repro.knn.succinct import KnnRing
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def example2() -> tuple[KnnGraph, KnnRing]:
    """The 3-NN graph of Figure 1 / Example 2 (nodes 1..7, 1-based).

    The paper gives: S_1 = 324, S_2 = 134, and S'_4 = 675123 with
    B_4 = 100101000; also S'_1 = 23 with B_1 = 10011. We reconstruct a
    consistent full graph: node u's ordered neighbor lists chosen so all
    published fragments hold.
    """
    members = np.arange(1, 8)
    neighbors = np.array(
        [
            [3, 2, 4],  # S_1 = 324
            [1, 3, 4],  # S_2 = 134
            [2, 1, 4],  # S_3 = 214 (4 at rank 3, per j_3 = 3)
            [5, 6, 7],  # S_4 (unspecified by the paper; any valid row)
            [6, 4, 7],  # S_5 (4 at rank 2: j_5 = 2)
            [4, 7, 5],  # S_6 (4 at rank 1: j_6 = 1)
            [4, 6, 5],  # S_7 (4 at rank 1: j_7 = 1)
        ]
    )
    graph = KnnGraph(members, neighbors)
    return graph, KnnRing(graph)


class TestExample2:
    def test_s_concatenation(self, example2):
        graph, ring = example2
        # S = S_1 . S_2 ... ; Def. 7.
        expected = graph.neighbor_table.reshape(-1)
        got = [ring.S.access(i) for i in range(len(ring.S))]
        assert got == expected.tolist()

    def test_sprime_of_node_4(self, example2):
        _graph, ring = example2
        # S'_4 = 675123: sources listing 4, ordered by the rank at which
        # they list it (6 and 7 at rank 1, 5 at rank 2, 1, 2, 3 at rank 3).
        assert ring.reverse_neighbors_of(4) == [6, 7, 5, 1, 2, 3]

    def test_sprime_rank_prefixes_of_node_4(self, example2):
        _graph, ring = example2
        # Example 2: S'_4[1..2] = 67 for k=1, [1..3] = 675 for k=2.
        assert sorted(ring.reverse_neighbors_of(4, 1)) == [6, 7]
        assert sorted(ring.reverse_neighbors_of(4, 2)) == [5, 6, 7]
        assert sorted(ring.reverse_neighbors_of(4, 3)) == [1, 2, 3, 5, 6, 7]

    def test_sprime_of_node_1(self, example2):
        _graph, ring = example2
        # S'_1 = 23: 1 is in 1-NN(2) and 1-NN... here 2 lists 1 at rank 1
        # and 3 lists 1 at rank 2.
        assert sorted(ring.reverse_neighbors_of(1, 1)) == [2]
        assert sorted(ring.reverse_neighbors_of(1, 2)) == [2, 3]

    def test_forward_range_is_k_prefix(self, example2):
        graph, ring = example2
        for u in graph.members:
            for k in (1, 2, 3):
                lo, hi = ring.forward_range(int(u), k)
                assert hi - lo + 1 == k
                values = [ring.S.access(i) for i in range(lo, hi + 1)]
                assert values == graph.neighbors_of(int(u), k).tolist()


class TestLemmas:
    """Lemma 2: (a) v in k-NN(u) <=> (b) v in S-range <=> (c) u in S'-range."""

    @pytest.fixture(scope="class")
    def random_ring(self):
        rng = np.random.default_rng(23)
        points = rng.normal(size=(30, 2))
        from repro.knn.builders import build_knn_graph_bruteforce

        graph = build_knn_graph_bruteforce(points, K=6)
        return graph, KnnRing(graph)

    def test_lemma2_equivalences(self, random_ring):
        graph, ring = random_ring
        rng = np.random.default_rng(1)
        for _ in range(400):
            u = int(rng.integers(0, 30))
            v = int(rng.integers(0, 30))
            if u == v:
                continue
            k = int(rng.integers(1, 7))
            truth = graph.is_knn(u, v, k)
            # (b): v occurs in S[(u)K .. (u)K + k - 1]
            lo, hi = ring.forward_range(u, k)
            in_s = ring.S.rank_range(v, lo, hi) > 0
            # (c): u occurs in S'[p_v(1) .. p_v(k+1) - 1]
            lo2, hi2 = ring.backward_range(v, k)
            in_sprime = ring.Sprime.rank_range(u, lo2, hi2) > 0
            assert truth == in_s == in_sprime, (u, v, k)
            assert ring.contains(u, v, k) == truth

    def test_backward_counts_sum_to_kn(self, random_ring):
        _graph, ring = random_ring
        # Every (u, rank<=k) pair appears exactly once across all S'_v
        # k-prefixes: total backward count = k * n.
        for k in (1, 3, 6):
            total = sum(
                ring.backward_count(int(v), k) for v in ring.members
            )
            assert total == k * ring.num_members

    def test_leaps(self, random_ring):
        graph, ring = random_ring
        for u in (0, 7, 29):
            k = 4
            expected = sorted(graph.neighbors_of(u, k).tolist())
            got = []
            lower = 0
            while True:
                nxt = ring.leap_forward(u, k, lower)
                if nxt is None:
                    break
                got.append(nxt)
                lower = nxt + 1
            assert got == expected
        for v in (3, 12):
            k = 4
            expected = sorted(
                int(u)
                for u in range(30)
                if u != v and graph.is_knn(u, v, k)
            )
            got = []
            lower = 0
            while True:
                nxt = ring.leap_backward(v, k, lower)
                if nxt is None:
                    break
                got.append(nxt)
                lower = nxt + 1
            assert got == expected


class TestNonMembersAndBounds:
    def test_non_member_ranges_empty(self, example2):
        _graph, ring = example2
        lo, hi = ring.forward_range(99, 2)
        assert lo > hi
        lo, hi = ring.backward_range(99, 2)
        assert lo > hi
        assert not ring.contains(99, 1, 2)
        assert ring.neighbors_of(99) == []

    def test_k_beyond_K_rejected(self, example2):
        _graph, ring = example2
        with pytest.raises(ValidationError):
            ring.forward_range(1, 4)
        with pytest.raises(ValidationError):
            ring.backward_range(1, 0)

    def test_next_member(self, example2):
        _graph, ring = example2
        assert ring.next_member(0) == 1
        assert ring.next_member(4) == 4
        assert ring.next_member(8) is None

    def test_next_reverse_nonempty(self, example2):
        _graph, ring = example2
        # Every node of the example has at least one reverse neighbor at
        # k = 3 except possibly none; check enumeration is sorted members
        # with nonempty ranges.
        got = []
        lower = 0
        while True:
            nxt = ring.next_reverse_nonempty(3, lower)
            if nxt is None:
                break
            got.append(nxt)
            lower = nxt + 1
        expected = [
            int(m)
            for m in ring.members
            if ring.backward_count(int(m), 3) > 0
        ]
        assert got == expected

    def test_size_accounting(self, example2):
        _graph, ring = example2
        assert ring.size_in_bytes() > 0


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 12), st.integers(1, 4), st.data())
def test_lemma2_property_random_knn_graphs(n, K, data):
    """Lemma 2 on arbitrary (not metric-derived) K-NN tables — the paper
    notes the structures work for any k-NN relation (Sec. 3.1)."""
    K = min(K, n - 1)
    members = np.arange(n)
    rows = []
    for i in range(n):
        others = [j for j in range(n) if j != i]
        perm = data.draw(st.permutations(others))
        rows.append(perm[:K])
    graph = KnnGraph(members, np.array(rows))
    ring = KnnRing(graph)
    for u in range(n):
        for k in range(1, K + 1):
            assert ring.neighbors_of(u, k) == list(rows[u][:k])
            for v in range(n):
                if v == u:
                    continue
                assert ring.contains(u, v, k) == (v in rows[u][:k])
