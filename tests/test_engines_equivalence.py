"""The central correctness property: all engines agree with brute force
on extended BGPs (Def. 5 semantics), across query shapes and data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.baseline import BaselineEngine
from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.engines.database import GraphDatabase
from repro.graph.naive import evaluate_naive
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.query.model import ExtendedBGP, SimClause, TriplePattern, Var
from repro.query.parser import parse_query


def canonical(solutions):
    return sorted(
        tuple(sorted((v.name, c) for v, c in s.items())) for s in solutions
    )


QUERIES = [
    # Sec. 3 shapes.
    "(?x, 20, ?y) . (?y, 21, ?z) . knn(?x, ?z, 3)",   # Example 4 triangle
    "(?x, 20, ?y) . knn(?x, ?y, 4)",
    "(?x, 20, ?y) . sim(?x, ?y, 5)",                   # 2-cycle
    "(?x, 20, ?y) . (?y, 20, ?z) . sim(?y, ?z, 2)",    # Example 3 shape
    # Chains and triangles of constraints (Q2/Q2t shapes).
    "(?a, 20, ?x) . (?b, 20, ?y) . (?c, 20, ?z) . knn(?x, ?y, 3) . knn(?y, ?z, 3)",
    "(?a, 20, ?x) . (?b, 20, ?y) . knn(?x, ?y, 2) . knn(?y, ?x, 2)",
    # Unsafe / clause-only variables.
    "(?x, 20, ?y) . knn(?y, ?w, 2)",
    "(?x, 20, ?y) . knn(?w, ?y, 2)",
    # Constants in clauses.
    "(?x, 20, 5) . knn(3, ?x, 5)",
    "(?x, 20, ?y) . knn(?x, 7, 5)",
    # Repeated variables.
    "(?x, 22, ?x) . knn(?x, ?y, 3)",
    # Lonely variables alongside similarity (Q5 shape).
    "(?x, 20, ?y) . knn(?x, ?y2, 3) . (?y2, ?l1, ?l2)",
]


@pytest.fixture(scope="module")
def db_and_graph():
    rng = np.random.default_rng(7)
    triples = [
        (
            int(rng.integers(0, 20)),
            int(20 + rng.integers(0, 3)),
            int(rng.integers(0, 20)),
        )
        for _ in range(120)
    ]
    graph = GraphData(triples)
    points = np.random.default_rng(11).normal(size=(20, 2))
    knn = build_knn_graph_bruteforce(points, K=5)
    return GraphDatabase(graph, knn), graph, knn


@pytest.mark.parametrize("text", QUERIES)
def test_all_engines_match_naive(db_and_graph, text):
    db, graph, knn = db_and_graph
    query = parse_query(text)
    expected = canonical(evaluate_naive(query, graph, knn))
    for engine_cls in (RingKnnEngine, RingKnnSEngine, MaterializeEngine):
        result = engine_cls(db).evaluate(query)
        assert result.sorted_solutions() == expected, engine_cls.__name__
    # Baseline supports only connected clause graphs; all QUERIES are.
    result = BaselineEngine(db).evaluate(query)
    assert result.sorted_solutions() == expected


def test_engines_agree_on_empty_answers(db_and_graph):
    db, _graph, _knn = db_and_graph
    query = parse_query("(?x, 19, ?y) . knn(?x, ?y, 3)")  # unused predicate
    for engine_cls in (RingKnnEngine, RingKnnSEngine, BaselineEngine):
        assert engine_cls(db).evaluate(query).solutions == []


def test_k_larger_than_K_rejected(db_and_graph):
    db, _graph, _knn = db_and_graph
    from repro.utils.errors import QueryError

    query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 50)")
    with pytest.raises(QueryError):
        RingKnnEngine(db).evaluate(query)


def test_clause_without_knn_graph_rejected(db_and_graph):
    _db, graph, _knn = db_and_graph
    from repro.utils.errors import QueryError

    bare = GraphDatabase(graph)
    query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 2)")
    with pytest.raises(QueryError):
        RingKnnEngine(bare).evaluate(query)


def test_plain_bgp_still_works_via_all_engines(db_and_graph):
    db, graph, knn = db_and_graph
    query = parse_query("(?x, 20, ?y) . (?y, 21, ?z)")
    expected = canonical(evaluate_naive(query, graph, knn))
    for engine_cls in (RingKnnEngine, RingKnnSEngine, BaselineEngine):
        assert engine_cls(db).evaluate(query).sorted_solutions() == expected


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_random_extended_bgps_property(data):
    """Random graphs + random extended BGPs: both Ring engines equal
    brute force (the baseline is covered when clauses stay connected)."""
    rng_seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(rng_seed)
    n_nodes = 10
    triples = [
        (
            int(rng.integers(0, n_nodes)),
            int(50 + rng.integers(0, 2)),
            int(rng.integers(0, n_nodes)),
        )
        for _ in range(40)
    ]
    graph = GraphData(triples)
    points = rng.normal(size=(n_nodes, 2))
    knn = build_knn_graph_bruteforce(points, K=3)
    db = GraphDatabase(graph, knn)

    variables = [Var("x"), Var("y"), Var("z")]
    patterns = []
    for _ in range(data.draw(st.integers(1, 2))):
        s = data.draw(st.sampled_from(variables + [0, 3]))
        p = data.draw(st.sampled_from([50, 51]))
        o = data.draw(st.sampled_from(variables + [1, 5]))
        patterns.append(TriplePattern(s, p, o))
    pattern_vars = sorted(
        {v for t in patterns for v in t.variables}, key=lambda v: v.name
    )
    clauses = []
    if len(pattern_vars) >= 2:
        a, b = pattern_vars[0], pattern_vars[1]
        k = data.draw(st.integers(1, 3))
        clauses.append(SimClause(a, k, b))
        if data.draw(st.booleans()):
            clauses.append(SimClause(b, k, a))
    if not clauses:
        first = pattern_vars[0] if pattern_vars else 0
        clauses.append(SimClause(first, 2, Var("w")))
    query = ExtendedBGP(patterns, clauses)
    expected = canonical(evaluate_naive(query, graph, knn))
    from repro.engines.classic import ClassicSixPermEngine

    for engine_cls in (RingKnnEngine, RingKnnSEngine, ClassicSixPermEngine):
        got = engine_cls(db).evaluate(query).sorted_solutions()
        assert got == expected, (rng_seed, engine_cls.__name__, query)
