"""Tests for the textual query syntax."""

import pytest

from repro.graph.dictionary import TermDictionary
from repro.query.model import DistClause, SimClause, TriplePattern, Var
from repro.query.parser import parse_query
from repro.utils.errors import QueryError


class TestTriples:
    def test_simple_triple(self):
        q = parse_query("(?x, 5, ?y)")
        assert q.triples == (TriplePattern(Var("x"), 5, Var("y")),)

    def test_multiple_atoms(self):
        q = parse_query("(?x, 5, ?y) . (?y, 6, 3)")
        assert len(q.triples) == 2
        assert q.triples[1] == TriplePattern(Var("y"), 6, 3)

    def test_whitespace_tolerant(self):
        q = parse_query("  ( ?x ,5, ?y )  .   knn( ?x , ?y , 2 ) ")
        assert len(q.triples) == 1
        assert len(q.clauses) == 1


class TestClauses:
    def test_knn_clause(self):
        q = parse_query("(?x, 1, ?y) . knn(?x, ?y, 7)")
        assert q.clauses == (SimClause(Var("x"), 7, Var("y")),)

    def test_sim_expands_to_two_clauses(self):
        q = parse_query("(?x, 1, ?y) . sim(?x, ?y, 4)")
        assert q.clauses == (
            SimClause(Var("x"), 4, Var("y")),
            SimClause(Var("y"), 4, Var("x")),
        )

    def test_knn_with_constant(self):
        q = parse_query("(?x, 1, ?y) . knn(12, ?x, 3)")
        assert q.clauses == (SimClause(12, 3, Var("x")),)

    def test_dist_clause(self):
        q = parse_query("(?x, 1, ?y) . dist(?x, ?y, 2.5)")
        assert q.dist_clauses == (DistClause(Var("x"), 2.5, Var("y")),)

    def test_float_k_rejected(self):
        with pytest.raises(QueryError):
            parse_query("knn(?x, ?y, 2.5)")


class TestDictionaryResolution:
    def test_named_terms(self):
        d = TermDictionary(["alice", "knows"])
        q = parse_query("(alice, knows, ?x)", d)
        assert q.triples[0] == TriplePattern(0, 1, Var("x"))

    def test_unknown_name_raises(self):
        with pytest.raises(QueryError):
            parse_query("(ghost, 1, ?x)", TermDictionary())

    def test_named_without_dictionary_raises(self):
        with pytest.raises(QueryError):
            parse_query("(alice, 1, ?x)")


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(QueryError):
            parse_query("")

    def test_unbalanced_parens(self):
        with pytest.raises(QueryError):
            parse_query("(?x, 1, ?y")
        with pytest.raises(QueryError):
            parse_query("?x, 1, ?y)")

    def test_garbage_atom(self):
        with pytest.raises(QueryError):
            parse_query("hello world")

    def test_variable_without_name(self):
        with pytest.raises(QueryError):
            parse_query("(?, 1, ?y)")

    def test_two_term_triple(self):
        with pytest.raises(QueryError):
            parse_query("(?x, 1)")
