"""Unit tests for the ``repro bench`` regression harness.

These exercise the document/diff machinery on small synthetic documents
(no workload runs): exact gating of deterministic counters, wall-time
tolerance with calibration normalization, the timeout quarantine rules,
and document round-tripping.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    BENCH_VERSION,
    BenchConfig,
    calibrate,
    diff_bench,
    format_diff,
    load_bench,
    write_bench,
)
from repro.utils.errors import ValidationError


def _doc(
    *,
    calibration=1.0,
    q1_s=1.0,
    q1_solutions=10,
    q1_timeouts=0,
    rank=100,
    micro_s=0.5,
):
    return {
        "version": BENCH_VERSION,
        "date": "2026-08-06",
        "label": "synthetic",
        "config": {},
        "calibration_s": calibration,
        "figure2": {
            "Q1/ring-knn": {
                "queries": 2,
                "total_s": q1_s,
                "mean_s": q1_s / 2,
                "max_s": q1_s,
                "solutions": q1_solutions,
                "timeouts": q1_timeouts,
            },
        },
        "opcounts": {
            "Q1/ring-knn": {
                "stats": {"solutions": q1_solutions, "leap_calls": 40},
                "wavelets": {"ring": {"rank": rank, "total": rank}},
            },
        },
        "micro": {
            "bv_rank1": {"ops": 100, "total_s": micro_s, "ops_per_s": 100 / micro_s},
        },
        "totals": {
            "figure2_wall_s": q1_s,
            "micro_wall_s": micro_s,
            "wavelet_ops": rank,
        },
    }


def test_identical_documents_pass():
    diff = diff_bench(_doc(), _doc(), tolerance=0.2)
    assert diff.ok
    assert not diff.mismatches
    assert not diff.regressions
    assert "PASS" in format_diff(diff, 0.2)


def test_opcount_mismatch_fails_regardless_of_speed():
    diff = diff_bench(_doc(rank=100), _doc(rank=99, q1_s=0.1), tolerance=0.2)
    assert not diff.ok
    assert any("wavelets:ring:rank" in m for m in diff.mismatches)
    assert "FAIL" in format_diff(diff, 0.2)


def test_solution_mismatch_fails_when_completed():
    diff = diff_bench(_doc(q1_solutions=10), _doc(q1_solutions=11))
    assert not diff.ok
    # Both the timed-pass and the traced-pass solution counters fire.
    assert any("figure2:Q1/ring-knn:solutions" in m for m in diff.mismatches)


def test_wall_regression_beyond_tolerance_fails():
    diff = diff_bench(_doc(q1_s=1.0), _doc(q1_s=1.5), tolerance=0.2)
    assert not diff.ok
    assert any("figure2:Q1/ring-knn" in r for r in diff.regressions)


def test_wall_slowdown_within_tolerance_passes():
    diff = diff_bench(_doc(q1_s=1.0), _doc(q1_s=1.1), tolerance=0.2)
    assert diff.ok


def test_millisecond_jitter_below_noise_floor_passes():
    """A 6ms entry drifting to 9ms is 50% 'slower' but pure jitter; the
    absolute floor keeps it informational rather than gating."""
    diff = diff_bench(
        _doc(q1_s=0.006, micro_s=0.004),
        _doc(q1_s=0.009, micro_s=0.006),
        tolerance=0.2,
    )
    assert diff.ok, diff.regressions


def test_noise_floor_does_not_hide_large_regressions():
    diff = diff_bench(_doc(q1_s=1.0), _doc(q1_s=2.0), tolerance=0.2)
    assert any("figure2:Q1/ring-knn" in r for r in diff.regressions)


def test_calibration_scaling_excuses_a_slower_machine():
    before = _doc(calibration=1.0, q1_s=1.0, micro_s=0.5)
    after = _doc(calibration=2.0, q1_s=1.8, micro_s=0.9)
    assert not diff_bench(before, after, use_calibration=False).ok
    scaled = diff_bench(before, after, use_calibration=True)
    assert scaled.ok
    assert scaled.scale == pytest.approx(2.0)


def test_timed_pass_solutions_not_compared_after_timeout():
    """A query that hits the cap stops at a wall-clock-dependent point;
    its timed-pass solution count is noise, not signal. The traced-pass
    counters (which ran without a timeout) still gate correctness."""
    before = _doc(q1_timeouts=1, q1_solutions=10)
    after = _doc(q1_timeouts=0, q1_solutions=10)
    # Perturb only the timed-pass solutions: must not fail the diff.
    before["figure2"]["Q1/ring-knn"]["solutions"] = 3
    diff = diff_bench(before, after)
    assert diff.ok, (diff.mismatches, diff.regressions)


def test_both_sides_saturated_wall_time_ignored():
    before = _doc(q1_timeouts=1, q1_s=60.0)
    after = _doc(q1_timeouts=1, q1_s=60.0)
    # Tighten after's time artificially to prove the entry is skipped
    # rather than compared: a 10x "regression" at the cap is invisible...
    before["figure2"]["Q1/ring-knn"]["total_s"] = 6.0
    diff = diff_bench(before, after, tolerance=0.01)
    assert not any("figure2:Q1/ring-knn" in r for r in diff.regressions)


def test_one_sided_timeout_still_flags_regression():
    # ...but a query that only times out in `after` is a real regression.
    before = _doc(q1_timeouts=0, q1_s=1.0)
    after = _doc(q1_timeouts=1, q1_s=60.0)
    diff = diff_bench(before, after, tolerance=0.2)
    assert any("figure2:Q1/ring-knn" in r for r in diff.regressions)


def test_cache_group_walls_are_diffed_stats_snapshot_skipped():
    """The cache section's cold/fill/warm walls gate like any other
    group; its counter snapshot (no ``total_s``) is informational."""
    before, after = _doc(), _doc()
    before["cache"] = {
        "cold": {"total_s": 1.0},
        "warm": {"total_s": 0.1, "hit_rate": 1.0},
        "stats": {"hits": 3, "misses": 1},
    }
    after["cache"] = {
        "cold": {"total_s": 1.0},
        "warm": {"total_s": 0.5, "hit_rate": 1.0},
        "stats": {"hits": 9, "misses": 7},
    }
    diff = diff_bench(before, after, tolerance=0.2)
    assert any("cache:warm" in r for r in diff.regressions)
    assert not any("cache:stats" in line for line in diff.lines)


def test_cache_group_absent_on_one_side_is_skipped():
    before, after = _doc(), _doc()
    after["cache"] = {"cold": {"total_s": 1.0}, "warm": {"total_s": 0.1}}
    diff = diff_bench(before, after)
    assert diff.ok, (diff.mismatches, diff.regressions)


def test_completed_in_both_total_reported():
    diff = diff_bench(_doc(q1_s=4.0), _doc(q1_s=1.0))
    assert any("figure2-completed-in-both:TOTAL" in line for line in diff.lines)


def test_roundtrip_and_version_check(tmp_path):
    doc = _doc()
    path = tmp_path / "BENCH_test.json"
    write_bench(doc, str(path))
    assert load_bench(str(path)) == doc
    doc["version"] = BENCH_VERSION + 1
    write_bench(doc, str(path))
    with pytest.raises(ValidationError):
        load_bench(str(path))


def test_config_rejects_unknown_engine():
    with pytest.raises(ValidationError):
        BenchConfig(engines=("ring-knn", "warp-drive"))


def test_calibration_returns_positive_time():
    assert calibrate(rounds=1) > 0.0
