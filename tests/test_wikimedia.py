"""Tests for the synthetic Wikimedia-like benchmark generator."""

import numpy as np
import pytest

from repro.datasets.wikimedia import WikimediaConfig, generate_benchmark
from repro.utils.errors import ValidationError


class TestGenerator:
    def test_deterministic_in_seed(self):
        cfg = WikimediaConfig(n_entities=50, n_images=30, n_misc_triples=200, K=5)
        a = generate_benchmark(cfg)
        b = generate_benchmark(cfg)
        assert np.array_equal(a.graph.spo, b.graph.spo)
        assert np.array_equal(
            a.knn_graph.neighbor_table, b.knn_graph.neighbor_table
        )

    def test_different_seeds_differ(self):
        a = generate_benchmark(WikimediaConfig(n_images=30, K=5, seed=1))
        b = generate_benchmark(WikimediaConfig(n_images=30, K=5, seed=2))
        assert not np.array_equal(a.graph.spo, b.graph.spo)

    def test_every_image_is_depicted(self, bench):
        for img in bench.image_ids:
            assert len(bench.graph.matching(None, bench.depicts, int(img)))

    def test_every_image_has_attributes_and_type(self, bench):
        attr = bench.predicates["attr"]
        for img in bench.image_ids:
            assert len(bench.graph.matching(int(img), attr, None)) >= 1
            assert len(
                bench.graph.matching(int(img), bench.type_predicate, None)
            ) == 1

    def test_knn_members_are_the_images(self, bench):
        assert np.array_equal(bench.knn_graph.members, bench.image_ids)

    def test_id_spaces_disjoint(self, bench):
        preds = set(bench.predicates.values())
        assert preds.isdisjoint(set(bench.entity_ids.tolist()))
        assert set(bench.entity_ids.tolist()).isdisjoint(
            set(bench.image_ids.tolist())
        )
        assert set(bench.class_ids.tolist()).isdisjoint(
            set(bench.literal_ids.tolist())
        )

    def test_image_class_consistent_with_type_triples(self, bench):
        for img, cls in bench.image_class.items():
            rows = bench.graph.matching(img, bench.type_predicate, None)
            assert int(rows[0, 2]) == cls

    def test_k_must_fit_images(self):
        with pytest.raises(ValidationError):
            generate_benchmark(WikimediaConfig(n_images=5, K=10))

    def test_descriptor_shapes(self, bench):
        assert bench.points.shape == (
            bench.config.n_images,
            bench.config.descriptor_dim,
        )

    def test_skewed_entity_degrees(self, bench):
        """Zipf endpoints: the max entity degree should well exceed the
        mean (long-tail shape, like Wikidata)."""
        subjects = bench.graph.spo[:, 0]
        entity_mask = np.isin(subjects, bench.entity_ids)
        counts = np.bincount(subjects[entity_mask])
        counts = counts[counts > 0]
        assert counts.max() > 3 * counts.mean()
