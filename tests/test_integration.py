"""Full-pipeline integration tests: benchmark generation -> workload ->
all five engines agree across every family, plus cross-checks of the
harness plumbing at test scale."""

import pytest

from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine


@pytest.fixture(scope="module")
def workload(bench):
    return generate_workload(
        bench,
        WorkloadConfig(k=4, n_q1=2, n_q2=1, n_q3=2, n_q4=1, n_q5=2, seed=33),
    )


@pytest.fixture(scope="module")
def engines(bench_db):
    return [
        RingKnnEngine(bench_db),
        RingKnnSEngine(bench_db),
        BaselineEngine(bench_db),
        MaterializeEngine(bench_db),
        ClassicSixPermEngine(bench_db),
    ]


FAMILIES = ["Q1", "Q1b", "Q2", "Q2b", "Q2t", "Q3", "Q4", "Q5"]


@pytest.mark.parametrize("family", FAMILIES)
def test_five_engines_agree_per_family(workload, engines, family):
    for query in workload[family]:
        results = [e.evaluate(query, timeout=60) for e in engines]
        reference = results[0].sorted_solutions()
        for engine, result in zip(engines, results):
            assert not result.timed_out, (family, engine.name)
            assert result.sorted_solutions() == reference, (
                family,
                engine.name,
            )


def test_stats_invariants_across_engines(workload, engines):
    """attempts >= bindings and solutions counted consistently."""
    for query in workload["Q1"]:
        for engine in engines:
            result = engine.evaluate(query, timeout=60)
            stats = result.stats
            assert stats.attempts >= stats.bindings >= 0
            if engine.name != "baseline":
                # LTJ-only engines: every solution implies |vars| bindings.
                assert stats.bindings >= stats.solutions
            assert stats.elapsed >= 0


def test_limits_are_consistent_across_engines(workload, engines):
    query = workload["Q3"][0]
    full = engines[0].evaluate(query, timeout=60)
    want = min(2, len(full.solutions))
    if want == 0:
        pytest.skip("query has no solutions at this scale/seed")
    for engine in engines:
        limited = engine.evaluate(query, timeout=60, limit=want)
        assert len(limited.solutions) == want
        # Limited answers are genuine answers.
        assert set(limited.sorted_solutions()) <= set(full.sorted_solutions())


def test_repeated_evaluation_is_deterministic(workload, engines):
    query = workload["Q1b"][0]
    for engine in engines:
        first = engine.evaluate(query, timeout=60).sorted_solutions()
        second = engine.evaluate(query, timeout=60).sorted_solutions()
        assert first == second, engine.name
