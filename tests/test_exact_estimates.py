"""Tests for the exact-vs-range-size estimate ablation (Sec. 5)."""

import numpy as np

from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.ltj.triple_relation import RingTripleRelation
from repro.query.model import TriplePattern, Var
from repro.query.parser import parse_query


class TestExactEstimates:
    def test_exact_estimate_counts_distinct(self, small_db):
        # Pattern (?x, 20, ?y): after arc {p}, the stored column holds
        # subjects; exact estimate of x = distinct subjects with p=20.
        pattern = TriplePattern(Var("x"), 20, Var("y"))
        approx = RingTripleRelation(small_db.ring, pattern)
        exact = RingTripleRelation(
            small_db.ring, pattern, exact_estimates=True
        )
        matching = small_db.graph.matching(None, 20, None)
        assert approx.estimate(Var("x")) == len(matching)
        assert exact.estimate(Var("x")) == len(np.unique(matching[:, 0]))
        assert exact.estimate(Var("x")) <= approx.estimate(Var("x"))

    def test_exact_falls_back_off_stored_column(self, small_db):
        # The 'ahead' coordinate (p under arc {s}) keeps the range size.
        pattern = TriplePattern(3, Var("p"), Var("o"))
        exact = RingTripleRelation(
            small_db.ring, pattern, exact_estimates=True
        )
        matching = small_db.graph.matching(3, None, None)
        # o is the stored column (prev of s): exact distinct count.
        assert exact.estimate(Var("o")) == len(np.unique(matching[:, 2]))
        # p is the ahead coordinate: falls back to range size.
        assert exact.estimate(Var("p")) == len(matching)

    def test_same_answers_either_way(self, small_db):
        for text in (
            "(?x, 20, ?y) . (?y, 21, ?z) . knn(?x, ?z, 3)",
            "(?x, 20, ?y) . sim(?x, ?y, 4)",
        ):
            query = parse_query(text)
            for engine_cls in (RingKnnEngine, RingKnnSEngine):
                approx = engine_cls(small_db).evaluate(query)
                exact = engine_cls(
                    small_db, exact_estimates=True
                ).evaluate(query)
                assert (
                    approx.sorted_solutions() == exact.sorted_solutions()
                ), engine_cls.__name__
