"""Unit and property tests for the rank/select bitvector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector
from repro.utils.errors import StructureError, ValidationError


class TestBasics:
    def test_length_and_access(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert len(bv) == 5
        assert [bv.access(i) for i in range(5)] == [1, 0, 1, 1, 0]

    def test_iteration_matches_access(self):
        bits = [0, 1, 1, 0, 1, 0, 0, 1]
        bv = BitVector(bits)
        assert list(bv) == bits

    def test_counts(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert bv.n_ones == 3
        assert bv.n_zeros == 2

    def test_empty_vector(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.n_ones == 0
        assert bv.rank1(0) == 0
        assert bv.next_one(0) is None

    def test_all_ones(self):
        bv = BitVector([1] * 100)
        assert bv.rank1(100) == 100
        assert bv.select1(100) == 99
        assert bv.rank0(100) == 0

    def test_all_zeros(self):
        bv = BitVector([0] * 100)
        assert bv.rank1(100) == 0
        assert bv.select0(1) == 0
        assert bv.next_one(0) is None

    def test_non_binary_rejected(self):
        with pytest.raises(ValidationError):
            BitVector([0, 2, 1])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            BitVector(np.zeros((2, 2)))

    def test_to_array_roundtrip(self):
        bits = np.array([1, 0, 0, 1, 1, 0, 1], dtype=np.uint8)
        assert np.array_equal(BitVector(bits).to_array(), bits)

    def test_size_in_bytes_positive(self):
        assert BitVector([1, 0, 1]).size_in_bytes() > 0


class TestRank:
    def test_rank1_prefixes(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        bv = BitVector(bits)
        for i in range(len(bits) + 1):
            assert bv.rank1(i) == sum(bits[:i])

    def test_rank0_complements_rank1(self):
        bv = BitVector([1, 0, 1, 1, 0, 0, 1])
        for i in range(8):
            assert bv.rank0(i) + bv.rank1(i) == i

    def test_rank_across_word_boundary(self):
        bits = [1] * 63 + [0] + [1] * 63 + [0, 1]
        bv = BitVector(bits)
        assert bv.rank1(63) == 63
        assert bv.rank1(64) == 63
        assert bv.rank1(127) == 126
        assert bv.rank1(129) == 127

    def test_rank_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(ValidationError):
            bv.rank1(3)
        with pytest.raises(ValidationError):
            bv.rank1(-1)

    def test_rank1_range_closed(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert bv.rank1_range(0, 4) == 3
        assert bv.rank1_range(1, 1) == 0
        assert bv.rank1_range(2, 3) == 2
        assert bv.rank1_range(3, 2) == 0  # empty range


class TestSelect:
    def test_select1_positions(self):
        bv = BitVector([0, 1, 0, 1, 1])
        assert bv.select1(1) == 1
        assert bv.select1(2) == 3
        assert bv.select1(3) == 4

    def test_select0_positions(self):
        bv = BitVector([0, 1, 0, 1, 1])
        assert bv.select0(1) == 0
        assert bv.select0(2) == 2

    def test_select_out_of_range(self):
        bv = BitVector([0, 1])
        with pytest.raises(StructureError):
            bv.select1(2)
        with pytest.raises(StructureError):
            bv.select1(0)
        with pytest.raises(StructureError):
            bv.select0(2)

    def test_rank_select_inverse(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 500)
        bv = BitVector(bits)
        for j in range(1, bv.n_ones + 1):
            assert bv.rank1(bv.select1(j)) == j - 1
            assert bv.access(bv.select1(j)) == 1


class TestNextOne:
    def test_next_one_finds_forward(self):
        bv = BitVector([0, 0, 1, 0, 1])
        assert bv.next_one(0) == 2
        assert bv.next_one(2) == 2
        assert bv.next_one(3) == 4
        assert bv.next_one(5) is None

    def test_next_one_negative_start_clamped(self):
        bv = BitVector([0, 1])
        assert bv.next_one(-5) == 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
def test_rank_matches_reference(bits):
    bv = BitVector(bits)
    prefix = 0
    for i, b in enumerate(bits):
        assert bv.rank1(i) == prefix
        prefix += b
    assert bv.rank1(len(bits)) == prefix


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
def test_select_matches_reference(bits):
    bv = BitVector(bits)
    ones = [i for i, b in enumerate(bits) if b]
    zeros = [i for i, b in enumerate(bits) if not b]
    for j, pos in enumerate(ones, start=1):
        assert bv.select1(j) == pos
    for j, pos in enumerate(zeros, start=1):
        assert bv.select0(j) == pos


class TestWordBoundarySelect:
    """select0/select1 when ``j`` lands exactly on a per-word cumulative
    count (the binary search over ``_cum`` must pick the right word)."""

    def test_select1_at_exact_word_cumulative(self):
        # Word 0: 64 ones; word 1: 64 zeros; word 2: a single one.
        bits = [1] * 64 + [0] * 64 + [1]
        bv = BitVector(bits)
        assert bv.select1(64) == 63    # j == _cum1[1]: last one of word 0
        assert bv.select1(65) == 128   # j == _cum1[3]: the one in word 2
        assert bv.select0(64) == 127   # j == cumulative zeros after word 1

    def test_select1_word_with_zero_ones_skipped(self):
        # Word 1 contributes no ones: the cumulative array has a plateau
        # and the search must not land inside it.
        bits = [1] * 64 + [0] * 64 + [1] * 64
        bv = BitVector(bits)
        assert bv.select1(64) == 63
        assert bv.select1(65) == 128
        assert bv.select1(128) == 191

    def test_select0_word_with_zero_zeros_skipped(self):
        bits = [0] * 64 + [1] * 64 + [0] * 64
        bv = BitVector(bits)
        assert bv.select0(64) == 63
        assert bv.select0(65) == 128
        assert bv.select0(128) == 191

    def test_select0_ignores_padding_past_n(self):
        # n = 70: the last word has 58 padding bits that must never be
        # reported as zeros.
        bits = [1] * 70
        bv = BitVector(bits)
        assert bv.n_zeros == 0
        with pytest.raises(StructureError):
            bv.select0(1)
        bits = [1] * 69 + [0]
        bv = BitVector(bits)
        assert bv.n_zeros == 1
        assert bv.select0(1) == 69
        with pytest.raises(StructureError):
            bv.select0(2)

    def test_select_single_bit_last_position_of_word(self):
        bits = [0] * 63 + [1]
        bv = BitVector(bits)
        assert bv.select1(1) == 63
        assert bv.select0(63) == 62


class TestNextOneBoundaries:
    def test_next_one_at_last_position(self):
        bv = BitVector([0] * 99 + [1])
        assert bv.next_one(99) == 99
        bv = BitVector([1] * 99 + [0])
        assert bv.next_one(99) is None

    def test_next_one_at_zero(self):
        assert BitVector([1, 0]).next_one(0) == 0
        assert BitVector([0, 1]).next_one(0) == 1
        assert BitVector([0, 0]).next_one(0) is None

    def test_next_one_past_the_end(self):
        bv = BitVector([1] * 10)
        assert bv.next_one(10) is None
        assert bv.next_one(1000) is None
        assert BitVector([]).next_one(0) is None


def test_iteration_equals_to_array_tolist():
    rng = np.random.default_rng(11)
    for n in (0, 1, 63, 64, 65, 200):
        bits = rng.integers(0, 2, n)
        bv = BitVector(bits)
        assert list(bv) == bv.to_array().tolist()
