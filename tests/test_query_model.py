"""Tests for the extended-BGP model (Defs. 2 and 5)."""

import pytest

from repro.query.model import (
    DistClause,
    ExtendedBGP,
    SimClause,
    TriplePattern,
    Var,
    is_var,
    sym_clauses,
)
from repro.utils.errors import QueryError


class TestVarAndTerms:
    def test_var_equality_and_repr(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert repr(Var("x")) == "?x"

    def test_is_var(self):
        assert is_var(Var("x"))
        assert not is_var(3)


class TestTriplePattern:
    def test_variables_deduplicated_in_order(self):
        t = TriplePattern(Var("a"), Var("b"), Var("a"))
        assert t.variables == (Var("a"), Var("b"))

    def test_coordinates_of(self):
        t = TriplePattern(Var("a"), 5, Var("a"))
        assert t.coordinates_of(Var("a")) == ("s", "o")
        assert t.coordinates_of(Var("z")) == ()

    def test_substitute(self):
        t = TriplePattern(Var("a"), 5, Var("b"))
        t2 = t.substitute({Var("a"): 7})
        assert t2 == TriplePattern(7, 5, Var("b"))

    def test_negative_constant_rejected(self):
        with pytest.raises(QueryError):
            TriplePattern(-1, 0, 0)

    def test_bool_constant_rejected(self):
        with pytest.raises(QueryError):
            TriplePattern(True, 0, 0)


class TestSimClause:
    def test_valid_clause(self):
        c = SimClause(Var("x"), 3, Var("y"))
        assert c.variables == (Var("x"), Var("y"))

    def test_k_must_be_positive_int(self):
        with pytest.raises(QueryError):
            SimClause(Var("x"), 0, Var("y"))
        with pytest.raises(QueryError):
            SimClause(Var("x"), -2, Var("y"))

    def test_x_must_differ_from_y(self):
        with pytest.raises(QueryError):
            SimClause(Var("x"), 3, Var("x"))
        with pytest.raises(QueryError):
            SimClause(7, 3, 7)

    def test_constant_sides_allowed(self):
        c = SimClause(7, 3, Var("y"))
        assert c.variables == (Var("y"),)

    def test_sym_expansion(self):
        a, b = sym_clauses(Var("x"), 5, Var("y"))
        assert a == SimClause(Var("x"), 5, Var("y"))
        assert b == SimClause(Var("y"), 5, Var("x"))


class TestDistClause:
    def test_valid(self):
        c = DistClause(Var("x"), 1.5, Var("y"))
        assert c.variables == (Var("x"), Var("y"))

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(QueryError):
            DistClause(Var("x"), 0.0, Var("y"))


class TestExtendedBGP:
    def q(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        return ExtendedBGP(
            [TriplePattern(x, 0, y), TriplePattern(y, 0, z)],
            [SimClause(x, 2, z)],
        )

    def test_variables_in_first_seen_order(self):
        assert self.q().variables == (Var("x"), Var("y"), Var("z"))

    def test_atom_count(self):
        q = self.q()
        assert q.atom_count(Var("y")) == 2
        assert q.atom_count(Var("x")) == 2
        assert q.atom_count(Var("z")) == 2

    def test_lonely_variables(self):
        x, y = Var("x"), Var("y")
        q = ExtendedBGP(
            [TriplePattern(x, 0, y), TriplePattern(y, Var("l1"), Var("l2"))]
        )
        assert set(q.lonely_variables()) == {Var("x"), Var("l1"), Var("l2")}

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            ExtendedBGP([], [])

    def test_safety(self):
        x, y, w = Var("x"), Var("y"), Var("w")
        safe = ExtendedBGP([TriplePattern(x, 0, y)], [SimClause(x, 2, w)])
        assert safe.is_safe()
        unsafe = ExtendedBGP([TriplePattern(x, 0, y)], [SimClause(w, 2, x)])
        assert not unsafe.is_safe()
        # Constant x side is trivially safe.
        const = ExtendedBGP([TriplePattern(x, 0, y)], [SimClause(9, 2, x)])
        assert const.is_safe()

    def test_max_k(self):
        q = ExtendedBGP(
            [TriplePattern(Var("x"), 0, Var("y"))],
            [SimClause(Var("x"), 7, Var("y")), SimClause(Var("y"), 3, Var("x"))],
        )
        assert q.max_k() == 7

    def test_max_k_no_clauses(self):
        q = ExtendedBGP([TriplePattern(Var("x"), 0, Var("y"))])
        assert q.max_k() == 0

    def test_equality_and_hash(self):
        assert self.q() == self.q()
        assert hash(self.q()) == hash(self.q())

    def test_wrong_atom_types_rejected(self):
        with pytest.raises(QueryError):
            ExtendedBGP(["not a pattern"], [])
        with pytest.raises(QueryError):
            ExtendedBGP([], ["not a clause"])
