"""Tests for SELECT-style projection/DISTINCT and the two leapfrog
intersection strategies."""

import pytest

from repro.engines.ring_knn import RingKnnEngine
from repro.ltj.engine import LTJEngine
from repro.ltj.ordering import MinCandidatesOrdering
from repro.ltj.triple_relation import RingTripleRelation
from repro.query.model import Var
from repro.query.parser import parse_query
from repro.utils.errors import QueryError

X, Y, Z = Var("x"), Var("y"), Var("z")


class TestProjection:
    def test_project_keeps_only_requested_vars(self, small_db):
        q = parse_query("(?x, 20, ?y) . knn(?x, ?y, 4)")
        result = RingKnnEngine(small_db).evaluate(q, project=[X])
        assert result.solutions
        for sol in result.solutions:
            assert set(sol) == {X}

    def test_distinct_projection_dedups(self, small_db):
        q = parse_query("(?x, 20, ?y)")
        full = RingKnnEngine(small_db).evaluate(q, project=[X])
        distinct = RingKnnEngine(small_db).evaluate(
            q, project=[X], distinct=True
        )
        xs = {sol[X] for sol in full.solutions}
        assert len(distinct.solutions) == len(xs)
        assert {sol[X] for sol in distinct.solutions} == xs
        assert len(full.solutions) >= len(distinct.solutions)

    def test_distinct_with_limit(self, small_db):
        q = parse_query("(?x, 20, ?y)")
        result = RingKnnEngine(small_db).evaluate(
            q, project=[X], distinct=True, limit=3
        )
        assert len(result.solutions) == 3
        keys = [sol[X] for sol in result.solutions]
        assert len(set(keys)) == 3

    def test_projection_preserves_answer_multiplicity(self, small_db):
        q = parse_query("(?x, 20, ?y)")
        plain = RingKnnEngine(small_db).evaluate(q)
        projected = RingKnnEngine(small_db).evaluate(q, project=[X, Y])
        assert len(plain.solutions) == len(projected.solutions)


class TestIntersectionStrategies:
    def _relations(self, db, text):
        q = parse_query(text)
        return [RingTripleRelation(db.ring, t) for t in q.triples]

    @pytest.mark.parametrize(
        "text",
        [
            "(?x, 20, ?y) . (?y, 21, ?z)",
            "(?x, 20, ?y) . (?y, 20, ?z) . (?z, 20, ?x)",
            "(?x, ?p, ?y) . (?y, ?p, ?x)",
        ],
    )
    def test_strategies_agree(self, small_db, text):
        results = {}
        for strategy in ("leapfrog", "roundrobin"):
            engine = LTJEngine(
                self._relations(small_db, text),
                ordering=MinCandidatesOrdering(),
                intersection=strategy,
            )
            results[strategy] = sorted(
                tuple(sorted((v.name, c) for v, c in s.items()))
                for s in engine.evaluate()
            )
        assert results["leapfrog"] == results["roundrobin"]

    def test_leapfrog_not_more_leaps_on_skew(self, small_db):
        """The sorted strategy should not issue more leap calls than
        round-robin on multi-atom intersections."""
        text = "(?x, 20, ?y) . (?y, 20, ?z) . (?z, 20, ?x)"
        calls = {}
        for strategy in ("leapfrog", "roundrobin"):
            engine = LTJEngine(
                self._relations(small_db, text),
                ordering=MinCandidatesOrdering(),
                intersection=strategy,
            )
            engine.evaluate()
            calls[strategy] = engine.stats.leap_calls
        assert calls["leapfrog"] <= calls["roundrobin"] * 1.1

    def test_unknown_strategy_rejected(self, small_db):
        with pytest.raises(QueryError):
            LTJEngine(
                self._relations(small_db, "(?x, 20, ?y)"),
                intersection="zigzag",
            )
