"""Rule-based stateful property tests (hypothesis state machines).

These drive long random interleavings of bind/unbind/leap against
reference models, checking that backtracking never corrupts state —
the property the whole LTJ search tree depends on.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.graph.sixperm import SixPermIndex
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.succinct import KnnRing
from repro.ltj.knn_relation import KnnClauseRelation
from repro.query.model import SimClause, Var
from repro.ring.index import RingIndex
from repro.ring.pattern import RingPatternState

# Shared static data: small graph + oracle (built once; machines only
# mutate their own pattern states).
_RNG = np.random.default_rng(99)
_GRAPH = GraphData(_RNG.integers(0, 10, size=(120, 3)))
_RING = RingIndex(_GRAPH)
_ORACLE = SixPermIndex(_GRAPH)

_POINTS = np.random.default_rng(3).normal(size=(12, 2))
_KNN_GRAPH = build_knn_graph_bruteforce(_POINTS, K=4)
_KNN_RING = KnnRing(_KNN_GRAPH)

X, Y = Var("x"), Var("y")


class RingPatternMachine(RuleBasedStateMachine):
    """Random bind/unbind/leap walks over one triple pattern."""

    @initialize()
    def setup(self):
        self.state = RingPatternState(_RING, {})
        self.bound: dict[str, int] = {}

    @rule(
        coord=st.sampled_from("spo"),
        value=st.integers(0, 11),
    )
    def bind(self, coord, value):
        if coord in self.bound:
            return
        self.state.bind(coord, value)
        self.bound[coord] = value

    @precondition(lambda self: self.bound)
    @rule()
    def unbind(self):
        # RingPatternState unbinds in LIFO order; track via stack depth.
        # We emulate by replaying: pop the most recent via state depth.
        self.state.unbind()
        # Remove the most recently bound coordinate (insertion order).
        last = list(self.bound)[-1]
        del self.bound[last]

    @rule(coord=st.sampled_from("spo"), lower=st.integers(0, 12))
    def leap_matches_oracle(self, coord, lower):
        if coord in self.bound:
            return
        assert self.state.leap(coord, lower) == _ORACLE.leap(
            self.bound, coord, lower
        )

    @invariant()
    def count_matches_oracle(self):
        if hasattr(self, "state"):
            assert self.state.count() == _ORACLE.count(self.bound)


class KnnRelationMachine(RuleBasedStateMachine):
    """Random walks over a similarity-clause relation vs the KnnGraph."""

    @initialize(k=st.integers(1, 4))
    def setup(self, k):
        self.k = k
        self.rel = KnnClauseRelation(_KNN_RING, SimClause(X, k, Y))
        self.values: dict[Var, int] = {}
        self.order: list[Var] = []

    @rule(var=st.sampled_from([X, Y]), value=st.integers(0, 13))
    def bind(self, var, value):
        if var in self.values:
            return
        self.rel.bind(var, value)
        self.values[var] = value
        self.order.append(var)

    @precondition(lambda self: self.order)
    @rule()
    def unbind(self):
        var = self.order.pop()
        self.rel.unbind(var)
        del self.values[var]

    @rule(var=st.sampled_from([X, Y]), lower=st.integers(0, 13))
    def leap_matches_reference(self, var, lower):
        if var in self.values or self.rel.is_empty():
            return
        got = self.rel.leap(var, lower)
        if var == Y and X in self.values:
            candidates = [
                int(v)
                for v in _KNN_GRAPH.neighbors_of(self.values[X], self.k)
                if v >= lower
            ]
        elif var == X and Y in self.values:
            y = self.values[Y]
            candidates = [
                u
                for u in range(12)
                if u >= lower and u != y and _KNN_GRAPH.is_knn(u, y, self.k)
            ]
        elif var == X:
            candidates = [u for u in range(12) if u >= lower]
        else:
            candidates = [
                v
                for v in range(12)
                if v >= lower
                and any(
                    _KNN_GRAPH.is_knn(u, v, self.k)
                    for u in range(12)
                    if u != v
                )
            ]
        expected = min(candidates) if candidates else None
        assert got == expected, (var, lower, self.values)

    @invariant()
    def emptiness_matches_reference(self):
        if not hasattr(self, "rel"):
            return
        if X in self.values and Y in self.values:
            expected_nonempty = _KNN_GRAPH.is_knn(
                self.values[X], self.values[Y], self.k
            )
            assert self.rel.is_empty() == (not expected_nonempty)


TestRingPatternMachine = RingPatternMachine.TestCase
TestRingPatternMachine.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestKnnRelationMachine = KnnRelationMachine.TestCase
TestKnnRelationMachine.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
