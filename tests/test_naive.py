"""Tests for the brute-force oracle itself (on hand-computable cases)."""

import numpy as np
import pytest

from repro.graph.naive import evaluate_naive
from repro.graph.triples import GraphData
from repro.knn.graph import KnnGraph
from repro.query.model import Var
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def tiny():
    graph = GraphData([(0, 9, 1), (1, 9, 2), (2, 9, 0), (0, 8, 2)])
    members = np.arange(3)
    neighbors = np.array([[1, 2], [0, 2], [1, 0]])
    return graph, KnnGraph(members, neighbors)


class TestNaive:
    def test_single_pattern(self, tiny):
        graph, _knn = tiny
        sols = evaluate_naive(parse_query("(?x, 9, ?y)"), graph)
        assert len(sols) == 3

    def test_join(self, tiny):
        graph, _knn = tiny
        sols = evaluate_naive(parse_query("(?x, 9, ?y) . (?y, 9, ?z)"), graph)
        got = {(s[Var("x")], s[Var("y")], s[Var("z")]) for s in sols}
        assert got == {(0, 1, 2), (1, 2, 0), (2, 0, 1)}

    def test_knn_clause_filters(self, tiny):
        graph, knn = tiny
        sols = evaluate_naive(
            parse_query("(?x, 9, ?y) . knn(?x, ?y, 1)"), graph, knn
        )
        # Edges: 0->1 (1 is 0's 1-NN: yes), 1->2 (2 is 1's 1-NN? S_1=[0,2]
        # rank of 2 is 2: no), 2->0 (0 is 2's 1-NN? S_2=[1,0]: no).
        got = {(s[Var("x")], s[Var("y")]) for s in sols}
        assert got == {(0, 1)}

    def test_knn_extension_variable(self, tiny):
        graph, knn = tiny
        sols = evaluate_naive(
            parse_query("(?x, 8, ?y) . knn(?x, ?w, 2)"), graph, knn
        )
        # Edge (0, 8, 2); w ranges over 2-NN(0) = {1, 2}.
        got = {(s[Var("x")], s[Var("y")], s[Var("w")]) for s in sols}
        assert got == {(0, 2, 1), (0, 2, 2)}

    def test_missing_knn_graph_raises(self, tiny):
        graph, _knn = tiny
        with pytest.raises(ValueError):
            evaluate_naive(parse_query("(?x, 9, ?y) . knn(?x, ?y, 1)"), graph)

    def test_missing_distances_raise(self, tiny):
        graph, knn = tiny
        with pytest.raises(ValueError):
            evaluate_naive(
                parse_query("(?x, 9, ?y) . dist(?x, ?y, 1.0)"), graph, knn
            )

    def test_distance_clause(self, tiny):
        graph, knn = tiny
        distances = {(0, 1): 0.5, (0, 2): 2.0, (1, 2): 0.7}
        sols = evaluate_naive(
            parse_query("(?x, 9, ?y) . dist(?x, ?y, 1.0)"),
            graph,
            knn,
            distances,
        )
        got = {(s[Var("x")], s[Var("y")]) for s in sols}
        # Symmetric lookup: edges 0->1 (0.5 ok), 1->2 (0.7 ok), 2->0 (2.0 no).
        assert got == {(0, 1), (1, 2)}

    def test_deduplication(self, tiny):
        graph, _knn = tiny
        # x joins via two patterns that can match the same assignment.
        sols = evaluate_naive(
            parse_query("(?x, 9, ?y) . (?x, 9, ?y)"), graph
        )
        assert len(sols) == 3
