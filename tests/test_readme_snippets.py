"""The documentation's code snippets must actually run.

Executes the README quickstart and the `repro` package docstring
example so documentation rot fails CI.
"""

import numpy as np


def test_package_docstring_example():
    from repro import (
        GraphData,
        GraphDatabase,
        RingKnnEngine,
        build_knn_graph,
        parse_query,
    )

    graph = GraphData([(0, 9, 1), (1, 9, 2), (2, 9, 3)])
    points = np.random.default_rng(0).normal(size=(4, 2))
    knn = build_knn_graph(points, K=2)
    db = GraphDatabase(graph, knn)
    result = RingKnnEngine(db).evaluate(
        parse_query("(?x, 9, ?y) . knn(?x, ?y, 2)")
    )
    assert isinstance(result.solutions, list)


def test_readme_quickstart():
    from repro import (
        GraphData,
        GraphDatabase,
        RingKnnEngine,
        build_knn_graph,
        parse_query,
    )

    graph = GraphData([(0, 9, 1), (1, 9, 2), (2, 9, 3), (3, 9, 0)])
    points = np.random.default_rng(0).normal(size=(4, 8))
    knn = build_knn_graph(points, K=2)
    db = GraphDatabase(graph, knn)
    query = parse_query("(?x, 9, ?y) . knn(?x, ?y, 2)")
    result = RingKnnEngine(db).evaluate(query)
    assert result.stats.bindings >= len(result.solutions)


def test_usage_doc_multi_relation_snippet():
    from repro import GraphData, GraphDatabase, RingKnnEngine, parse_query
    from repro.knn.builders import build_knn_graph_bruteforce

    rng = np.random.default_rng(1)
    graph = GraphData([(i, 7, (i + 1) % 8) for i in range(8)])
    g1 = build_knn_graph_bruteforce(rng.normal(size=(8, 2)), K=3)
    g2 = build_knn_graph_bruteforce(rng.normal(size=(8, 5)), K=3)
    db = GraphDatabase(graph, knn_graphs={"tonality": g1, "lyrics": g2})
    q = parse_query(
        "(?x, 7, ?y) . knn:tonality(?x, ?y, 3) . knn:lyrics(?x, ?y, 3)"
    )
    result = RingKnnEngine(db).evaluate(q)
    for sol in result.solutions:
        values = list(sol.values())
        assert len(values) == 2
