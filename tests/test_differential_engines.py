"""Differential testing: every engine agrees with brute force on
randomly generated graphs and extended BGPs.

Hypothesis draws a database from a prebuilt pool (small graphs with
K-NN and distance structures) and a random extended BGP — triples with
mixed variables/constants, ``<|_k`` clauses (including 2-cycles and
constants), ``dist`` clauses — and checks that all engines return the
same solution multiset as :func:`repro.graph.naive.evaluate_naive`.

The unmarked test keeps CI fast; the ``slow``-marked test runs the
full generation budget (deselect with ``-m "not slow"``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engines.auto import AutoEngine
from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.database import GraphDatabase
from repro.engines.materialize import MaterializeEngine
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.graph.naive import evaluate_naive
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.distance_index import DistanceRangeIndex
from repro.query.model import (
    DistClause,
    ExtendedBGP,
    SimClause,
    TriplePattern,
    Var,
)
from repro.utils.errors import QueryError

N_NODES = 10
K = 3
D_MAX = 1.5
PREDICATES = (50, 51)
VARS = (Var("x"), Var("y"), Var("z"), Var("w"))


def canonical(solutions):
    return sorted(
        tuple(sorted((v.name, c) for v, c in s.items())) for s in solutions
    )


def _build_instance(seed: int):
    rng = np.random.default_rng(seed)
    triples = [
        (
            int(rng.integers(0, N_NODES)),
            int(rng.choice(PREDICATES)),
            int(rng.integers(0, N_NODES)),
        )
        for _ in range(30)
    ]
    graph = GraphData(triples)
    points = rng.normal(size=(N_NODES, 2))
    knn = build_knn_graph_bruteforce(points, K=K)
    index = DistanceRangeIndex(points, d_max=D_MAX)
    distances = {
        (i, j): float(np.linalg.norm(points[i] - points[j]))
        for i in range(N_NODES)
        for j in range(i + 1, N_NODES)
    }
    db = GraphDatabase(graph, knn, distance_index=index)
    return db, graph, knn, distances


# A small pool so hypothesis varies the data too, without paying index
# construction per example.
_POOL = [_build_instance(seed) for seed in (3, 17, 91)]


@st.composite
def extended_bgps(draw) -> ExtendedBGP:
    """A random extended BGP over the pool databases' vocabulary."""
    terms = list(VARS) + [0, 3, 7]
    triples = [
        TriplePattern(
            draw(st.sampled_from(terms)),
            draw(st.sampled_from(PREDICATES)),
            draw(st.sampled_from(terms)),
        )
        for _ in range(draw(st.integers(0, 3)))
    ]
    # Clause sides: variables (shared with the triples or fresh) and
    # the occasional constant; Def. 5 requires x != y.
    sides = list(VARS) + [2, 5]

    def side_pair():
        x = draw(st.sampled_from(sides))
        y = draw(st.sampled_from([s for s in sides if s != x]))
        return x, y

    sim_clauses = []
    for _ in range(draw(st.integers(0, 2))):
        x, y = side_pair()
        sim_clauses.append(SimClause(x, draw(st.integers(1, K)), y))
    dist_clauses = []
    for _ in range(draw(st.integers(0, 1))):
        x, y = side_pair()
        dist_clauses.append(
            DistClause(x, draw(st.sampled_from([0.4, 0.9, D_MAX])), y)
        )
    if not triples and not sim_clauses and not dist_clauses:
        sim_clauses.append(SimClause(Var("x"), 2, Var("y")))
    return ExtendedBGP(triples, sim_clauses, dist_clauses)


def _check_one(data) -> None:
    db, graph, knn, distances = _POOL[
        data.draw(st.integers(0, len(_POOL) - 1), label="db")
    ]
    query = data.draw(extended_bgps(), label="query")
    expected = canonical(evaluate_naive(query, graph, knn, distances))

    for engine in (
        RingKnnEngine(db),
        RingKnnSEngine(db),
        ClassicSixPermEngine(db),
        AutoEngine(db),
    ):
        got = engine.evaluate(query).sorted_solutions()
        assert got == expected, (engine.name, query)

    # Domain-sharded execution must not only agree with the oracle but
    # reproduce the serial Ring-KNN solution *order* exactly.
    serial = RingKnnEngine(db).evaluate(query)
    parallel = ParallelRingKnnEngine(db, workers=2).evaluate(query)
    assert parallel.sorted_solutions() == expected, ("parallel-knn", query)
    assert parallel.solutions == serial.solutions, ("parallel-knn", query)

    # The baseline rejects clause graphs disconnected from the triples
    # (the paper's Sec. 5.3 restriction) — only compare when supported.
    try:
        got = BaselineEngine(db).evaluate(query).sorted_solutions()
    except QueryError:
        pass
    else:
        assert got == expected, ("baseline", query)

    # The materialization strawman covers <|_k clauses only.
    if not query.dist_clauses:
        got = MaterializeEngine(db).evaluate(query).sorted_solutions()
        assert got == expected, ("materialize", query)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.data())
def test_differential_engines_quick(data):
    """CI-sized slice of the differential property."""
    _check_one(data)


@pytest.mark.slow
@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.data())
def test_differential_engines_thorough(data):
    """The full local budget (>= 200 generated queries)."""
    _check_one(data)
