"""Tests for constraint-graph analysis (Defs. 9, 11, 12)."""

from repro.bounds.constraint_graph import ConstraintGraph
from repro.query.model import ExtendedBGP, SimClause, TriplePattern, Var
from repro.query.parser import parse_query

X, Y, Z, W = Var("x"), Var("y"), Var("z"), Var("w")


def q(text):
    return parse_query(text)


class TestAcyclicity:
    def test_no_clauses_is_acyclic(self):
        g = ConstraintGraph(q("(?x, 1, ?y)"))
        assert g.is_acyclic()
        assert g.is_single_2_cyclic()

    def test_chain_is_acyclic(self):
        g = ConstraintGraph(
            q("(?x,1,?y).(?y,1,?z) . knn(?x, ?y, 2) . knn(?y, ?z, 2)")
        )
        assert g.is_acyclic()
        assert g.cyclic_constraints() == ()

    def test_two_cycle_detected(self):
        g = ConstraintGraph(q("(?x,1,?y) . sim(?x, ?y, 2)"))
        assert not g.is_acyclic()
        assert len(g.cyclic_constraints()) == 2

    def test_three_cycle_detected(self):
        g = ConstraintGraph(
            q("(?x,1,?y).(?y,1,?z) . knn(?x,?y,2) . knn(?y,?z,2) . knn(?z,?x,2)")
        )
        assert not g.is_acyclic()
        assert len(g.cyclic_constraints()) == 3

    def test_constant_clauses_never_cyclic(self):
        g = ConstraintGraph(q("(?x,1,?y) . knn(5, ?x, 2) . knn(?x, 6, 2)"))
        assert g.is_acyclic()


class TestSingle2Cyclic:
    def test_symmetric_pair_qualifies(self):
        g = ConstraintGraph(q("(?x,1,?y) . sim(?x, ?y, 2)"))
        assert g.is_single_2_cyclic()

    def test_extra_outgoing_edge_disqualifies(self):
        # Def. 12 forbids x <|_k z with z outside the 2-cycle.
        g = ConstraintGraph(
            q("(?x,1,?y).(?y,1,?z) . sim(?x, ?y, 2) . knn(?x, ?z, 2)")
        )
        assert not g.is_single_2_cyclic()

    def test_incoming_edge_to_cycle_allowed(self):
        # z <|_k x points INTO the cycle: still single 2-cyclic.
        g = ConstraintGraph(
            q("(?x,1,?y).(?y,1,?z) . sim(?x, ?y, 2) . knn(?z, ?x, 2)")
        )
        assert g.is_single_2_cyclic()

    def test_three_cycle_disqualifies(self):
        g = ConstraintGraph(
            q("(?x,1,?y).(?y,1,?z) . knn(?x,?y,2) . knn(?y,?z,2) . knn(?z,?x,2)")
        )
        assert not g.is_single_2_cyclic()

    def test_two_separate_2_cycles_disqualify(self):
        g = ConstraintGraph(
            q("(?x,1,?y).(?z,1,?w) . sim(?x, ?y, 2) . sim(?z, ?w, 2)")
        )
        assert not g.is_single_2_cyclic()


class TestOrderHelpers:
    def test_topological_order(self):
        g = ConstraintGraph(
            q("(?x,1,?y).(?y,1,?z) . knn(?x, ?y, 2) . knn(?y, ?z, 2)")
        )
        order = g.topological_order()
        assert order.index(X) < order.index(Y) < order.index(Z)

    def test_topological_order_raises_on_cycle(self):
        import pytest

        g = ConstraintGraph(q("(?x,1,?y) . sim(?x, ?y, 2)"))
        with pytest.raises(ValueError):
            g.topological_order()

    def test_minimal_variables_no_incoming(self):
        g = ConstraintGraph(
            q("(?x,1,?y).(?y,1,?z) . knn(?x, ?y, 2) . knn(?y, ?z, 2)")
        )
        assert set(g.minimal_variables()) == {X}
        # After x is bound, y becomes minimal.
        assert set(g.minimal_variables({Y, Z})) == {Y}

    def test_minimal_variables_cycle_has_none_among_pair(self):
        g = ConstraintGraph(q("(?x,1,?y) . sim(?x, ?y, 2)"))
        assert set(g.minimal_variables({X, Y})) == set()

    def test_scc_ids(self):
        g = ConstraintGraph(q("(?x,1,?y).(?y,1,?z) . sim(?x, ?y, 2) . knn(?y, ?z, 2)"))
        assert g.scc_id(X) == g.scc_id(Y)
        assert g.scc_id(Z) != g.scc_id(X)


class TestAgainstNetworkx:
    """Cross-check SCCs with networkx on random graphs."""

    def test_random_constraint_graphs(self):
        import networkx as nx
        import numpy as np

        rng = np.random.default_rng(3)
        variables = [Var(f"v{i}") for i in range(8)]
        for trial in range(25):
            edges = set()
            for _ in range(int(rng.integers(1, 12))):
                a, b = rng.integers(0, 8, 2)
                if a != b:
                    edges.add((int(a), int(b)))
            triples = [TriplePattern(v, 0, variables[(i + 1) % 8]) for i, v in enumerate(variables)]
            clauses = [
                SimClause(variables[a], 2, variables[b]) for a, b in edges
            ]
            query = ExtendedBGP(triples, clauses)
            cg = ConstraintGraph(query)
            nxg = nx.DiGraph()
            nxg.add_nodes_from(range(8))
            nxg.add_edges_from(edges)
            nx_scc = {
                node: i
                for i, comp in enumerate(nx.strongly_connected_components(nxg))
                for node in comp
            }
            for a, b in edges:
                same_ours = cg.scc_id(variables[a]) == cg.scc_id(variables[b])
                same_nx = nx_scc[a] == nx_scc[b]
                assert same_ours == same_nx, (trial, a, b)
            assert cg.is_acyclic() == nx.is_directed_acyclic_graph(nxg)
