"""The observability surfaces: trace schema, trace diffing, the
``repro trace`` CLI subcommand, and EXPLAIN ANALYZE."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.engines.auto import AutoEngine
from repro.engines.database import GraphDatabase
from repro.engines.kstar import evaluate_k_star
from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.explain import explain
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.obs import (
    QueryTrace,
    TraceSchemaError,
    diff_traces,
    format_diff,
    validate_trace,
)
from repro.obs.schema import main as schema_main
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(9)
    triples = [
        (
            int(rng.integers(0, 12)),
            int(20 + rng.integers(0, 2)),
            int(rng.integers(0, 12)),
        )
        for _ in range(60)
    ]
    points = rng.normal(size=(12, 2))
    knn = build_knn_graph_bruteforce(points, K=5)
    return GraphDatabase(GraphData(triples), knn)


@pytest.fixture(scope="module")
def trace_doc(db):
    trace = QueryTrace()
    RingKnnEngine(db).evaluate(
        parse_query("(?x, 20, ?y) . knn(?x, ?y, 4)"), trace=trace
    )
    return trace.to_dict()


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
class TestSchema:
    def test_emitted_trace_validates(self, trace_doc):
        validate_trace(trace_doc)

    def test_round_trips_through_json(self, trace_doc):
        validate_trace(json.loads(json.dumps(trace_doc)))

    def test_missing_key_rejected(self, trace_doc):
        broken = dict(trace_doc)
        del broken["variables"]
        with pytest.raises(TraceSchemaError, match="variables"):
            validate_trace(broken)

    def test_wrong_type_rejected(self, trace_doc):
        broken = json.loads(json.dumps(trace_doc))
        broken["solutions"] = "three"
        with pytest.raises(TraceSchemaError, match="solutions"):
            validate_trace(broken)

    def test_negative_counter_rejected(self, trace_doc):
        broken = json.loads(json.dumps(trace_doc))
        name = next(iter(broken["variables"]))
        broken["variables"][name]["leaps"] = -1
        with pytest.raises(TraceSchemaError, match="minimum"):
            validate_trace(broken)

    def test_bad_relation_kind_rejected(self, trace_doc):
        broken = json.loads(json.dumps(trace_doc))
        broken["relations"][0]["kind"] = "mystery"
        with pytest.raises(TraceSchemaError, match="kind"):
            validate_trace(broken)

    def test_schema_cli(self, trace_doc, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(trace_doc))
        assert schema_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        doc = json.loads(json.dumps(trace_doc))
        doc["timed_out"] = "nope"
        bad.write_text(json.dumps(doc))
        assert schema_main([str(bad)]) == 1


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
class TestDiff:
    def test_identical_traces_diff_empty(self, trace_doc):
        same = json.loads(json.dumps(trace_doc))
        assert diff_traces(trace_doc, same, ignore_timings=True) == []
        assert "identical" in format_diff([])

    def test_diff_detects_changed_counters(self, db, trace_doc):
        other = QueryTrace()
        RingKnnEngine(db).evaluate(
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 2)"), trace=other
        )
        deltas = diff_traces(
            trace_doc, other.to_dict(), ignore_timings=True
        )
        assert deltas, "changing k must move some counter"
        paths = {d.path for d in deltas}
        assert any("leap" in p or "candidates" in p for p in paths)
        rendered = format_diff(deltas)
        assert "counters changed" in rendered

    def test_ignore_timings_drops_phase_noise(self, db, trace_doc):
        rerun = QueryTrace()
        RingKnnEngine(db).evaluate(
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 4)"), trace=rerun
        )
        deltas = diff_traces(
            trace_doc, rerun.to_dict(), ignore_timings=True
        )
        # Same query, same engine, deterministic counters: only the
        # timings could differ, and those are suppressed.
        assert deltas == []


# ----------------------------------------------------------------------
# engine integrations beyond the core engines
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_auto_records_selection(self, db):
        trace = QueryTrace()
        result = AutoEngine(db).evaluate(
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)"), trace=trace
        )
        assert trace.meta["auto"]["selected"] == result.engine
        assert trace.engine == result.engine

    def test_materialize_traces_its_own_ring(self, db):
        trace = QueryTrace()
        result = MaterializeEngine(db).evaluate(
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)"), trace=trace
        )
        assert trace.meta["materialized_pairs"] > 0
        assert "materialize" in trace.phases
        assert trace.wavelets["materialized_ring"].total > 0
        assert trace.solutions == len(result.solutions)
        validate_trace(trace.to_dict())

    def test_kstar_traces_winning_k(self, db):
        trace = QueryTrace()
        result = evaluate_k_star(
            RingKnnEngine(db),
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 1)"),
            k_star=1,
            max_k=5,
            trace=trace,
        )
        assert trace.meta["kstar"]["k"] == result.k
        assert trace.meta["kstar"]["evaluations"] == result.evaluations
        assert trace.stats, "winning k must have been re-run traced"
        validate_trace(trace.to_dict())


# ----------------------------------------------------------------------
# CLI and EXPLAIN ANALYZE
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "bench.npz"
    assert main(
        [
            "generate", "--out", str(path),
            "--entities", "60", "--images", "30",
            "--misc-triples", "200", "--K", "5",
        ]
    ) == 0
    return path


class TestCli:
    QUERY = "(?e, 0, ?img) . knn(?img, ?other, 3)"

    def test_trace_subcommand_stdout(self, bundle_path, capsys):
        code = main(
            ["trace", "--data", str(bundle_path), "--query", self.QUERY]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        validate_trace(document)
        assert document["query"] == self.QUERY
        assert document["variables"]
        assert document["relations"]

    def test_trace_subcommand_file(self, bundle_path, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace", "--data", str(bundle_path),
                "--query", self.QUERY,
                "--engine", "ring-knn-s",
                "--out", str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        validate_trace(document)
        assert document["engine"] == "ring-knn-s"

    def test_explain_analyze_cli(self, bundle_path, capsys):
        code = main(
            [
                "explain", "--data", str(bundle_path),
                "--query", self.QUERY, "--analyze",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "analyze (ring-knn):" in out
        assert "var ?img:" in out
        assert "wavelet ring:" in out
        assert "phase evaluate:" in out


class TestExplainAnalyze:
    def test_report_carries_trace(self, db):
        report = explain(
            db,
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)"),
            analyze=True,
        )
        assert report.analysis is not None
        assert report.analysis.stats["leap_calls"] > 0
        text = report.format()
        assert "analyze (ring-knn):" in text
        assert "totals: leaps=" in text
        assert "step 0: chose" in text
        validate_trace(report.analysis.to_dict())

    def test_static_explain_unchanged(self, db):
        report = explain(
            db, parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        )
        assert report.analysis is None
        assert "analyze" not in report.format()
