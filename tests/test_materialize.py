"""Tests for the Sec. 3.2 materialization strawman engine."""

import pytest

from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.query.model import DistClause, ExtendedBGP, TriplePattern, Var
from repro.query.parser import parse_query
from repro.utils.errors import QueryError


class TestMaterializeEngine:
    def test_matches_integrated_engine(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        straw = MaterializeEngine(small_db).evaluate(query)
        integrated = RingKnnEngine(small_db).evaluate(query)
        assert straw.sorted_solutions() == integrated.sorted_solutions()

    def test_phase_breakdown(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        result = MaterializeEngine(small_db).evaluate(query)
        assert result.phase_seconds["materialize"] > 0
        assert result.phase_seconds["query"] >= 0
        assert result.elapsed >= result.phase_seconds["materialize"]

    def test_one_relation_per_distinct_k(self, small_db):
        """Two clauses with the same k share one materialized relation;
        different ks need separate extractions (Sec. 3.2: 'each clause
        may use a different k value')."""
        query = parse_query(
            "(?x, 20, ?y) . (?y, 20, ?z) . knn(?x, ?y, 3) . knn(?y, ?z, 3)"
        )
        result = MaterializeEngine(small_db).evaluate(query)
        integrated = RingKnnEngine(small_db).evaluate(query)
        assert result.sorted_solutions() == integrated.sorted_solutions()
        mixed = parse_query(
            "(?x, 20, ?y) . (?y, 20, ?z) . knn(?x, ?y, 2) . knn(?y, ?z, 4)"
        )
        result = MaterializeEngine(small_db).evaluate(mixed)
        integrated = RingKnnEngine(small_db).evaluate(mixed)
        assert result.sorted_solutions() == integrated.sorted_solutions()

    def test_variable_predicate_patterns_not_polluted(self, small_db):
        """The materialized pairs live in their own tries; a query with a
        variable predicate must not match them."""
        query = parse_query("(?x, ?p, ?y) . knn(?x, ?y, 3)")
        straw = MaterializeEngine(small_db).evaluate(query)
        integrated = RingKnnEngine(small_db).evaluate(query)
        assert straw.sorted_solutions() == integrated.sorted_solutions()

    def test_distance_clauses_rejected(self, small_db):
        query = ExtendedBGP(
            [TriplePattern(Var("x"), 20, Var("y"))],
            dist_clauses=[DistClause(Var("x"), 0.5, Var("y"))],
        )
        with pytest.raises(QueryError):
            MaterializeEngine(small_db).evaluate(query)

    def test_setup_cost_scales_with_k(self, small_db):
        """Extraction is O(k n): larger k must not be cheaper."""
        q_small = parse_query("(?x, 20, ?y) . knn(?x, ?y, 1)")
        q_large = parse_query("(?x, 20, ?y) . knn(?x, ?y, 5)")
        small = MaterializeEngine(small_db).evaluate(q_small)
        large = MaterializeEngine(small_db).evaluate(q_large)
        # Compare extracted sizes indirectly via the stats; at minimum,
        # both evaluated correctly against the integrated engine.
        for q, res in ((q_small, small), (q_large, large)):
            integrated = RingKnnEngine(small_db).evaluate(q)
            assert res.sorted_solutions() == integrated.sorted_solutions()
