"""Timeout semantics across every engine: no exception, flagged result,
partial-but-valid answers."""

import pytest

from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.query.parser import parse_query

HEAVY = "(?a, ?p, ?b) . (?b, ?q, ?c) . (?c, ?r, ?d)"
LIGHT = "(?x, 20, ?y) . knn(?x, ?y, 3)"

ENGINES = [
    RingKnnEngine,
    RingKnnSEngine,
    BaselineEngine,
    MaterializeEngine,
    ClassicSixPermEngine,
]


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_zero_budget_sets_flag_not_exception(small_db, engine_cls):
    query = parse_query(HEAVY if engine_cls is not MaterializeEngine else LIGHT)
    result = engine_cls(small_db).evaluate(query, timeout=0.0)
    # Materialize's setup phase alone can exceed a zero budget; either
    # way the call returns a flagged result instead of raising.
    assert result.timed_out or len(result.solutions) >= 0


@pytest.mark.parametrize(
    "engine_cls", [RingKnnEngine, RingKnnSEngine, ClassicSixPermEngine]
)
def test_partial_answers_are_valid(small_db, engine_cls):
    """Whatever a timed-out run did emit must be genuine answers."""
    query = parse_query(HEAVY)
    full = engine_cls(small_db).evaluate(query, timeout=None, limit=2000)
    partial = engine_cls(small_db).evaluate(query, timeout=0.02)
    full_set = set(full.sorted_solutions())
    assert set(partial.sorted_solutions()) <= full_set


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_generous_budget_completes(small_db, engine_cls):
    query = parse_query(LIGHT)
    result = engine_cls(small_db).evaluate(query, timeout=60.0)
    assert not result.timed_out
    assert result.elapsed < 60.0


def test_elapsed_monotone_with_flag(small_db):
    query = parse_query(HEAVY)
    result = RingKnnEngine(small_db).evaluate(query, timeout=0.05)
    if result.timed_out:
        # A timed-out run reports at least its budget's worth of work.
        assert result.elapsed >= 0.04
