"""The parallel-knn engine returns the serial engines' exact output.

The acceptance bar of the sharded executor: for pool sizes 1, 2 and 4
the ordered solution list — not just the multiset — equals the serial
base engine's, and so do the merged logical counters. Pool size 1 runs
the shards inline (no subprocess), 2 and 4 go through a real
multiprocessing pool.
"""

from __future__ import annotations

import pytest

from repro.engines.auto import AutoEngine
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.parallel import forced
from repro.query.model import ExtendedBGP, SimClause, TriplePattern, Var

X, Y, Z = Var("x"), Var("y"), Var("z")

QUERIES = [
    ExtendedBGP([TriplePattern(X, 20, Y)]),
    ExtendedBGP([TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)]),
    ExtendedBGP([TriplePattern(X, 20, Y)], clauses=[SimClause(X, 3, Y)]),
    ExtendedBGP(
        [TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)],
        clauses=[SimClause(X, 2, Z)],
    ),
    ExtendedBGP([TriplePattern(3, 20, Y)]),
    ExtendedBGP([TriplePattern(X, 22, X)]),
]

WORKER_COUNTS = (1, 2, 4)


def _stat_tuple(stats):
    return (
        stats.solutions,
        stats.bindings,
        stats.attempts,
        stats.leap_calls,
        stats.timed_out,
        [v.name for v in stats.first_descent_order],
    )


@pytest.mark.parametrize("base_cls", [RingKnnEngine, RingKnnSEngine])
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_matches_serial_ordered(small_db, base_cls, workers):
    serial = base_cls(small_db)
    parallel = ParallelRingKnnEngine(
        small_db, workers=workers, base=base_cls.name
    )
    for query in QUERIES:
        expected = serial.evaluate(query)
        got = parallel.evaluate(query)
        assert got.engine == "parallel-knn"
        # Ordered equality: sharded merge preserves the serial order.
        assert got.solutions == expected.solutions, query
        assert _stat_tuple(got.stats) == _stat_tuple(expected.stats), query


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_project_distinct_limit(small_db, workers):
    serial = RingKnnEngine(small_db)
    parallel = ParallelRingKnnEngine(small_db, workers=workers)
    query = ExtendedBGP([TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)])
    for kwargs in (
        {"limit": 5},
        {"project": [X]},
        {"project": [X], "distinct": True},
        {"project": [X, Y], "distinct": True, "limit": 3},
        {"distinct": True, "limit": 4},
    ):
        expected = serial.evaluate(query, **kwargs)
        got = parallel.evaluate(query, **kwargs)
        assert got.solutions == expected.solutions, kwargs


def test_constant_query_falls_back_serial(small_db):
    # No variables -> nothing to shard; the serial fallback still
    # reports under the parallel engine's name.
    s, p, o = (int(v) for v in small_db.graph.spo[0])
    query = ExtendedBGP([TriplePattern(s, p, o)])
    parallel = ParallelRingKnnEngine(small_db, workers=2)
    result = parallel.evaluate(query)
    assert result.engine == "parallel-knn"
    assert result.solutions == RingKnnEngine(small_db).evaluate(query).solutions


def test_auto_routes_through_parallel(small_db):
    query = ExtendedBGP([TriplePattern(X, 20, Y)], clauses=[SimClause(X, 3, Y)])
    expected = AutoEngine(small_db).evaluate(query)
    got = AutoEngine(small_db, workers=2).evaluate(query)
    assert got.engine == "parallel-knn"
    assert got.solutions == expected.solutions
    assert _stat_tuple(got.stats) == _stat_tuple(expected.stats)


def test_forced_env_shards_transparently(small_db, monkeypatch):
    query = ExtendedBGP([TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)])
    expected = RingKnnEngine(small_db).evaluate(query)
    monkeypatch.setenv(forced.ENV_WORKERS, "2")
    got = RingKnnEngine(small_db).evaluate(query)
    # Same engine name, same ordered solutions, same merged counters:
    # callers cannot observe the sharding.
    assert got.engine == expected.engine
    assert got.solutions == expected.solutions
    assert _stat_tuple(got.stats) == _stat_tuple(expected.stats)


def test_forced_env_ignores_invalid_values(monkeypatch):
    for raw in ("", "0", "1", "-3", "banana"):
        monkeypatch.setenv(forced.ENV_WORKERS, raw)
        assert forced.forced_workers() == 0
    monkeypatch.setenv(forced.ENV_WORKERS, "4")
    assert forced.forced_workers() == 4
