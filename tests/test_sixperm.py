"""Tests for the six-permutation reference index."""

import numpy as np
import pytest

from repro.graph.sixperm import SixPermIndex
from repro.graph.triples import GraphData
from repro.utils.errors import StructureError


@pytest.fixture(scope="module")
def index_and_graph():
    graph = GraphData(
        [(0, 1, 2), (0, 1, 3), (2, 1, 0), (3, 4, 2), (0, 4, 2)]
    )
    return SixPermIndex(graph), graph


class TestSixPerm:
    def test_all_six_tables_sorted(self, index_and_graph):
        index, _ = index_and_graph
        from itertools import permutations

        for perm in permutations("spo"):
            table = index.table(perm)
            keys = [tuple(row) for row in table]
            assert keys == sorted(keys)

    def test_count_empty_binding_is_all(self, index_and_graph):
        index, graph = index_and_graph
        assert index.count({}) == len(graph)

    def test_count_single(self, index_and_graph):
        index, _ = index_and_graph
        assert index.count({"s": 0}) == 3
        assert index.count({"p": 4}) == 2
        assert index.count({"o": 2}) == 3
        assert index.count({"o": 9}) == 0

    def test_count_pairs(self, index_and_graph):
        index, _ = index_and_graph
        assert index.count({"s": 0, "p": 1}) == 2
        assert index.count({"p": 4, "o": 2}) == 2
        assert index.count({"s": 0, "o": 2}) == 2

    def test_leap(self, index_and_graph):
        index, _ = index_and_graph
        assert index.leap({}, "s", 0) == 0
        assert index.leap({}, "s", 1) == 2
        assert index.leap({"s": 0}, "o", 0) == 2
        assert index.leap({"s": 0}, "o", 3) == 3
        assert index.leap({"s": 0, "p": 1}, "o", 4) is None
        assert index.leap({"s": 9}, "p", 0) is None

    def test_leap_on_bound_coordinate_rejected(self, index_and_graph):
        index, _ = index_and_graph
        with pytest.raises(StructureError):
            index.leap({"s": 0}, "s", 0)

    def test_size_is_six_tables(self, index_and_graph):
        index, graph = index_and_graph
        assert index.size_in_bytes() == 6 * graph.size_in_bytes()

    def test_space_overhead_vs_ring(self):
        """The classic index stores 6 permutations; the Ring's point is
        avoiding that (Sec. 1: 'extra index permutations')."""
        rng = np.random.default_rng(0)
        graph = GraphData(rng.integers(0, 50, size=(500, 3)))
        from repro.ring.index import RingIndex

        six = SixPermIndex(graph).size_in_bytes()
        assert six == 6 * graph.size_in_bytes()
        # The Ring stores three columns (+ rank/select overhead); in this
        # Python realization it must at least beat the 6x duplication.
        ring = RingIndex(graph).size_in_bytes()
        assert ring < six
