"""Acceptance battery for the persistent on-disk index format.

Mirrors the shared-memory transport's three layers
(``tests/test_parallel_shm.py``) for :mod:`repro.store`:

* **Round trips** — Hypothesis properties per structure: save → mmap
  load → query answers exactly as the original, through a real file.
* **Failure modes** — truncation, bad magic, version skew, checksum
  corruption, endianness (file flag and host) each raise their typed
  :mod:`repro.utils.errors` exception; ``verify=False`` skips only the
  checksum.
* **Golden sweep** — on the Figure-2 workload, an mmap-loaded database
  answers byte-identically to the in-memory build (solutions and
  traced op counts), serially and over worker pools under both fork
  and spawn — with the pools attaching workers to the index file
  directly (no shm segment).
"""

from __future__ import annotations

import os
import shutil
import struct
import sys
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import _build
from repro.engines.auto import AutoEngine
from repro.engines.database import GraphDatabase
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.distance_index import DistanceRangeIndex
from repro.knn.succinct import KnnRing
from repro.obs import QueryTrace
from repro.parallel import forced
from repro.parallel.executor import pool_for, shutdown_pools
from repro.parallel.scheduler import QueryScheduler
from repro.parallel.shm import active_segments
from repro.store import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    attach_store_manifest,
    load,
    save,
)
from repro.succinct.arrays import CumulativeCounts
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree
from repro.utils.errors import (
    StoreChecksumError,
    StoreEndiannessError,
    StoreFormatError,
    StoreVersionError,
)
from tests.test_golden_opcounts import CONFIG
from tests.test_parallel_shm import (
    _check_bitvector,
    _check_cumcounts,
    _check_distance_index,
    _check_knn_ring,
    _check_wavelet,
    _comparable,
)

START_METHODS = ("fork", "spawn")


# ----------------------------------------------------------------------
# round trips: save -> load -> query == original
# ----------------------------------------------------------------------
class _StoreTrip:
    """Save + mmap-load a structure through a real index file.

    Assertions run inside :meth:`check` so no test-frame local keeps a
    numpy view into the mapping alive when :meth:`close` drops it.
    """

    def __init__(self, structure: object) -> None:
        self._dir = tempfile.mkdtemp(prefix="repro-store-test-")
        self.path = os.path.join(self._dir, "structure.idx")
        self.nbytes = save(structure, self.path)
        self.store = load(self.path)

    def check(self, checker, *args) -> None:
        checker(self.store.structure, *args)

    def close(self) -> None:
        self.store.close()
        shutil.rmtree(self._dir, ignore_errors=True)


@settings(max_examples=20, deadline=None)
@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=160))
def test_bitvector_roundtrip(bits):
    original = BitVector(bits)
    trip = _StoreTrip(original)
    try:
        assert trip.nbytes == os.path.getsize(trip.path)
        trip.check(_check_bitvector, original, bits)
    finally:
        trip.close()


@settings(max_examples=20, deadline=None)
@given(data=st.data(), sigma=st.integers(1, 12))
def test_wavelet_tree_roundtrip(data, sigma):
    sequence = data.draw(
        st.lists(st.integers(0, sigma - 1), min_size=1, max_size=120)
    )
    original = WaveletTree(sequence, sigma)
    trip = _StoreTrip(original)
    try:
        trip.check(_check_wavelet, original, sequence, sigma)
    finally:
        trip.close()


@settings(max_examples=20, deadline=None)
@given(data=st.data(), sigma=st.integers(1, 12))
def test_cumulative_counts_roundtrip(data, sigma):
    column = data.draw(
        st.lists(st.integers(0, sigma - 1), min_size=1, max_size=120)
    )
    original = CumulativeCounts(column, sigma)
    trip = _StoreTrip(original)
    try:
        trip.check(_check_cumcounts, original, sigma)
    finally:
        trip.close()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(5, 14))
def test_knn_ring_roundtrip(seed, n):
    points = np.random.default_rng(seed).normal(size=(n, 3))
    original = KnnRing(build_knn_graph_bruteforce(points, K=3))
    trip = _StoreTrip(original)
    try:
        trip.check(_check_knn_ring, original)
    finally:
        trip.close()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(5, 14))
def test_distance_range_index_roundtrip(seed, n):
    points = np.random.default_rng(seed).normal(size=(n, 3))
    original = DistanceRangeIndex(points, d_max=2.5)
    trip = _StoreTrip(original)
    try:
        trip.check(_check_distance_index, original)
    finally:
        trip.close()


# ----------------------------------------------------------------------
# failure modes: every corruption has a typed exception
# ----------------------------------------------------------------------
@pytest.fixture()
def small_index(tmp_path):
    path = str(tmp_path / "small.idx")
    save(BitVector([1, 0, 1, 1, 0, 1]), path)
    return path


def _rewrite(path, offset, payload: bytes) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(payload)


def test_missing_file_is_format_error(tmp_path):
    with pytest.raises(StoreFormatError, match="cannot read"):
        load(str(tmp_path / "nowhere.idx"))


def test_empty_file_is_truncated(tmp_path):
    path = str(tmp_path / "empty.idx")
    open(path, "wb").close()
    with pytest.raises(StoreFormatError, match="truncated"):
        load(path)


def test_short_header_is_truncated(tmp_path):
    path = str(tmp_path / "short.idx")
    with open(path, "wb") as handle:
        handle.write(MAGIC + b"\0" * 4)
    with pytest.raises(StoreFormatError, match="truncated"):
        load(path)


def test_truncated_payload(small_index):
    size = os.path.getsize(small_index)
    with open(small_index, "r+b") as handle:
        handle.truncate(size - 8)
    with pytest.raises(StoreFormatError, match="truncated"):
        load(small_index)


def test_bad_magic(small_index):
    _rewrite(small_index, 0, b"NOTANIDX")
    with pytest.raises(StoreFormatError, match="magic"):
        load(small_index)


def test_version_skew(small_index):
    _rewrite(small_index, 8, struct.pack("<I", FORMAT_VERSION + 1))
    with pytest.raises(StoreVersionError, match="repro build"):
        load(small_index)


def test_big_endian_file_flag(small_index):
    _rewrite(small_index, 12, struct.pack("<I", 0))  # clear LE flag
    with pytest.raises(StoreEndiannessError):
        load(small_index)


def test_checksum_mismatch(small_index):
    size = os.path.getsize(small_index)
    with open(small_index, "rb") as handle:
        last = handle.read()[-1]
    _rewrite(small_index, size - 1, bytes([last ^ 0xFF]))
    with pytest.raises(StoreChecksumError, match="rebuild"):
        load(small_index)
    # verify=False skips only the checksum — the header still gates.
    store = load(small_index, verify=False)
    store.close()


def test_malformed_manifest_json(small_index):
    # Corrupt the manifest bytes, then re-stamp the checksum so the
    # JSON decode (not the checksum) is what fails.
    from repro.store.format import payload_checksum, unpack_header

    with open(small_index, "rb") as handle:
        raw = bytearray(handle.read())
    header = unpack_header(bytes(raw[:HEADER_SIZE]), small_index)
    raw[HEADER_SIZE : HEADER_SIZE + 8] = b"not json"
    checksum = payload_checksum(raw, HEADER_SIZE, header.total_size)
    raw[32:36] = struct.pack("<I", checksum)
    with open(small_index, "wb") as handle:
        handle.write(raw)
    with pytest.raises(StoreFormatError, match="manifest"):
        load(small_index)


def test_big_endian_host_guard(small_index, monkeypatch):
    monkeypatch.setattr(sys, "byteorder", "big")
    with pytest.raises(StoreEndiannessError, match="read"):
        load(small_index)
    with pytest.raises(StoreEndiannessError, match="write"):
        save(BitVector([1, 0]), small_index + ".other")


def test_save_is_atomic_and_overwrites(tmp_path):
    path = str(tmp_path / "idx.idx")
    save(BitVector([1, 0, 1]), path)
    first = os.path.getsize(path)
    save(BitVector([1] * 500), path)  # replace in place
    assert os.path.getsize(path) != first
    leftovers = [n for n in os.listdir(tmp_path) if ".tmp." in n]
    assert leftovers == []
    store = load(path)
    try:
        assert store.structure.rank1(500) == 500
    finally:
        store.close()


def test_database_property_requires_database_root(small_index):
    store = load(small_index)
    try:
        with pytest.raises(StoreFormatError, match="not a database"):
            store.database
    finally:
        store.close()


# ----------------------------------------------------------------------
# golden Figure-2 sweep: mapped == built, serial and pooled
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig2_store(tmp_path_factory):
    db, workload = _build(CONFIG)
    queries = [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]
    serial = RingKnnEngine(db)
    expected = []
    for query in queries:
        trace = QueryTrace()
        result = serial.evaluate(query, trace=trace)
        expected.append((result.solutions, _comparable(trace)))
    auto_expected = [AutoEngine(db).evaluate(q).solutions for q in queries]
    path = str(tmp_path_factory.mktemp("store") / "fig2.idx")
    save(db, path)
    return queries, expected, auto_expected, path


def test_mapped_serial_byte_identical(fig2_store):
    queries, expected, _auto_expected, path = fig2_store
    store = load(path)
    try:
        engine = RingKnnEngine(store.database)
        for query, (expected_solutions, expected_doc) in zip(
            queries, expected
        ):
            trace = QueryTrace()
            got = engine.evaluate(query, trace=trace)
            assert got.solutions == expected_solutions
            assert _comparable(trace) == expected_doc
    finally:
        store.close()


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("workers", (2, 4))
def test_mapped_pool_sweep_byte_identical(
    fig2_store, monkeypatch, workers, start_method
):
    queries, expected, _auto_expected, path = fig2_store
    monkeypatch.setenv(forced.ENV_START_METHOD, start_method)
    shutdown_pools()
    store = load(path)
    try:
        db = store.database
        engine = ParallelRingKnnEngine(db, workers=workers)
        for query, (expected_solutions, expected_doc) in zip(
            queries, expected
        ):
            trace = QueryTrace()
            got = engine.evaluate(query, trace=trace)
            assert got.solutions == expected_solutions, (workers, start_method)
            assert _comparable(trace) == expected_doc, (workers, start_method)
        pool = pool_for(db, workers)
        assert pool.start_method == start_method
        # The perf point of the format: workers attached to the file
        # mapping directly — no shm segment was ever flattened.
        assert pool._shm is None
    finally:
        shutdown_pools()
        store.close()


def test_mapped_scheduler_batch(fig2_store, monkeypatch):
    queries, _expected, auto_expected, path = fig2_store
    monkeypatch.setenv(forced.ENV_START_METHOD, "fork")
    shutdown_pools()
    store = load(path)
    scheduler = QueryScheduler(store.database, workers=2)
    try:
        scheduler.warmup()
        assert pool_for(store.database, 2)._shm is None
        results = scheduler.run_batch(queries)
        assert [r.solutions for r in results] == auto_expected
    finally:
        scheduler.close()
        store.close()
    assert active_segments() == ()


def test_prime_materializes_hot_caches(fig2_store):
    _queries, _expected, _auto_expected, path = fig2_store
    lazy = load(path)
    primed = load(path, prime=True)
    try:
        lazy_bv = lazy.database.knn_ring._B
        primed_bv = primed.database.knn_ring._B
        assert "_words_i" not in vars(lazy_bv)
        assert "_words_i" in vars(primed_bv)
        assert "_cum1_i" in vars(primed_bv)
        assert "_members_i" in vars(primed.database.knn_ring)
    finally:
        lazy.close()
        primed.close()


def test_attached_ops_return_plain_ints(fig2_store):
    """No numpy scalars may escape mmap-attached hot-path operations.

    The canonical arrays are views over the mapping; the plain-int
    ``_i`` mirrors (built lazily, or eagerly via ``prime``) are the
    coercion boundary. Every public read a query evaluation bottoms
    out in must hand back builtin ints — a ``numpy.int64`` here would
    re-enter numpy dispatch on every later arithmetic op.
    """

    def plain_int(value):
        return type(value) is int

    _queries, _expected, _auto_expected, path = fig2_store
    store = load(path)
    try:
        db = store.database
        ring = db.knn_ring
        bv = ring._B
        assert plain_int(bv.rank1(len(bv) // 2))
        assert plain_int(bv.rank0(len(bv) // 2))
        assert plain_int(bv.select1(1))
        assert plain_int(bv.select0(1))
        members = ring.members.tolist()
        u = members[0]
        assert all(plain_int(m) for m in ring._members_i)
        assert all(plain_int(v) for v in ring.neighbors_of(u, ring.K))
        assert all(
            plain_int(v) for v in ring.reverse_neighbors_of(u, ring.K)
        )
        assert plain_int(ring.forward_count(u, ring.K))
        wt = db.ring._columns["o"]
        assert plain_int(wt.access(0))
        assert plain_int(wt.rank(wt.access(0), 1))
        assert plain_int(wt.select(wt.access(0), 1))
        assert plain_int(wt.total_count(wt.access(0)))
    finally:
        store.close()


def test_worker_manifest_attaches_same_answers(fig2_store):
    queries, expected, _auto_expected, path = fig2_store
    store = load(path)
    attached = attach_store_manifest(store.worker_manifest())
    try:
        engine = RingKnnEngine(attached.structure)
        got = engine.evaluate(queries[0])
        assert got.solutions == expected[0][0]
    finally:
        attached.close()
        store.close()


def test_from_index_classmethods(fig2_store):
    queries, _expected, auto_expected, path = fig2_store
    db = GraphDatabase.from_index(path)
    assert db.graph is None  # raw tables deliberately not carried
    assert db.store is not None
    engine = AutoEngine.from_index(path)
    try:
        got = engine.evaluate(queries[0])
        assert got.solutions == auto_expected[0]
    finally:
        engine.close()
    db.store.close()


# ----------------------------------------------------------------------
# CLI: repro build / --from-index
# ----------------------------------------------------------------------
def test_cli_build_and_from_index(tmp_path, capsys):
    from repro.cli import main

    bundle = str(tmp_path / "b.npz")
    index = str(tmp_path / "b.idx")
    scale = [
        "--entities", "60", "--images", "30", "--misc-triples", "200",
        "--K", "6",
    ]
    assert main(["generate", "--out", bundle, *scale]) == 0
    assert main(["build", "--data", bundle, "--out", index]) == 0
    assert os.path.exists(index)
    capsys.readouterr()

    query = "(?x, 0, ?y) . knn(?x, ?y, 3)"
    assert main(["query", "--data", bundle, "--query", query]) == 0
    built_out = capsys.readouterr().out
    assert main(["query", "--from-index", index, "--query", query]) == 0
    mapped_out = capsys.readouterr().out
    # Identical solutions; only the summary line may differ in timing.
    assert built_out.splitlines()[:-1] == mapped_out.splitlines()[:-1]


def test_cli_from_index_rejects_graph_engines(tmp_path, capsys):
    from repro.cli import main

    bundle = str(tmp_path / "b.npz")
    index = str(tmp_path / "b.idx")
    scale = [
        "--entities", "60", "--images", "30", "--misc-triples", "200",
        "--K", "6",
    ]
    assert main(["generate", "--out", bundle, *scale]) == 0
    assert main(["build", "--data", bundle, "--out", index]) == 0
    capsys.readouterr()
    # main() maps the typed error to exit code 2 + a one-line message.
    code = main(
        [
            "query",
            "--from-index", index,
            "--engine", "baseline",
            "--query", "(?x, 0, ?y)",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "ValidationError" in err and "raw graph tables" in err
