"""Tests for the pseudo query-log miner and the splicing rule."""

import pytest

from repro.datasets.query_log import (
    generate_workload_from_log,
    mine_log_queries,
    splice_similarity,
)
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.engines.baseline import BaselineEngine
from repro.query.model import ExtendedBGP, Var
from repro.utils.errors import ValidationError


class TestMining:
    def test_shapes_cycle(self, bench):
        log = mine_log_queries(bench, 6, seed=1)
        assert [q.shape for q in log] == [
            "star", "path", "snowflake", "star", "path", "snowflake",
        ]

    def test_deterministic(self, bench):
        a = mine_log_queries(bench, 4, seed=5)
        b = mine_log_queries(bench, 4, seed=5)
        assert a == b

    def test_every_query_mentions_its_image_var(self, bench):
        for q in mine_log_queries(bench, 9, seed=2):
            assert any(
                q.image_var in t.variables for t in q.patterns
            ), q

    def test_mined_queries_are_satisfiable(self, bench, bench_db):
        engine = RingKnnSEngine(bench_db)
        for q in mine_log_queries(bench, 6, seed=3):
            result = engine.evaluate(
                ExtendedBGP(list(q.patterns)), timeout=30
            )
            assert result.solutions, q

    def test_count_validated(self, bench):
        with pytest.raises(ValidationError):
            mine_log_queries(bench, 0)


class TestSplicing:
    def test_variables_disjoint_except_clause(self, bench):
        left, right = mine_log_queries(bench, 2, seed=7)
        query = splice_similarity(left, right, k=3)
        left_vars = {
            v for t in query.triples for v in t.variables
            if v.name.endswith("_l")
        }
        right_vars = {
            v for t in query.triples for v in t.variables
            if v.name.endswith("_r")
        }
        assert left_vars and right_vars
        assert not left_vars & right_vars
        assert len(query.clauses) == 1

    def test_symmetric_splice(self, bench):
        left, right = mine_log_queries(bench, 2, seed=7)
        query = splice_similarity(left, right, k=3, symmetric=True)
        assert len(query.clauses) == 2

    def test_engines_agree_on_log_workload(self, bench, bench_db):
        queries = generate_workload_from_log(bench, 3, k=4, seed=11)
        engines = [
            RingKnnEngine(bench_db),
            RingKnnSEngine(bench_db),
            BaselineEngine(bench_db),
        ]
        for query in queries:
            results = [
                e.evaluate(query, timeout=60).sorted_solutions()
                for e in engines
            ]
            assert results[0] == results[1] == results[2]

    def test_clause_connects_the_two_images(self, bench):
        left, right = mine_log_queries(bench, 2, seed=9)
        query = splice_similarity(left, right, k=2)
        clause = query.clauses[0]
        assert isinstance(clause.x, Var) and clause.x.name.endswith("_l")
        assert isinstance(clause.y, Var) and clause.y.name.endswith("_r")
