"""The batched query scheduler returns serial-identical results.

``QueryScheduler.run_batch`` must hand back, in input order, exactly
the :class:`QueryResult` solutions the serial ``auto`` engine produces
for each query — whether a query was domain-sharded, multiplexed whole
into a pool worker, or evaluated serially.
"""

from __future__ import annotations

import pytest

from repro.engines.auto import AutoEngine
from repro.parallel.scheduler import QueryScheduler
from repro.query.model import ExtendedBGP, SimClause, TriplePattern, Var

X, Y, Z = Var("x"), Var("y"), Var("z")

BATCH = [
    ExtendedBGP([TriplePattern(X, 20, Y)]),
    ExtendedBGP([TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)]),
    ExtendedBGP([TriplePattern(X, 20, Y)], clauses=[SimClause(X, 3, Y)]),
    ExtendedBGP([TriplePattern(3, 20, Y)]),
    ExtendedBGP(
        [TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)],
        clauses=[SimClause(X, 2, Z)],
    ),
    ExtendedBGP([TriplePattern(X, 22, X)]),
]


@pytest.fixture(scope="module")
def expected(small_db):
    auto = AutoEngine(small_db)
    return [auto.evaluate(query) for query in BATCH]


def test_classify_routes_by_estimate(small_db):
    scheduler = QueryScheduler(small_db, workers=2, parallel_threshold=10)
    plans = [scheduler.classify(q, i) for i, q in enumerate(BATCH)]
    assert [plan.index for plan in plans] == list(range(len(BATCH)))
    routes = {plan.route for plan in plans}
    assert routes <= {"parallel", "pooled"}
    # The open two-variable scan is big on this graph, the
    # constant-subject probe is small: both routes must be exercised.
    assert plans[0].route == "parallel"
    assert plans[3].route == "pooled"
    for plan in plans:
        assert plan.engine in ("ring-knn", "ring-knn-s")
        assert plan.reason


def test_classify_serial_with_one_worker(small_db):
    scheduler = QueryScheduler(small_db, workers=1)
    assert scheduler.classify(BATCH[0]).route == "serial"


@pytest.mark.parametrize("threshold", [1, 10, 10_000])
def test_run_batch_matches_serial(small_db, expected, threshold):
    # Across thresholds every query flips between the parallel and
    # pooled routes; results must be identical either way.
    scheduler = QueryScheduler(
        small_db, workers=2, parallel_threshold=threshold
    )
    results = scheduler.run_batch(BATCH)
    assert len(results) == len(BATCH)
    for got, want in zip(results, expected):
        assert got.solutions == want.solutions


def test_run_batch_serial_pool_of_one(small_db, expected):
    results = QueryScheduler(small_db, workers=1).run_batch(BATCH)
    for got, want in zip(results, expected):
        assert got.solutions == want.solutions
        assert got.engine == want.engine


def test_run_batch_bounded_pending_window(small_db, expected):
    # A pending window smaller than the batch forces mid-batch drains.
    scheduler = QueryScheduler(
        small_db, workers=2, parallel_threshold=10_000, max_pending=2
    )
    big_batch = BATCH * 3
    results = scheduler.run_batch(big_batch)
    assert len(results) == len(big_batch)
    for got, want in zip(results, expected * 3):
        assert got.solutions == want.solutions


def test_run_batch_respects_limit(small_db):
    auto = AutoEngine(small_db)
    scheduler = QueryScheduler(small_db, workers=2, parallel_threshold=10)
    results = scheduler.run_batch(BATCH, limit=3)
    for got, query in zip(results, BATCH):
        want = auto.evaluate(query, limit=3)
        assert got.solutions == want.solutions
        assert len(got.solutions) <= 3


# ----------------------------------------------------------------------
# measured-cost feedback into LPT grouping
# ----------------------------------------------------------------------
def _plan(index, estimate, signature):
    from repro.parallel.scheduler import ScheduledQuery

    return ScheduledQuery(
        index=index,
        route="pooled",
        engine="ring-knn",
        estimate=estimate,
        reason="test",
        signature=signature,
    )


def test_lpt_cost_falls_back_to_estimate(small_db):
    scheduler = QueryScheduler(small_db, workers=2)
    plan = scheduler.classify(BATCH[0])
    assert plan.signature[0] == plan.engine
    assert scheduler.observed_cost(plan) is None
    assert scheduler._lpt_cost(plan) == float(plan.estimate)


def test_record_elapsed_is_an_ewma(small_db):
    from repro.parallel.scheduler import FEEDBACK_ALPHA

    scheduler = QueryScheduler(small_db, workers=2)
    plan = _plan(0, 100, ("ring-knn", 1, 0, 0))
    scheduler.record_elapsed(plan, 2.0)
    assert scheduler.observed_cost(plan) == 2.0
    scheduler.record_elapsed(plan, 4.0)
    assert scheduler.observed_cost(plan) == pytest.approx(
        2.0 + FEEDBACK_ALPHA * 2.0
    )
    # Non-positive measurements (clock hiccups) are ignored.
    scheduler.record_elapsed(plan, 0.0)
    assert scheduler.observed_cost(plan) == pytest.approx(
        2.0 + FEEDBACK_ALPHA * 2.0
    )


def test_feedback_reorders_lpt_grouping(small_db):
    scheduler = QueryScheduler(small_db, workers=1)
    cheap_shape = ("ring-knn", 1, 0, 0)
    heavy_shape = ("ring-knn", 2, 1, 0)
    # The estimates say plan 0 is the big one...
    plans = [
        _plan(0, 1_000, cheap_shape),
        _plan(1, 10, heavy_shape),
        _plan(2, 500, cheap_shape),
    ]
    before = scheduler._group_pooled(plans)
    assert before[0][0].index == 0
    # ...but measurement says the low-estimate shape dominates.
    scheduler.record_elapsed(plans[0], 0.001)
    scheduler.record_elapsed(plans[1], 5.0)
    after = scheduler._group_pooled(plans)
    assert after[0][0].index == 1
    # The unmeasured sibling of the cheap shape rides its EWMA too.
    assert scheduler._lpt_cost(plans[2]) == pytest.approx(0.001)


def test_run_batch_feeds_observed_costs_back(small_db, expected):
    scheduler = QueryScheduler(
        small_db, workers=2, parallel_threshold=10_000
    )
    try:
        results = scheduler.run_batch(BATCH)
    finally:
        scheduler.close()
    for got, want in zip(results, expected):
        assert got.solutions == want.solutions
    # Every query was pooled (huge threshold), so every shape got a
    # measured cost and the estimate-to-seconds bridge is primed.
    plans = [scheduler.classify(q, i) for i, q in enumerate(BATCH)]
    assert all(scheduler.observed_cost(p) is not None for p in plans)
    assert scheduler._seconds_per_unit is not None
