"""Tests for the baseline's plain-form K-NN adjacency (Sec. 5.3)."""

import numpy as np
import pytest

from repro.knn.adjacency import KnnAdjacency
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.succinct import KnnRing
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(31)
    points = rng.normal(size=(25, 2))
    graph = build_knn_graph_bruteforce(points, K=5)
    return graph, KnnAdjacency(graph)


class TestAdjacency:
    def test_forward_matches_graph(self, setup):
        graph, adj = setup
        for u in range(25):
            for k in (1, 3, 5):
                assert adj.neighbors_of(u, k).tolist() == graph.neighbors_of(
                    u, k
                ).tolist()

    def test_reverse_matches_definition(self, setup):
        graph, adj = setup
        for v in range(25):
            for k in (1, 3, 5):
                expected = sorted(
                    u for u in range(25) if u != v and graph.is_knn(u, v, k)
                )
                assert sorted(adj.reverse_neighbors_of(v, k).tolist()) == expected

    def test_is_knn_agrees(self, setup):
        graph, adj = setup
        rng = np.random.default_rng(0)
        for _ in range(200):
            u, v = rng.integers(0, 25, 2)
            if u == v:
                continue
            k = int(rng.integers(1, 6))
            assert adj.is_knn(int(u), int(v), k) == graph.is_knn(
                int(u), int(v), k
            )

    def test_non_members(self, setup):
        _graph, adj = setup
        assert adj.neighbors_of(999, 3).size == 0
        assert adj.reverse_neighbors_of(999, 3).size == 0
        assert not adj.is_knn(999, 0, 3)

    def test_k_bounds(self, setup):
        _graph, adj = setup
        with pytest.raises(ValidationError):
            adj.neighbors_of(0, 6)
        with pytest.raises(ValidationError):
            adj.neighbors_of(0, 0)

    def test_plain_form_larger_than_succinct(self, setup):
        """Sec. 6.2: the baseline's plain form costs more space than the
        succinct S/S'/B representation."""
        graph, adj = setup
        ring = KnnRing(graph)
        assert adj.size_in_bytes() > ring.size_in_bytes()

    def test_agreement_with_succinct(self, setup):
        graph, adj = setup
        ring = KnnRing(graph)
        for v in range(25):
            for k in (1, 4):
                assert sorted(adj.reverse_neighbors_of(v, k).tolist()) == sorted(
                    ring.reverse_neighbors_of(v, k)
                )
