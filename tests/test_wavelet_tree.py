"""Unit and property tests for the wavelet tree (Sec. 2.3 operations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.wavelet_tree import WaveletTree
from repro.utils.errors import StructureError, ValidationError

SEQ = [3, 1, 4, 1, 5, 2, 6, 5, 3, 5]
SIGMA = 8


@pytest.fixture(scope="module")
def wt():
    return WaveletTree(SEQ, SIGMA)


class TestConstruction:
    def test_roundtrip(self, wt):
        assert wt.to_array().tolist() == SEQ

    def test_length_and_sigma(self, wt):
        assert len(wt) == len(SEQ)
        assert wt.alphabet_size == SIGMA
        assert wt.height == 3

    def test_empty_sequence(self):
        wt = WaveletTree([], 4)
        assert len(wt) == 0
        assert wt.range_next_value(0, -1, 0) is None

    def test_single_symbol_alphabet(self):
        wt = WaveletTree([0, 0, 0], 1)
        assert wt.access(1) == 0
        assert wt.rank(0, 3) == 3
        assert wt.range_next_value(0, 2, 0) == 0

    def test_values_out_of_alphabet_rejected(self):
        with pytest.raises(ValidationError):
            WaveletTree([0, 4], 4)

    def test_size_in_bytes_positive(self, wt):
        assert wt.size_in_bytes() > 0


class TestAccessRankSelect:
    def test_access_every_position(self, wt):
        for i, v in enumerate(SEQ):
            assert wt.access(i) == v

    def test_access_out_of_range(self, wt):
        with pytest.raises(ValidationError):
            wt.access(len(SEQ))

    def test_rank_all_symbols(self, wt):
        for c in range(SIGMA):
            for i in range(len(SEQ) + 1):
                assert wt.rank(c, i) == SEQ[:i].count(c), (c, i)

    def test_rank_range_closed(self, wt):
        assert wt.rank_range(5, 4, 9) == 3
        assert wt.rank_range(5, 5, 5) == 0
        assert wt.rank_range(5, 9, 4) == 0  # empty

    def test_select_inverse_of_rank(self, wt):
        for c in set(SEQ):
            occ = [i for i, v in enumerate(SEQ) if v == c]
            for j, pos in enumerate(occ, start=1):
                assert wt.select(c, j) == pos

    def test_select_too_large(self, wt):
        with pytest.raises(StructureError):
            wt.select(3, 3)  # only two 3s

    def test_select_next(self, wt):
        assert wt.select_next(5, 0) == 4
        assert wt.select_next(5, 5) == 7
        assert wt.select_next(5, 8) == 9
        assert wt.select_next(5, 10) is None
        assert wt.select_next(7, 0) is None

    def test_total_count(self, wt):
        assert wt.total_count(5) == 3
        assert wt.total_count(0) == 0


class TestRangeNextValue:
    def test_finds_minimum_at_or_above(self, wt):
        # SEQ[2..6] = [4, 1, 5, 2, 6]
        assert wt.range_next_value(2, 6, 0) == 1
        assert wt.range_next_value(2, 6, 3) == 4
        assert wt.range_next_value(2, 6, 5) == 5
        assert wt.range_next_value(2, 6, 6) == 6
        assert wt.range_next_value(2, 6, 7) is None

    def test_empty_range(self, wt):
        assert wt.range_next_value(5, 4, 0) is None

    def test_negative_lower_clamped(self, wt):
        assert wt.range_next_value(0, 9, -3) == 1

    def test_out_of_bounds_range_rejected(self, wt):
        with pytest.raises(ValidationError):
            wt.range_next_value(0, 10, 0)

    def test_single_position_range(self, wt):
        assert wt.range_next_value(4, 4, 0) == 5
        assert wt.range_next_value(4, 4, 6) is None


class TestDistinct:
    def test_distinct_values_sorted(self, wt):
        assert list(wt.distinct_values(0, 9)) == sorted(set(SEQ))

    def test_distinct_subrange(self, wt):
        assert list(wt.distinct_values(0, 3)) == [1, 3, 4]

    def test_count_distinct(self, wt):
        assert wt.count_distinct(0, 9) == len(set(SEQ))

    def test_count_distinct_with_cap(self, wt):
        assert wt.count_distinct(0, 9, cap=2) == 2

    def test_distinct_empty_range(self, wt):
        assert list(wt.distinct_values(3, 2)) == []
        assert wt.count_distinct(3, 2) == 0


# ----------------------------------------------------------------------
# property tests against list-based oracles
# ----------------------------------------------------------------------
sequences = st.lists(st.integers(0, 30), min_size=1, max_size=150)


@settings(max_examples=40, deadline=None)
@given(sequences)
def test_roundtrip_property(seq):
    wt = WaveletTree(seq, 31)
    assert wt.to_array().tolist() == seq


@settings(max_examples=40, deadline=None)
@given(sequences, st.integers(0, 30), st.data())
def test_rank_select_property(seq, c, data):
    wt = WaveletTree(seq, 31)
    i = data.draw(st.integers(0, len(seq)))
    assert wt.rank(c, i) == seq[:i].count(c)
    occ = [p for p, v in enumerate(seq) if v == c]
    if occ:
        j = data.draw(st.integers(1, len(occ)))
        assert wt.select(c, j) == occ[j - 1]


@settings(max_examples=60, deadline=None)
@given(sequences, st.data())
def test_range_next_value_property(seq, data):
    wt = WaveletTree(seq, 31)
    lo = data.draw(st.integers(0, len(seq) - 1))
    hi = data.draw(st.integers(lo, len(seq) - 1))
    c = data.draw(st.integers(0, 32))
    window = [v for v in seq[lo : hi + 1] if v >= c]
    expected = min(window) if window else None
    assert wt.range_next_value(lo, hi, c) == expected


@settings(max_examples=40, deadline=None)
@given(sequences, st.data())
def test_distinct_values_property(seq, data):
    wt = WaveletTree(seq, 31)
    lo = data.draw(st.integers(0, len(seq) - 1))
    hi = data.draw(st.integers(lo, len(seq) - 1))
    assert list(wt.distinct_values(lo, hi)) == sorted(set(seq[lo : hi + 1]))


class TestRangeCount:
    def test_examples(self, wt):
        # SEQ = [3, 1, 4, 1, 5, 2, 6, 5, 3, 5]
        assert wt.range_count(0, 9, 0, 7) == 10
        assert wt.range_count(0, 9, 5, 5) == 3
        assert wt.range_count(2, 6, 2, 4) == 2  # 4 and 2
        assert wt.range_count(0, 9, 7, 7) == 0
        assert wt.range_count(3, 2, 0, 7) == 0  # empty position range
        assert wt.range_count(0, 9, 5, 4) == 0  # empty value range

    def test_clamps_value_range(self, wt):
        assert wt.range_count(0, 9, -5, 100) == 10


class TestQuantile:
    def test_examples(self, wt):
        # sorted(SEQ) = [1, 1, 2, 3, 3, 4, 5, 5, 5, 6]
        full_sorted = sorted(SEQ)
        for j, value in enumerate(full_sorted, start=1):
            assert wt.quantile(0, 9, j) == value

    def test_subrange(self, wt):
        window = sorted(SEQ[2:7])
        for j, value in enumerate(window, start=1):
            assert wt.quantile(2, 6, j) == value

    def test_bad_indices(self, wt):
        import pytest as _pytest
        from repro.utils.errors import ValidationError as _VE

        with _pytest.raises(_VE):
            wt.quantile(0, 9, 0)
        with _pytest.raises(_VE):
            wt.quantile(0, 9, 11)
        with _pytest.raises(_VE):
            wt.quantile(5, 4, 1)


@settings(max_examples=40, deadline=None)
@given(sequences, st.data())
def test_range_count_property(seq, data):
    wt = WaveletTree(seq, 31)
    lo = data.draw(st.integers(0, len(seq) - 1))
    hi = data.draw(st.integers(lo, len(seq) - 1))
    a = data.draw(st.integers(0, 31))
    b = data.draw(st.integers(0, 31))
    expected = sum(1 for v in seq[lo : hi + 1] if a <= v <= b)
    assert wt.range_count(lo, hi, a, b) == expected


@settings(max_examples=40, deadline=None)
@given(sequences, st.data())
def test_quantile_property(seq, data):
    wt = WaveletTree(seq, 31)
    lo = data.draw(st.integers(0, len(seq) - 1))
    hi = data.draw(st.integers(lo, len(seq) - 1))
    j = data.draw(st.integers(1, hi - lo + 1))
    assert wt.quantile(lo, hi, j) == sorted(seq[lo : hi + 1])[j - 1]
