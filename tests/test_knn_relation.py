"""Tests for the similarity-clause leapfrog relation (Sec. 3.3)."""

import numpy as np
import pytest

from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.succinct import KnnRing
from repro.ltj.knn_relation import KnnClauseRelation
from repro.query.model import SimClause, Var
from repro.utils.errors import StructureError

X, Y = Var("x"), Var("y")


@pytest.fixture(scope="module")
def ring():
    rng = np.random.default_rng(51)
    points = rng.normal(size=(20, 2))
    graph = build_knn_graph_bruteforce(points, K=5)
    return graph, KnnRing(graph)


class TestStateMachine:
    def test_free_variables_track_binds(self, ring):
        _graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        assert rel.free_variables == {X, Y}
        rel.bind(X, 0)
        assert rel.free_variables == {Y}
        rel.unbind(X)
        assert rel.free_variables == {X, Y}

    def test_bind_x_then_leap_y_enumerates_knn(self, ring):
        graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        rel.bind(X, 4)
        got = []
        lower = 0
        while True:
            nxt = rel.leap(Y, lower)
            if nxt is None:
                break
            got.append(nxt)
            lower = nxt + 1
        assert got == sorted(graph.neighbors_of(4, 3).tolist())

    def test_bind_y_then_leap_x_enumerates_reverse(self, ring):
        graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 2, Y))
        rel.bind(Y, 7)
        got = []
        lower = 0
        while True:
            nxt = rel.leap(X, lower)
            if nxt is None:
                break
            got.append(nxt)
            lower = nxt + 1
        expected = sorted(
            u for u in range(20) if u != 7 and graph.is_knn(u, 7, 2)
        )
        assert got == expected

    def test_both_bound_checks_predicate(self, ring):
        graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        v = int(graph.neighbors_of(2, 1)[0])
        rel.bind(X, 2)
        assert rel.bind(Y, v)
        assert not rel.is_empty()
        rel.unbind(Y)
        non_neighbor = next(
            u for u in range(20)
            if u != 2 and u not in set(graph.neighbors_of(2, 3).tolist())
        )
        assert not rel.bind(Y, non_neighbor)
        assert rel.is_empty()
        rel.unbind(Y)
        assert not rel.is_empty()

    def test_non_member_binding_fails(self, ring):
        _graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        assert not rel.bind(X, 999)
        assert rel.is_empty()
        rel.unbind(X)
        assert not rel.is_empty()

    def test_unbind_out_of_order_rejected(self, ring):
        _graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        rel.bind(X, 0)
        rel.bind(Y, 1)
        with pytest.raises(StructureError):
            rel.unbind(X)

    def test_leap_on_bound_variable_rejected(self, ring):
        _graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        rel.bind(X, 0)
        with pytest.raises(StructureError):
            rel.leap(X, 0)

    def test_foreign_variable_rejected(self, ring):
        _graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        with pytest.raises(StructureError):
            rel.leap(Var("zzz"), 0)


class TestConstants:
    def test_constant_x(self, ring):
        graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(5, 2, Y))
        assert rel.free_variables == {Y}
        assert rel.leap(Y, 0) == min(graph.neighbors_of(5, 2).tolist())

    def test_constant_pair_filter(self, ring):
        graph, knn = ring
        v = int(graph.neighbors_of(3, 1)[0])
        ok = KnnClauseRelation(knn, SimClause(3, 2, v))
        assert not ok.is_empty()
        other = next(
            u for u in range(20)
            if u != 3 and u not in set(graph.neighbors_of(3, 5).tolist())
        )
        bad = KnnClauseRelation(knn, SimClause(3, 5, other))
        assert bad.is_empty()
        assert bad.leap(Y, 0) is None or True  # no variables to leap


class TestEstimates:
    def test_estimate_x_bound_is_k(self, ring):
        _graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 3, Y))
        rel.bind(X, 2)
        assert rel.estimate(Y) == 3

    def test_estimate_y_bound_is_reverse_count(self, ring):
        graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 2, Y))
        rel.bind(Y, 7)
        expected = sum(
            1 for u in range(20) if u != 7 and graph.is_knn(u, 7, 2)
        )
        assert rel.estimate(X) == expected

    def test_estimate_unbound_is_member_count(self, ring):
        _graph, knn = ring
        rel = KnnClauseRelation(knn, SimClause(X, 2, Y))
        assert rel.estimate(X) == 20
        assert rel.estimate(Y) == 20
