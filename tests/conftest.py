"""Shared fixtures: small deterministic graphs, K-NN graphs, databases.

Session-scoped where construction is non-trivial; all randomness is
seeded so failures reproduce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.datasets.wikimedia import WikimediaConfig, generate_benchmark
from repro.engines.database import GraphDatabase
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.graph import KnnGraph


if sanitize.enabled():
    # Patch the runtime resource primitives before any test module
    # imports them; see repro/analysis/sanitize.py. The CI ``sanitize``
    # job runs the shm/store/serve batteries under REPRO_SANITIZE=1.
    sanitize.install()


@pytest.fixture(autouse=True)
def _sanitize_leak_check(request):
    """Fail any test that acquires a resource it never releases."""
    if not sanitize.enabled():
        yield
        return
    with sanitize.test_leak_check(request.node.nodeid):
        yield


@pytest.fixture(scope="session")
def paper_figure1_graph() -> GraphData:
    """The travel graph of Figure 1 (labels: c = cheap, e = expensive).

    Nodes 1..7. Example 1 pins down the cheap edges: for the BGP
    {(x, c, y), (y, c, z)} the candidate subjects of the c-block are
    {2, 3, 4}, the candidate objects {1, 4, 5, 6}, their intersection
    {4}; binding y := 4 leaves z in {5, 6} and x in {2, 3}. The
    expensive edges are not load-bearing for the examples.
    """
    c, e = 10, 11
    return GraphData(
        [
            (2, c, 4),
            (3, c, 4),
            (4, c, 5),
            (4, c, 6),
            (2, c, 1),
            (1, e, 3),
            (5, e, 1),
            (6, e, 5),
        ]
    )


@pytest.fixture(scope="session")
def small_graph() -> GraphData:
    """A 20-node random graph with 3 predicates (ids 20..22)."""
    rng = np.random.default_rng(7)
    triples = [
        (
            int(rng.integers(0, 20)),
            int(20 + rng.integers(0, 3)),
            int(rng.integers(0, 20)),
        )
        for _ in range(120)
    ]
    return GraphData(triples)


@pytest.fixture(scope="session")
def small_points() -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.normal(size=(20, 2))


@pytest.fixture(scope="session")
def small_knn(small_points) -> KnnGraph:
    return build_knn_graph_bruteforce(small_points, K=5)


@pytest.fixture(scope="session")
def small_db(small_graph, small_knn) -> GraphDatabase:
    return GraphDatabase(small_graph, small_knn)


@pytest.fixture(scope="session")
def bench():
    """A tiny synthetic Wikimedia-like benchmark."""
    return generate_benchmark(
        WikimediaConfig(
            n_entities=120,
            n_images=60,
            n_misc_triples=700,
            K=8,
            seed=5,
        )
    )


@pytest.fixture(scope="session")
def bench_db(bench) -> GraphDatabase:
    return GraphDatabase(bench.graph, bench.knn_graph)
