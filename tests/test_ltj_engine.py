"""Tests for the LTJ engine on plain BGPs (classic behavior, Sec. 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.naive import evaluate_naive
from repro.graph.triples import GraphData
from repro.ltj.engine import LTJEngine
from repro.ltj.ordering import FixedOrdering
from repro.ltj.triple_relation import RingTripleRelation
from repro.query.model import ExtendedBGP, TriplePattern, Var
from repro.query.parser import parse_query
from repro.ring.index import RingIndex
from repro.utils.errors import QueryError


def run_bgp(graph: GraphData, query: ExtendedBGP, **kwargs):
    ring = RingIndex(graph)
    relations = [RingTripleRelation(ring, t) for t in query.triples]
    engine = LTJEngine(relations, **kwargs)
    return engine, engine.evaluate()


def canonical(solutions):
    return sorted(
        tuple(sorted((v.name, c) for v, c in s.items())) for s in solutions
    )


class TestBasicJoins:
    def test_single_pattern_scan(self, small_graph):
        q = parse_query("(?x, 20, ?y)")
        _engine, sols = run_bgp(small_graph, q)
        assert canonical(sols) == canonical(evaluate_naive(q, small_graph))

    def test_path_join(self, small_graph):
        q = parse_query("(?x, 20, ?y) . (?y, 21, ?z)")
        _engine, sols = run_bgp(small_graph, q)
        assert canonical(sols) == canonical(evaluate_naive(q, small_graph))

    def test_triangle_join(self, small_graph):
        q = parse_query("(?x, 20, ?y) . (?y, 20, ?z) . (?z, 20, ?x)")
        _engine, sols = run_bgp(small_graph, q)
        assert canonical(sols) == canonical(evaluate_naive(q, small_graph))

    def test_variable_predicate(self, small_graph):
        q = parse_query("(?x, ?p, ?y) . (?y, ?p, ?x)")
        _engine, sols = run_bgp(small_graph, q)
        assert canonical(sols) == canonical(evaluate_naive(q, small_graph))

    def test_repeated_variable_in_pattern(self, small_graph):
        q = parse_query("(?x, 20, ?x)")
        _engine, sols = run_bgp(small_graph, q)
        assert canonical(sols) == canonical(evaluate_naive(q, small_graph))

    def test_constants_narrow(self, small_graph):
        some = list(small_graph)[0]
        q = ExtendedBGP([TriplePattern(some[0], some[1], Var("o"))])
        _engine, sols = run_bgp(small_graph, q)
        expected = {
            (int(r[2]),)
            for r in small_graph.matching(some[0], some[1], None)
        }
        assert {(s[Var("o")],) for s in sols} == expected

    def test_empty_result(self, small_graph):
        q = parse_query("(?x, 19, ?y)")  # predicate 19 unused
        _engine, sols = run_bgp(small_graph, q)
        assert sols == []

    def test_diamond_motif(self, small_graph):
        """The Twitter diamond of the introduction (all one predicate)."""
        q = parse_query(
            "(?x, 20, ?y) . (?x, 20, ?z) . (?y, 20, ?z) . (?y, 20, ?w) . (?z, 20, ?w)"
        )
        _engine, sols = run_bgp(small_graph, q)
        assert canonical(sols) == canonical(evaluate_naive(q, small_graph))


class TestEngineControls:
    def test_limit_truncates(self, small_graph):
        q = parse_query("(?x, 20, ?y)")
        _engine, all_sols = run_bgp(small_graph, q)
        engine, limited = run_bgp(small_graph, q, limit=3)
        assert len(limited) == 3
        assert len(all_sols) > 3
        assert not engine.stats.timed_out

    def test_timeout_flag(self, small_graph):
        q = parse_query("(?a, ?b, ?c) . (?c, ?d, ?e) . (?e, ?f, ?g)")
        engine, _sols = run_bgp(small_graph, q, timeout=0.0)
        assert engine.stats.timed_out

    def test_stats_populated(self, small_graph):
        q = parse_query("(?x, 20, ?y) . (?y, 21, ?z)")
        engine, sols = run_bgp(small_graph, q)
        assert engine.stats.solutions == len(sols)
        assert engine.stats.bindings >= len(sols)
        assert engine.stats.attempts >= engine.stats.bindings
        assert engine.stats.leap_calls > 0
        assert engine.stats.elapsed >= 0
        assert engine.stats.first_descent_order  # at least one choice made

    def test_fixed_ordering_same_answers(self, small_graph):
        q = parse_query("(?x, 20, ?y) . (?y, 21, ?z)")
        ring = RingIndex(small_graph)
        baseline = canonical(run_bgp(small_graph, q)[1])
        import itertools

        for order in itertools.permutations([Var("x"), Var("y"), Var("z")]):
            relations = [RingTripleRelation(ring, t) for t in q.triples]
            engine = LTJEngine(relations, ordering=FixedOrdering(list(order)))
            assert canonical(engine.evaluate()) == baseline

    def test_no_relations_rejected(self):
        with pytest.raises(QueryError):
            LTJEngine([])

    def test_run_is_a_generator(self, small_graph):
        q = parse_query("(?x, 20, ?y)")
        ring = RingIndex(small_graph)
        engine = LTJEngine(
            [RingTripleRelation(ring, t) for t in q.triples]
        )
        it = engine.run()
        first = next(it)
        assert isinstance(first, dict)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 3), st.integers(0, 6)),
        min_size=3,
        max_size=40,
    ),
    st.data(),
)
def test_random_bgps_match_naive(triples, data):
    """Random 2-pattern BGPs over random graphs match brute force."""
    graph = GraphData(triples)
    terms = [Var("a"), Var("b"), Var("c"), 0, 1, 2]
    patterns = []
    for _ in range(data.draw(st.integers(1, 2))):
        s = data.draw(st.sampled_from(terms))
        p = data.draw(st.sampled_from([Var("p"), 0, 1, 2, 3]))
        o = data.draw(st.sampled_from(terms))
        patterns.append(TriplePattern(s, p, o))
    query = ExtendedBGP(patterns)
    ring = RingIndex(graph)
    engine = LTJEngine([RingTripleRelation(ring, t) for t in patterns])
    assert canonical(engine.evaluate()) == canonical(
        evaluate_naive(query, graph)
    )
