"""Tests for the range-based similarity index (Sec. 3.3 extension)."""

import numpy as np
import pytest

from repro.knn.distance_index import DistanceRangeIndex
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(41)
    points = rng.uniform(size=(30, 2))
    index = DistanceRangeIndex(points, d_max=0.5)
    # Reference distances.
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    return points, index, dist


class TestDistanceIndex:
    def test_neighbors_within_match_reference(self, setup):
        _points, index, dist = setup
        for u in range(30):
            for d in (0.1, 0.3, 0.5):
                expected = sorted(
                    v for v in range(30) if v != u and dist[u, v] <= d
                )
                assert sorted(index.neighbors_within(u, d)) == expected

    def test_neighbors_sorted_by_distance(self, setup):
        _points, index, dist = setup
        for u in (0, 7, 29):
            got = index.neighbors_within(u, 0.5)
            ds = [dist[u, v] for v in got]
            assert ds == sorted(ds)

    def test_contains_symmetric(self, setup):
        _points, index, dist = setup
        rng = np.random.default_rng(2)
        for _ in range(100):
            u, v = rng.integers(0, 30, 2)
            if u == v:
                continue
            d = float(rng.uniform(0.05, 0.5))
            expected = dist[u, v] <= d
            assert index.contains(int(u), int(v), d) == expected
            assert index.contains(int(v), int(u), d) == expected

    def test_count_within(self, setup):
        _points, index, dist = setup
        for u in range(0, 30, 5):
            assert index.count_within(u, 0.2) == int(
                ((dist[u] <= 0.2).sum()) - (dist[u, u] <= 0.2)
            )

    def test_leap_within_enumerates_sorted_ids(self, setup):
        _points, index, dist = setup
        u = 3
        expected = sorted(v for v in range(30) if v != u and dist[u, v] <= 0.4)
        got = []
        lower = 0
        while True:
            nxt = index.leap_within(u, 0.4, lower)
            if nxt is None:
                break
            got.append(nxt)
            lower = nxt + 1
        assert got == expected

    def test_query_beyond_dmax_rejected(self, setup):
        _points, index, _dist = setup
        with pytest.raises(ValidationError):
            index.range_within(0, 0.6)

    def test_non_member(self, setup):
        _points, index, _dist = setup
        lo, hi = index.range_within(999, 0.3)
        assert lo > hi
        assert index.neighbors_within(999, 0.3) == []

    def test_next_member(self, setup):
        _points, index, _dist = setup
        assert index.next_member(0) == 0
        assert index.next_member(29) == 29
        assert index.next_member(30) is None

    def test_custom_members_and_metric(self):
        points = np.array([[0.0], [1.0], [3.0]])
        members = np.array([10, 20, 30])

        def l1(a, b):
            return float(np.abs(a - b).sum())

        index = DistanceRangeIndex(points, d_max=2.5, members=members, metric=l1)
        assert index.neighbors_within(10, 1.5) == [20]
        assert sorted(index.neighbors_within(20, 2.5)) == [10, 30]

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            DistanceRangeIndex(np.zeros((3, 2)), d_max=0.0)
        with pytest.raises(ValidationError):
            DistanceRangeIndex(np.zeros(3), d_max=1.0)
