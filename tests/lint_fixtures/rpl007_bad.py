# reprolint-module: repro.parallel.fixture_transport
"""RPL007 fixture: pickle-based index transport inside repro.parallel."""

import pickle
from pickle import dumps


class PickledIndexTransport:
    def __init__(self, index):
        self._index = index

    def ship(self):
        return pickle.dumps(self._index)

    def ship_state(self):
        return self._index.__getstate__()

    def __getstate__(self):
        return {"index": bytes(self._index)}

    def __setstate__(self, state):
        self._index = state["index"]


def receive(payload):
    return pickle.loads(payload)


def reuse_import(index):
    return dumps(index)
