# reprolint-module: repro.ltj.fixture_rel
"""RPL005 fixture: a relation adapter without the wavelet_trees hook."""


class HookFreeRelation:
    def __init__(self, index):
        self._index = index

    def leap(self, var, lower):
        return self._index.leap(lower)

    def bind(self, var, value):
        self._index.bind(value)

    def unbind(self):
        self._index.unbind()
