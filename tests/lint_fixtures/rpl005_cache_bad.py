# reprolint-module: repro.cache.fixture_engine
"""RPL005 fixture: a caching engine wrapper breaking the result contract.

``BadCachingEngine.evaluate`` returns a bare dict on its hit path —
exactly one finding. ``GoodCachingEngine.evaluate`` returns a name
bound to ``cache.probe(...)`` (a blessed ``QueryResult | None``
factory) on hits and delegates to the inner engine otherwise — clean.
"""


class BadCachingEngine:
    def __init__(self, inner, cache):
        self._inner = inner
        self._cache = cache

    def evaluate(self, query, timeout=None, limit=None, trace=None):
        hit = self._cache.probe(query)
        if hit is not None:
            return {"solutions": hit.solutions, "cached": True}
        return self._inner.evaluate(query, timeout=timeout, limit=limit)


class GoodCachingEngine:
    def __init__(self, inner, cache):
        self._inner = inner
        self._cache = cache

    def evaluate(self, query, timeout=None, limit=None, trace=None):
        hit = self._cache.probe(query)
        if hit is not None:
            return hit
        return self._inner.evaluate(query, timeout=timeout, limit=limit)
