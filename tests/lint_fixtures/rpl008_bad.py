# reprolint-module: repro.parallel.fixture_lifecycle
"""RPL008 fixture: resource acquisitions that leak on some CFG path.

``leaky_exception`` and ``leaky_branch`` must each produce exactly one
finding (anchored at the acquisition line); every ``clean_*`` function
exercises a sanctioned ownership outcome and must stay silent.
"""

import mmap
from multiprocessing import shared_memory


def leaky_exception(size, payload):
    shm = shared_memory.SharedMemory(create=True, size=size)
    fill(shm.buf, payload)  # may raise -> the segment is stranded
    return shm


def leaky_branch(cfg):
    pool = WorkerPool(cfg, 2)
    if cfg.dry_run:
        return None  # pool still open on this path
    pool.close()
    return None


def clean_exception(size, payload):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        fill(shm.buf, payload)
        return shm
    except Exception:
        shm.close()
        shm.unlink()
        raise


def clean_owner_adopts(cfg, registry):
    pool = WorkerPool(cfg, 2)
    registry.append(pool)


def clean_constructor_adopts(cfg):
    pool = WorkerPool(cfg, 2)
    return PoolHandle(pool)


def clean_stored_on_self(cfg, server):
    pool = WorkerPool(cfg, 2)
    server._pool = pool


def clean_context_managed(handle):
    mapping = mmap.mmap(handle.fileno(), 0)
    with mapping:
        return consume(mapping)
