# reprolint-module: repro.serve.fixture_async
"""RPL009 fixture: blocking calls reachable from the asyncio loop.

``handle_direct`` (direct ``time.sleep``) and ``handle_transitive``
(blocking scheduler round trip two sync calls away) must each produce
one finding; ``handle_executor`` crosses the sanctioned
``run_in_executor`` boundary by reference and must stay silent.
"""

import asyncio
import time


def _sync_round_trip(scheduler, batch):
    return scheduler.run_batch(batch)


def _sync_layer(scheduler, batch):
    return _sync_round_trip(scheduler, batch)


class Handler:
    async def handle_direct(self, request):
        time.sleep(0.01)
        return request

    async def handle_transitive(self, scheduler, batch):
        return _sync_layer(scheduler, batch)

    async def handle_executor(self, scheduler, batch):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, _sync_layer, scheduler, batch)
