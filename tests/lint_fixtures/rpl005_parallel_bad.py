# reprolint-module: repro.parallel.fixture_sched
"""RPL005 fixture: the engine contract applies to repro.parallel too."""


class RogueShardEngine:
    def __init__(self, db, workers):
        self._db = db
        self._workers = workers

    def evaluate(self, query):
        shards = self._db.shard(query, self._workers)
        return [self._db.run(shard) for shard in shards]  # not a QueryResult


class MergingEngine:
    def __init__(self, inner):
        self._inner = inner

    def evaluate(self, query):
        result = self._inner.evaluate(query)  # delegation is fine
        return result
