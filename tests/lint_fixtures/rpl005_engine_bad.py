# reprolint-module: repro.engines.fixture_eng
"""RPL005 fixture: an engine returning an ad-hoc result shape."""


class RogueEngine:
    def __init__(self, db):
        self._db = db

    def evaluate(self, query):
        solutions = self._db.run(query)
        return {"solutions": solutions}  # not a QueryResult


class DelegatingEngine:
    def __init__(self, inner):
        self._inner = inner

    def evaluate(self, query):
        return self._inner.evaluate(query)  # delegation is fine
