# reprolint-module: repro.succinct.wavelet_tree.fixture
"""RPL002 fixture: memo lookup before the op-counter increment."""

_MISS = object()


class BadMemoTree:
    def __init__(self):
        self.ops = None
        self._memo_rank = None
        self._memo_users = 0

    def rank(self, c, i):
        memo = self._memo_rank  # looked up BEFORE the counter bump
        if memo is not None:
            hit = memo.get((c, i), _MISS)
            if hit is not _MISS:
                return hit
        if self.ops is not None:
            self.ops.rank += 1
        return 0

    def helper_entry(self, c, i):
        # Calls a memo-reading private helper without bumping first.
        return self._cached(c, i)

    def _cached(self, c, i):
        memo = self._memo_rank
        if memo is None:
            return 0
        return memo.get((c, i), 0)

    def good_rank(self, c, i):
        if self.ops is not None:
            self.ops.rank += 1
        memo = self._memo_rank
        if memo is not None:
            hit = memo.get((c, i), _MISS)
            if hit is not _MISS:
                return hit
        return 0
