# reprolint-module: repro.ring.fixture_typed
"""RPL006 fixture: unannotated defs in a strict-typed package."""


def no_annotations(a, b):
    return a + b


def half_annotated(a: int, b) -> int:
    return a + b


def fully_annotated(a: int, b: int) -> int:
    return a + b


class Carrier:
    def method(self, x):
        return x

    def typed_method(self, x: int) -> int:
        return x
