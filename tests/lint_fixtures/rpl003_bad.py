# reprolint-module: repro.engines.fixture_obs
"""RPL003 fixture: unguarded observability touches."""


class LeakyEngine:
    def __init__(self, db, trace=None):
        self._db = db
        self._trace = trace

    def evaluate(self, query):
        self._trace.record("start")  # unguarded: crashes when disabled
        solutions = self._db.run(query)
        vc = self._trace.var("x")
        vc.leap += 1  # unguarded counter bump
        return solutions

    def guarded_ok(self, query):
        if self._trace is not None:
            self._trace.record("start")
        obs = self._trace
        if obs is None:
            return self._db.run(query)
        obs.record("traced run")
        return self._db.run(query)
