# reprolint-module: repro.ltj.fixture_nojust
"""Suppression fixture: a disable without justification is RPL000."""


def first_one(bv):
    return bv.select1(1)  # reprolint: disable=RPL001
