# reprolint-module: repro.ltj.fixture_sup
"""Suppression fixture: justified disables silence findings."""


def build_rank_table(bv, n):
    # Construction-time loop; validation cost is amortized once.
    table = []
    for i in range(n):
        table.append(bv.rank1(i))  # reprolint: disable=RPL001 -- construction-time, validation amortized
    return table


def first_one(bv):
    # reprolint: disable=RPL001 -- comment-line form covers the next line
    return bv.select1(1)
