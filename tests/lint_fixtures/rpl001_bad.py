# reprolint-module: repro.ltj.fixture_hot
"""RPL001 fixture: validated BitVector ops + searchsorted in a loop."""

import numpy as np


def count_ones(bv, positions):
    total = 0
    for i in positions:
        total += bv.rank1(i)  # validated op on the hot path
    return total


def locate(members, probes):
    out = []
    for p in probes:
        out.append(int(np.searchsorted(members, p)))  # numpy in a loop
    return out


def first_one(bv):
    return bv.select1(1)  # validated op outside a loop still counts
