# reprolint-module: repro.serve.fixture_state
"""RPL010 fixture: shared state crossing the thread/fork boundary.

Two conflicts: ``Gateway._last_result`` is written by the dispatch
thread (``_run_job`` reaches the executor via ``run_in_executor``) and
read from the loop side without a lock; module global ``_JOBS`` is
rebound loop-side while ``apply_async`` workers read it post-fork.
The lock-guarded ``_guarded_result`` pair must stay silent.
"""

import threading

_JOBS = {}


def _worker_main(key):
    return _JOBS[key]


async def refresh_jobs(pool, mapping):
    global _JOBS
    _JOBS = mapping
    pool.apply_async(_worker_main, (0,))


class Gateway:
    def __init__(self):
        self._lock = threading.Lock()
        self._last_result = None
        self._guarded_result = None

    async def start(self, loop):
        await loop.run_in_executor(None, self._run_job, 1)

    async def poll(self):
        return self._last_result

    async def poll_guarded(self):
        with self._lock:
            return self._guarded_result

    def _run_job(self, job):
        self._last_result = job
        with self._lock:
            self._guarded_result = job
