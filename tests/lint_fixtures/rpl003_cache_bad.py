# reprolint-module: repro.cache.fixture_probe
"""RPL003 fixture: cache probe plumbing touching a trace unguarded."""


class LeakyProbe:
    def __init__(self, store, trace=None):
        self._store = store
        self._trace = trace

    def probe(self, key):
        entry = self._store.get(key)
        # unguarded: tracing may be off (self._trace is None)
        self._trace.record("cache_probe", hit=entry is not None)
        return entry

    def probe_guarded(self, key):
        entry = self._store.get(key)
        if self._trace is not None:
            self._trace.record("cache_probe", hit=entry is not None)
        return entry
