# reprolint-module: repro.engines.fixture_det
"""RPL004 fixture: wall clock, unseeded RNG, set-order leaks."""

import random
import time

import numpy as np


def unseeded_rng():
    return np.random.default_rng()  # no seed


def legacy_rng(n):
    return np.random.randint(0, 10, size=n)


def stateful_random():
    return random.random()


def wall_clock_tag(results):
    return {"at": time.time(), "results": results}


def leaky_order(values):
    out = []
    for v in set(values):  # hash order leaks into out
        out.append(v)
    return out


def safe_order(values):
    return sorted(set(values))  # order-insensitive consumer: fine
