# reprolint-module: repro.cache.fixture_spill
"""RPL008 fixture: cache spill/stats paths that strand a resource.

``leaky_spill_read`` leaks its mapping when ``unpack`` raises;
``leaky_stats_probe`` leaks the store on the early-return branch. The
``clean_*`` twins exercise sanctioned ownership outcomes.
"""

import mmap


def leaky_spill_read(handle, unpack):
    mapping = mmap.mmap(handle.fileno(), 0)
    entry = unpack(mapping)  # may raise -> the mapping is stranded
    mapping.close()
    return entry


def leaky_stats_probe(path, query):
    store = IndexStore(path)
    if query is None:
        return None  # store still mapped on this path
    stats = store.describe()
    store.close()
    return stats


def clean_spill_read(handle, unpack):
    mapping = mmap.mmap(handle.fileno(), 0)
    with mapping:
        return unpack(mapping)


def clean_stats_probe(path):
    store = IndexStore(path)
    try:
        return store.describe()
    finally:
        store.close()
