# reprolint-module: repro.knn.succinct.fixture_scalars
"""RPL001 fixture: numpy-scalar leaks from canonical-array element reads.

Element reads of the int-mirrored canonical arrays must go through the
plain-int ``_i`` mirrors; slices and writes are exempt.
"""


def leaky_member(ring, j):
    return ring._members[j]  # element read -> numpy scalar


def leaky_offset_sum(ring, rows):
    total = 0
    for r in rows:
        total += ring._s_offsets[r]  # scalar leak inside a loop
    return total


def fine_mirror_read(ring, j):
    return ring._members_i[j]  # the plain-int mirror is the point


def fine_slice(ring, lo, hi):
    return ring._members[lo:hi]  # slices stay vectorized


def fine_write(ring, j, value):
    ring._members[j] = value  # writes never produce scalars


def fine_unmirrored(index, lo, hi):
    return index._weights[lo]  # not a mirrored array


def leaky_searchsorted_on_mirror(index, d, lo, hi):
    import numpy as np

    # View allocation + numpy dispatch per call, even with no loop in
    # sight (the per-leap loop lives in the caller).
    return np.searchsorted(index._distances[lo : hi + 1], d, "right")


def fine_bounded_bisect(index, d, lo, hi):
    from bisect import bisect_right

    return bisect_right(index._distances_i, d, lo, hi + 1)
