# reprolint-module: repro.knn.succinct.fixture_scalars
"""RPL001 fixture: numpy-scalar leaks from canonical-array element reads.

Element reads of the int-mirrored canonical arrays must go through the
plain-int ``_i`` mirrors; slices and writes are exempt.
"""


def leaky_member(ring, j):
    return ring._members[j]  # element read -> numpy scalar


def leaky_offset_sum(ring, rows):
    total = 0
    for r in rows:
        total += ring._s_offsets[r]  # scalar leak inside a loop
    return total


def fine_mirror_read(ring, j):
    return ring._members_i[j]  # the plain-int mirror is the point


def fine_slice(ring, lo, hi):
    return ring._members[lo:hi]  # slices stay vectorized


def fine_write(ring, j, value):
    ring._members[j] = value  # writes never produce scalars


def fine_unmirrored(index, lo, hi):
    return index._distances[lo]  # not an int-mirrored array
