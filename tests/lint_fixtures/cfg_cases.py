# reprolint-module: repro.parallel.fixture_cfg
"""CFG edge-case functions rendered into ``cfg_cases.golden``.

Each top-level function is built with :func:`repro.analysis.cfg.build_cfg`
and rendered with :func:`~repro.analysis.cfg.cfg_shape`;
``tests/test_cfg.py`` diffs the concatenation against the golden file.
Regenerate after a deliberate CFG change with::

    PYTHONPATH=src REPRO_REGEN_GOLDENS=1 python -m pytest tests/test_cfg.py
"""


def nested_try_finally(resource, inner, outer):
    try:
        try:
            step(inner)
        finally:
            inner.close()
        step(outer)
    finally:
        outer.close()
    return resource


def with_statements(path, payload):
    with open(path) as handle:
        handle.write(payload)
        with handle.lock():
            flush(handle)
    return path


def early_return_in_except(job):
    try:
        run(job)
    except KeyError:
        return None
    except Exception:
        job.retry()
        return job
    finally:
        job.log()
    return job


def while_else(items, limit):
    total = 0
    while items:
        total += pop_cost(items)
        if total > limit:
            break
    else:
        total = -1
    return total
