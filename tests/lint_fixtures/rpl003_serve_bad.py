# reprolint-module: repro.serve.fixture_metrics
"""RPL003 fixture: a metrics endpoint touching obs state unguarded."""


class LeakyMetricsEndpoint:
    def __init__(self, registry, trace=None):
        self._registry = registry
        self._trace = trace

    def render(self):
        lines = []
        # unguarded: tracing may be off (self._trace is None)
        for label, counters in self._trace.wavelets.items():
            lines.append(f"{label} {counters.total}")
        return "\n".join(lines)

    def render_guarded(self):
        if self._trace is None:
            return ""
        return "\n".join(sorted(self._trace.wavelets.keys()))
