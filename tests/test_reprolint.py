"""Tests for the reprolint static-analysis suite (RPL001-RPL010).

Each rule is exercised against a fixture file in ``tests/lint_fixtures/``
carrying known violations; fixtures impersonate in-scope modules via the
``# reprolint-module:`` magic comment. The suite also asserts the
shipped ``src/repro`` tree is lint-clean — the same gate CI runs — so a
change that breaks an invariant fails here before it reaches CI.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Project,
    format_findings,
    format_json,
    format_sarif,
    get_rules,
    lint,
    rule_catalog,
)
from repro.analysis.imports import build_import_graph, reachable
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
PACKAGE_DIR = Path(repro.__file__).parent


def lint_fixture(name: str, rules: list[str] | None = None):
    project = Project.from_paths([FIXTURES / name])
    return lint(project, get_rules(rules) if rules else None)


def codes_and_lines(result):
    return [(f.code, f.line) for f in result.findings]


# ----------------------------------------------------------------------
# per-rule fixtures
# ----------------------------------------------------------------------
class TestRPL001HotPathPurity:
    def test_flags_validated_ops_and_searchsorted_in_loop(self):
        result = lint_fixture("rpl001_bad.py", ["RPL001"])
        messages = [f.message for f in result.findings]
        assert len(result.findings) == 3
        assert any("rank1" in m for m in messages)
        assert any("select1" in m for m in messages)
        assert any("searchsorted" in m for m in messages)

    def test_out_of_scope_module_ignored(self, tmp_path):
        source = FIXTURES / "rpl001_bad.py"
        body = source.read_text().replace(
            "# reprolint-module: repro.ltj.fixture_hot",
            "# reprolint-module: repro.experiments.fixture_hot",
        )
        moved = tmp_path / "elsewhere.py"
        moved.write_text(body)
        result = lint(Project.from_paths([moved]), get_rules(["RPL001"]))
        assert result.ok

    def test_flags_canonical_array_element_reads(self):
        result = lint_fixture("rpl001_scalars_bad.py", ["RPL001"])
        messages = [f.message for f in result.findings]
        assert len(result.findings) == 3
        assert any("_members[...]" in m for m in messages)
        assert any("_s_offsets[...]" in m for m in messages)
        # searchsorted over a mirrored array fires with no loop in sight
        assert any(
            "searchsorted" in m and "_distances" in m for m in messages
        )
        # every finding points at the plain-scalar mirror remedy
        assert all("_i' mirror" in m for m in messages)

    def test_mirror_slice_write_and_unmirrored_reads_exempt(self):
        result = lint_fixture("rpl001_scalars_bad.py", ["RPL001"])
        lines = {f.line for f in result.findings}
        source = (FIXTURES / "rpl001_scalars_bad.py").read_text()
        for marker in (
            "_members_i[j]",
            "_members[lo:hi]",
            "_members[j] = value",
            "_weights[lo]",
            "bisect_right(index._distances_i",
        ):
            line = next(
                i
                for i, text in enumerate(source.splitlines(), start=1)
                if marker in text
            )
            assert line not in lines


class TestRPL002CounterBeforeMemo:
    def test_flags_lookup_before_increment(self):
        result = lint_fixture("rpl002_bad.py", ["RPL002"])
        flagged = {f.message.split("'")[1] for f in result.findings}
        assert flagged == {"BadMemoTree.rank", "BadMemoTree.helper_entry"}

    def test_good_method_not_flagged(self):
        result = lint_fixture("rpl002_bad.py", ["RPL002"])
        assert not any("good_rank" in f.message for f in result.findings)


class TestRPL003ObsGuard:
    def test_flags_unguarded_touches_only(self):
        result = lint_fixture("rpl003_bad.py", ["RPL003"])
        touched = [f.message for f in result.findings]
        assert len(result.findings) == 3
        assert any("self._trace.record" in m for m in touched)
        assert any("self._trace.var" in m for m in touched)
        assert any("vc.leap" in m for m in touched)
        # All findings sit inside evaluate(); the guarded method is clean.
        assert all(11 <= f.line <= 15 for f in result.findings)


    def test_serve_package_is_in_obs_scope(self):
        from repro.analysis.config import OBS_GUARD_PREFIXES, in_scope

        assert in_scope("repro.serve.metrics", OBS_GUARD_PREFIXES)
        result = lint_fixture("rpl003_serve_bad.py", ["RPL003"])
        assert len(result.findings) == 1
        assert "self._trace.wavelets" in result.findings[0].message
        # The guarded twin of the same access must stay clean.
        guarded_line = next(
            i
            for i, text in enumerate(
                (FIXTURES / "rpl003_serve_bad.py").read_text().splitlines(),
                1,
            )
            if "render_guarded" in text
        )
        assert all(f.line < guarded_line for f in result.findings)

    def test_cache_package_is_in_obs_scope(self):
        from repro.analysis.config import OBS_GUARD_PREFIXES, in_scope

        assert in_scope("repro.cache.store", OBS_GUARD_PREFIXES)
        result = lint_fixture("rpl003_cache_bad.py", ["RPL003"])
        assert len(result.findings) == 1
        assert "self._trace.record" in result.findings[0].message
        # The guarded twin of the same access must stay clean.
        guarded_line = next(
            i
            for i, text in enumerate(
                (FIXTURES / "rpl003_cache_bad.py").read_text().splitlines(),
                1,
            )
            if "probe_guarded" in text
        )
        assert all(f.line < guarded_line for f in result.findings)


class TestRPL004Determinism:
    def test_flags_each_nondeterminism_kind(self):
        result = lint_fixture("rpl004_bad.py", ["RPL004"])
        messages = [f.message for f in result.findings]
        assert len(result.findings) == 5
        assert any("without a seed" in m for m in messages)
        assert any("np.random.randint" in m for m in messages)
        assert any("random.random" in m for m in messages)
        assert any("wall-clock" in m for m in messages)
        assert any("iteration over a set" in m for m in messages)

    def test_sorted_set_is_not_flagged(self):
        result = lint_fixture("rpl004_bad.py", ["RPL004"])
        safe_line = next(
            i
            for i, text in enumerate(
                (FIXTURES / "rpl004_bad.py").read_text().splitlines(), 1
            )
            if "safe_order" in text
        )
        assert all(f.line <= safe_line for f in result.findings)


class TestRPL005EngineContract:
    def test_relation_without_hook_flagged(self):
        result = lint_fixture("rpl005_relation_bad.py", ["RPL005"])
        assert len(result.findings) == 1
        assert "HookFreeRelation" in result.findings[0].message
        assert "wavelet_trees" in result.findings[0].message

    def test_adhoc_engine_return_flagged_delegation_allowed(self):
        result = lint_fixture("rpl005_engine_bad.py", ["RPL005"])
        assert len(result.findings) == 1
        assert "RogueEngine" in result.findings[0].message

    def test_parallel_package_is_in_engine_scope(self):
        from repro.analysis.config import ENGINE_MODULE_PREFIXES, in_scope

        assert in_scope("repro.parallel.executor", ENGINE_MODULE_PREFIXES)
        result = lint_fixture("rpl005_parallel_bad.py", ["RPL005"])
        assert len(result.findings) == 1
        assert "RogueShardEngine" in result.findings[0].message

    def test_serve_package_is_in_engine_scope(self):
        from repro.analysis.config import ENGINE_MODULE_PREFIXES, in_scope

        assert in_scope("repro.serve.app", ENGINE_MODULE_PREFIXES)

    def test_cache_package_is_in_engine_scope_probe_blessed(self):
        from repro.analysis.config import ENGINE_MODULE_PREFIXES, in_scope

        assert in_scope("repro.cache.store", ENGINE_MODULE_PREFIXES)
        # The bad engine's dict-shaped hit return is the only finding:
        # the good twin's `return hit` (bound from cache.probe(...), a
        # QueryResult | None factory) is blessed.
        result = lint_fixture("rpl005_cache_bad.py", ["RPL005"])
        assert len(result.findings) == 1
        assert "BadCachingEngine" in result.findings[0].message


class TestRPL006StrictTyping:
    def test_flags_unannotated_defs(self):
        result = lint_fixture("rpl006_bad.py", ["RPL006"])
        flagged = {f.message.split("'")[1] for f in result.findings}
        assert flagged == {"no_annotations", "half_annotated", "method"}


class TestRPL007ShmOnlyTransport:
    def test_flags_each_transport_kind(self):
        result = lint_fixture("rpl007_bad.py", ["RPL007"])
        messages = [f.message for f in result.findings]
        assert len(result.findings) == 7
        assert any("import of 'pickle'" in m for m in messages)
        assert any("import from 'pickle'" in m for m in messages)
        assert any("'pickle.dumps()'" in m for m in messages)
        assert any("'pickle.loads()'" in m for m in messages)
        assert any("explicit '__getstate__()' call" in m for m in messages)
        assert any(
            "definition of '__getstate__'" in m for m in messages
        )
        assert any(
            "definition of '__setstate__'" in m for m in messages
        )
        # Every message points at the sanctioned path.
        assert all("repro.parallel.shm" in m for m in messages)

    def test_out_of_scope_module_ignored(self, tmp_path):
        source = FIXTURES / "rpl007_bad.py"
        body = source.read_text().replace(
            "# reprolint-module: repro.parallel.fixture_transport",
            "# reprolint-module: repro.graph.fixture_transport",
        )
        moved = tmp_path / "elsewhere.py"
        moved.write_text(body)
        result = lint(Project.from_paths([moved]), get_rules(["RPL007"]))
        assert result.ok

    def test_shm_registry_module_is_exempt(self):
        # The shm module is the sanctioned transport: the whole shipped
        # parallel package (shm included) must be RPL007-clean.
        parallel_dir = PACKAGE_DIR / "parallel"
        result = lint(
            Project.from_paths([parallel_dir]), get_rules(["RPL007"])
        )
        assert result.ok, "\n" + format_findings(result)


class TestRPL008ResourceLifecycle:
    def test_flags_exception_and_branch_leaks_only(self):
        result = lint_fixture("rpl008_bad.py", ["RPL008"])
        assert codes_and_lines(result) == [
            ("RPL008", 14),
            ("RPL008", 20),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "'shm'" in by_line[14]
        assert "exception escapes" in by_line[14]
        assert "'pool'" in by_line[20]
        assert "some paths" in by_line[20]

    def test_release_adoption_and_context_paths_are_clean(self):
        result = lint_fixture("rpl008_bad.py", ["RPL008"])
        source = (FIXTURES / "rpl008_bad.py").read_text()
        clean_starts = [
            i
            for i, text in enumerate(source.splitlines(), start=1)
            if text.startswith("def clean_")
        ]
        assert len(clean_starts) == 5  # the fixture ships all clean shapes
        flagged = {f.line for f in result.findings}
        # No finding lands at or after the first clean function.
        assert all(line < min(clean_starts) for line in flagged)

    def test_cache_package_is_in_resource_scope(self):
        from repro.analysis.config import RESOURCE_PREFIXES, in_scope

        assert in_scope("repro.cache.store", RESOURCE_PREFIXES)
        result = lint_fixture("rpl008_cache_bad.py", ["RPL008"])
        by_line = {f.line: f.message for f in result.findings}
        assert len(by_line) == 2
        messages = list(by_line.values())
        assert any("'mapping'" in m for m in messages)
        assert any("'store'" in m for m in messages)
        # The clean twins below the leaky pair must stay silent.
        source = (FIXTURES / "rpl008_cache_bad.py").read_text()
        clean_start = min(
            i
            for i, text in enumerate(source.splitlines(), start=1)
            if text.startswith("def clean_")
        )
        assert all(line < clean_start for line in by_line)


class TestRPL009BlockingInAsync:
    def test_flags_direct_and_transitive_blocking(self):
        result = lint_fixture("rpl009_bad.py", ["RPL009"])
        assert codes_and_lines(result) == [
            ("RPL009", 24),
            ("RPL009", 28),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "time.sleep" in by_line[24]
        # The transitive finding spells out the sync call chain.
        assert "handle_transitive" in by_line[28]
        assert "_sync_layer" in by_line[28]
        assert "run_batch" in by_line[28]

    def test_run_in_executor_boundary_is_sanctioned(self):
        result = lint_fixture("rpl009_bad.py", ["RPL009"])
        assert not any(
            "handle_executor" in f.message for f in result.findings
        )


class TestRPL010SharedStateSides:
    def test_flags_unguarded_cross_side_pairs(self):
        result = lint_fixture("rpl010_bad.py", ["RPL010"])
        assert codes_and_lines(result) == [
            ("RPL010", 22),
            ("RPL010", 43),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "_JOBS" in by_line[22]
        assert "loop side" in by_line[22] and "worker side" in by_line[22]
        assert "Gateway._last_result" in by_line[43]
        assert "dispatch side" in by_line[43]

    def test_lock_guarded_pair_is_clean(self):
        result = lint_fixture("rpl010_bad.py", ["RPL010"])
        assert not any(
            "_guarded_result" in f.message for f in result.findings
        )


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_justified_suppressions_silence_findings(self):
        result = lint_fixture("suppression_ok.py", ["RPL001"])
        assert result.ok
        assert len(result.suppressed) == 2
        assert all(f.justification for f in result.suppressed)

    def test_suppression_without_justification_is_rpl000(self):
        result = lint_fixture("suppression_nojust.py", ["RPL001"])
        codes = [f.code for f in result.findings]
        assert "RPL000" in codes
        assert "RPL001" not in codes  # the disable still applies


# ----------------------------------------------------------------------
# framework pieces
# ----------------------------------------------------------------------
class TestFramework:
    def test_rule_catalog_is_complete(self):
        codes = [code for code, _name, _summary in rule_catalog()]
        assert codes == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
            "RPL007", "RPL008", "RPL009", "RPL010",
        ]

    def test_get_rules_rejects_unknown_codes(self):
        with pytest.raises(KeyError):
            get_rules(["RPL001", "RPL999"])

    def test_json_output_shape(self):
        result = lint_fixture("rpl001_bad.py", ["RPL001"])
        doc = json.loads(format_json(result))
        assert doc["ok"] is False
        assert doc["rules"] == ["RPL001"]
        assert all(
            {"code", "message", "path", "line"} <= set(f)
            for f in doc["findings"]
        )

    def test_human_output_has_summary_line(self):
        result = lint_fixture("rpl001_bad.py", ["RPL001"])
        text = format_findings(result)
        assert "RPL001: 3" in text.splitlines()[-1]

    def test_sarif_output_shape(self):
        result = lint_fixture("rpl001_bad.py", ["RPL001"])
        doc = json.loads(format_sarif(result))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "RPL001" in rule_ids
        assert len(run["results"]) == len(result.findings)
        for sarif_result, finding in zip(run["results"], result.findings):
            assert sarif_result["ruleId"] == finding.code
            assert rule_ids[sarif_result["ruleIndex"]] == finding.code
            assert sarif_result["message"]["text"] == finding.message
            region = sarif_result["locations"][0]["physicalLocation"]
            assert region["region"]["startLine"] == finding.line
            assert region["region"]["startColumn"] == finding.col + 1
            assert region["artifactLocation"]["uri"].endswith(
                "rpl001_bad.py"
            )

    def test_sarif_omits_suppressed_findings(self):
        result = lint_fixture("suppression_ok.py", ["RPL001"])
        assert result.suppressed  # the fixture's point
        doc = json.loads(format_sarif(result))
        assert doc["runs"][0]["results"] == []

    def test_import_graph_and_reachability(self):
        project = Project.from_paths([PACKAGE_DIR])
        graph = build_import_graph(project)
        # The engines import the LTJ engine, which imports the ring.
        assert "repro.ltj.engine" in reachable(graph, ("repro.engines",))
        assert "repro.ring.index" in reachable(graph, ("repro.engines",))
        # The analysis package is NOT on the query path.
        assert "repro.analysis.core" not in reachable(
            graph, ("repro.engines",)
        )


# ----------------------------------------------------------------------
# the real gates
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_shipped_tree_is_lint_clean(self):
        result = lint(Project.from_paths([PACKAGE_DIR]))
        assert result.ok, "\n" + format_findings(result)

    def test_cli_exit_codes_and_json(self, capsys):
        rc = cli_main(
            ["lint", "--format=json", str(FIXTURES / "rpl001_bad.py"),
             "--rules", "RPL001"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False

        rc = cli_main(["lint", "--format=json", str(PACKAGE_DIR)])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_cli_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL007" in out and "RPL010" in out

    def test_cli_sarif_flag(self, capsys):
        rc = cli_main(
            ["lint", "--sarif", str(FIXTURES / "rpl001_bad.py"),
             "--rules", "RPL001"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "reprolint"
        assert doc["runs"][0]["results"]

    def test_cli_changed_scopes_to_git_diff(self, capsys, tmp_path,
                                            monkeypatch):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t",
                 *argv],
                cwd=tmp_path, check=True, capture_output=True,
            )

        git("init", "-q")
        committed = tmp_path / "committed.py"
        committed.write_text(
            "# reprolint-module: repro.ltj.fixture_committed\n"
            "def f(ring, j):\n"
            "    return ring._members[j]\n"
        )
        git("add", "committed.py")
        git("commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)

        # Clean tree: nothing changed, nothing linted, exit 0.
        assert cli_main(["lint", "--changed", "--format=json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["modules_checked"] == 0

        # An untracked violating file is picked up without touching
        # the committed (equally violating) one.
        changed = tmp_path / "fresh.py"
        changed.write_text(
            "# reprolint-module: repro.ltj.fixture_fresh\n"
            "def g(ring, j):\n"
            "    return ring._members[j]\n"
        )
        assert cli_main(["lint", "--changed", "--format=json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["modules_checked"] == 1
        assert doc["findings"]
        assert {f["path"] for f in doc["findings"]} == {str(changed)}

    def test_cli_changed_outside_git_fails_loud(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "--changed"]) == 2
        assert "--changed requires git" in capsys.readouterr().err


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (CI installs it for the strict gate)",
)
def test_mypy_strict_gate_runs():  # pragma: no cover - CI-only
    import subprocess
    import sys

    repo_root = Path(__file__).parents[1]
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
