"""Invariants of the query-trace recorder across engines.

Three families:

* counter arithmetic — per-variable leaps bound the intersection
  members emitted, which bound the bindings; variable counters add up
  to the engine's :class:`EvaluationStats` totals; every value a
  variable takes in a solution was emitted as a candidate at least
  once;
* zero-interference — tracing changes no result and no engine counter,
  and a disabled (``trace=None``) run leaves no recorder attached to
  any shared structure;
* early-exit — abandoning a solution generator still finalizes stats
  and the trace (the ``finally`` contract of :meth:`LTJEngine.run`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.distance_index import DistanceRangeIndex
from repro.ltj.engine import LTJEngine
from repro.ltj.triple_relation import RingTripleRelation
from repro.obs import QueryTrace, validate_trace
from repro.query.parser import parse_query

TRACED_ENGINES = [
    RingKnnEngine,
    RingKnnSEngine,
    ClassicSixPermEngine,
    BaselineEngine,
]

MIXED_QUERIES = [
    "(?x, 20, ?y) . knn(?x, ?y, 4)",
    "(?x, 20, ?y) . (?y, 21, ?z) . knn(?x, ?z, 3)",
    "(?x, 20, ?y) . knn(?x, ?y, 3) . dist(?y, ?z, 1.2)",
    "(?x, 20, ?y) . sim(?x, ?y, 5)",
]


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(5)
    triples = [
        (
            int(rng.integers(0, 15)),
            int(20 + rng.integers(0, 2)),
            int(rng.integers(0, 15)),
        )
        for _ in range(80)
    ]
    points = rng.normal(size=(15, 2))
    knn = build_knn_graph_bruteforce(points, K=5)
    index = DistanceRangeIndex(points, d_max=2.0)
    return GraphDatabase(GraphData(triples), knn, distance_index=index)


def _traced(engine_cls, db, text):
    query = parse_query(text)
    trace = QueryTrace()
    result = engine_cls(db).evaluate(query, trace=trace)
    return result, trace


@pytest.mark.parametrize("text", MIXED_QUERIES)
@pytest.mark.parametrize("engine_cls", TRACED_ENGINES)
def test_per_variable_counter_ordering(engine_cls, db, text):
    """leaps >= candidates >= bindings, per variable."""
    result, trace = _traced(engine_cls, db, text)
    assert trace.variables, "trace recorded no variables"
    for var, c in trace.variables.items():
        assert c.leaps >= c.candidates, var
        assert c.candidates >= c.bindings, var
        assert c.candidates == c.bindings + c.failed_bindings, var
        assert c.times_chosen >= 1
        assert c.fanout >= 1


@pytest.mark.parametrize("text", MIXED_QUERIES)
@pytest.mark.parametrize("engine_cls", TRACED_ENGINES)
def test_candidates_cover_solution_values(engine_cls, db, text):
    """Every value a variable takes in some solution was emitted (and
    bound) at least once — so candidate counts bound the distinct
    values per variable, not the total solution count."""
    result, trace = _traced(engine_cls, db, text)
    per_var_values: dict = {}
    for solution in result.solutions:
        for var, value in solution.items():
            per_var_values.setdefault(var, set()).add(value)
    for var, values in per_var_values.items():
        # The baseline extends clause-only variables outside LTJ, so
        # those variables legitimately have no trace entry.
        if var not in trace.variables:
            assert engine_cls is BaselineEngine
            continue
        assert trace.variables[var].candidates >= len(values)
        assert trace.variables[var].bindings >= len(values)


@pytest.mark.parametrize("text", MIXED_QUERIES)
@pytest.mark.parametrize("engine_cls", TRACED_ENGINES)
def test_variable_counters_sum_to_stats(engine_cls, db, text):
    result, trace = _traced(engine_cls, db, text)
    totals = trace.stats
    assert totals["leap_calls"] == sum(
        c.leaps for c in trace.variables.values()
    )
    assert totals["attempts"] == sum(
        c.candidates for c in trace.variables.values()
    )
    assert totals["bindings"] == sum(
        c.bindings for c in trace.variables.values()
    )
    assert trace.solutions == len(result.solutions)
    # Every engine leap lands in exactly one relation adapter.
    assert totals["leap_calls"] == sum(r.leaps for r in trace.relations)
    validate_trace(trace.to_dict())


@pytest.mark.parametrize("text", MIXED_QUERIES)
def test_tracing_does_not_change_results_or_stats(db, text):
    query = parse_query(text)
    plain = RingKnnEngine(db).evaluate(query)
    traced = RingKnnEngine(db).evaluate(query, trace=QueryTrace())
    assert traced.sorted_solutions() == plain.sorted_solutions()
    assert traced.stats.leap_calls == plain.stats.leap_calls
    assert traced.stats.attempts == plain.stats.attempts
    assert traced.stats.bindings == plain.stats.bindings
    assert traced.stats.solutions == plain.stats.solutions


def test_disabled_run_attaches_no_recorders(db):
    query = parse_query(MIXED_QUERIES[0])
    engine = RingKnnEngine(db)
    relations = engine.compile(query)
    assert all(rel.obs is None for rel in relations)
    engine.evaluate(query)
    for coord in "spo":
        assert db.ring.column(coord).ops is None
    assert db.knn_ring.S.ops is None
    assert db.knn_ring.Sprime.ops is None
    assert db.distance_index.D.ops is None


def test_traced_run_detaches_wavelet_recorders(db):
    query = parse_query(MIXED_QUERIES[2])
    trace = QueryTrace()
    RingKnnEngine(db).evaluate(query, trace=trace)
    assert trace.wavelets["ring"].total > 0
    for coord in "spo":
        assert db.ring.column(coord).ops is None
    assert db.knn_ring.S.ops is None
    assert db.distance_index.D.ops is None


# ----------------------------------------------------------------------
# generator early-exit (the stats-finalization regression)
# ----------------------------------------------------------------------
def test_run_finalizes_stats_on_early_close(db):
    """Breaking out of ``run()`` used to leave ``elapsed`` unset."""
    query = parse_query("(?x, 20, ?y)")
    engine = RingKnnEngine(db)
    ltj = LTJEngine(
        [RingTripleRelation(db.ring, t) for t in query.triples],
        trace=None,
    )
    run = ltj.run()
    first = next(run)
    assert first
    assert ltj.stats.elapsed == 0.0  # not yet finalized mid-iteration
    run.close()
    assert ltj.stats.elapsed > 0.0
    assert not ltj.stats.timed_out


def test_run_finalizes_trace_on_early_close(db):
    query = parse_query(MIXED_QUERIES[0])
    trace = QueryTrace()
    engine = RingKnnEngine(db)
    relations = engine.compile(query)
    ltj = LTJEngine(relations, trace=trace)
    run = ltj.run()
    next(run)
    run.close()
    assert trace.elapsed > 0.0
    assert trace.stats["leap_calls"] == ltj.stats.leap_calls


def test_projection_distinct_limit_finalizes_stats(db):
    """The engine's project/distinct path breaks out of the generator;
    stats (and the trace) must still be finalized."""
    query = parse_query(MIXED_QUERIES[0])
    trace = QueryTrace()
    result = RingKnnEngine(db).evaluate(
        query,
        project=list(query.variables)[:1],
        distinct=True,
        limit=1,
        trace=trace,
    )
    assert len(result.solutions) == 1
    assert result.stats.elapsed > 0.0
    assert trace.elapsed > 0.0
