"""Tests for the size-bound linear programs (Sec. 4.1, Eqs. (1)-(2))."""

import math

import pytest

from repro.bounds.agm import agm_bound
from repro.bounds.linear_program import solve_size_bound
from repro.query.parser import parse_query
from repro.utils.errors import QueryError, ValidationError

N = 10_000


class TestExample4:
    """Q = (x, R, y), (y, S, z), x <|_k z — the paper's worked bound."""

    QUERY = "(?x, 100, ?y) . (?y, 101, ?z) . knn(?x, ?z, 10)"

    def test_agm_with_opaque_relation_is_n_to_three_halves(self):
        q = parse_query(self.QUERY)
        assert agm_bound(q, N) == pytest.approx(N**1.5, rel=1e-6)

    def test_degree_aware_bound_is_kn(self):
        q = parse_query(self.QUERY)
        bound = solve_size_bound(q, N)
        assert bound.q_star == pytest.approx(10 * N, rel=1e-6)

    def test_degree_aware_beats_agm(self):
        q = parse_query(self.QUERY)
        assert solve_size_bound(q, N).q_star < agm_bound(q, N)


class TestPlainBGPs:
    def test_single_pattern(self):
        q = parse_query("(?x, 1, ?y)")
        assert solve_size_bound(q, N).q_star == pytest.approx(N)

    def test_triangle_agm(self):
        q = parse_query("(?x, 1, ?y) . (?y, 1, ?z) . (?z, 1, ?x)")
        assert solve_size_bound(q, N).q_star == pytest.approx(N**1.5, rel=1e-6)

    def test_path_of_two(self):
        q = parse_query("(?x, 1, ?y) . (?y, 1, ?z)")
        assert solve_size_bound(q, N).q_star == pytest.approx(N**2, rel=1e-6)


class TestClauses:
    def test_pure_knn_star_bounded_by_kn_per_hop(self):
        # x in triple; y, z only constrained by chained clauses.
        q = parse_query("(?x, 1, ?w) . knn(?x, ?y, 5) . knn(?y, ?z, 7)")
        bound = solve_size_bound(q, N)
        assert bound.q_star == pytest.approx(N * 5 * 7, rel=1e-6)

    def test_symmetric_cycle_q1b_shape(self):
        # Both similarity variables are covered by their own triples, so
        # the LP settles at N^2 (tight: all edges of each pattern can
        # share their image endpoint, with the two endpoints similar).
        q = parse_query("(?a, 1, ?x) . (?b, 1, ?y) . sim(?x, ?y, 8)")
        bound = solve_size_bound(q, N)
        assert bound.q_star == pytest.approx(N * N, rel=1e-6)

    def test_cyclic_restriction_caps_delta(self):
        # y has NO covering triple: it must be covered by delta_xy, and
        # the cyclic restriction delta_yx <= w(x-triples) binds. With
        # the 2-cycle x ~ y and only x in a triple:
        #   cover(x): w0 + delta_yx >= 1; cover(y): delta_xy >= 1;
        #   cyclic(x<|y): w0 - delta_xy >= 0 -> w0 >= 1.
        # Optimum: w0 = 1, delta_xy = 1, delta_yx = 0 -> Q* = N * k.
        q = parse_query("(?a, 1, ?x) . sim(?x, ?y, 8)")
        bound = solve_size_bound(q, N)
        assert bound.q_star == pytest.approx(N * 8, rel=1e-6)
        # Without the cyclic restriction the LP could cover y by
        # delta_xy alone while keeping w0 at x's residual cover need;
        # verify delta respects the cap.
        assert bound.delta_weights[0] <= sum(bound.triple_weights.values()) + 1e-9

    def test_unsafe_query_program2(self):
        q = parse_query("(?x, 1, ?y) . knn(?w, ?x, 5)")
        assert not q.is_safe()
        bound = solve_size_bound(q, N, domain_size=1000)
        # w is only covered by Dom: Q* = N * D.
        assert bound.q_star == pytest.approx(N * 1000, rel=1e-6)
        assert any(v > 0 for v in bound.dom_weights.values())

    def test_unsafe_query_rejected_by_program1(self):
        q = parse_query("(?x, 1, ?y) . knn(?w, ?x, 5)")
        with pytest.raises(QueryError):
            solve_size_bound(q, N, program="1")

    def test_safe_query_program2_matches_program1(self):
        q = parse_query("(?x, 1, ?y) . knn(?x, ?y, 5)")
        one = solve_size_bound(q, N, program="1")
        two = solve_size_bound(q, N, domain_size=N, program="2")
        assert one.q_star == pytest.approx(two.q_star, rel=1e-6)


class TestPatternCardinalities:
    def test_instance_sizes_tighten_bound(self):
        q = parse_query("(?x, 1, ?y) . (?y, 2, ?z)")
        loose = solve_size_bound(q, N)
        tight = solve_size_bound(q, N, pattern_cardinalities=[10, 20])
        assert tight.q_star == pytest.approx(200, rel=1e-6)
        assert tight.q_star < loose.q_star

    def test_mismatched_cardinalities_rejected(self):
        q = parse_query("(?x, 1, ?y)")
        with pytest.raises(ValidationError):
            solve_size_bound(q, N, pattern_cardinalities=[1, 2])


class TestValidation:
    def test_distance_clauses_rejected(self):
        q = parse_query("(?x, 1, ?y) . dist(?x, ?y, 0.5)")
        with pytest.raises(QueryError):
            solve_size_bound(q, N)

    def test_bad_program_name(self):
        q = parse_query("(?x, 1, ?y)")
        with pytest.raises(ValidationError):
            solve_size_bound(q, N, program="3")

    def test_nonpositive_edges(self):
        q = parse_query("(?x, 1, ?y)")
        with pytest.raises(ValidationError):
            solve_size_bound(q, 0)


class TestBoundIsActuallyAnUpperBound:
    """Empirical soundness: measured output <= Q* on real data."""

    def test_on_benchmark_queries(self, bench_db, bench):
        from repro.datasets.workload import WorkloadConfig, generate_workload
        from repro.engines.ring_knn import RingKnnEngine

        workload = generate_workload(
            bench, WorkloadConfig(k=4, n_q1=2, n_q3=2, seed=4)
        )
        engine = RingKnnEngine(bench_db)
        for family in ("Q1", "Q3"):
            for query in workload[family]:
                bound = solve_size_bound(
                    query,
                    bench_db.graph.num_edges,
                    domain_size=bench_db.graph.domain_size,
                )
                result = engine.evaluate(query, timeout=30)
                assert len(result.solutions) <= bound.q_star + 1e-6


class TestVerifyWeights:
    def test_optimal_solutions_verify(self):
        from repro.bounds.linear_program import verify_weights

        for text in (
            "(?x, 100, ?y) . (?y, 101, ?z) . knn(?x, ?z, 10)",
            "(?a, 1, ?x) . sim(?x, ?y, 8)",
            "(?x, 1, ?y) . knn(?w, ?x, 5)",
        ):
            q = parse_query(text)
            bound = solve_size_bound(q, N, domain_size=1000)
            assert verify_weights(q, bound), text

    def test_tampered_weights_fail(self):
        from repro.bounds.linear_program import verify_weights

        q = parse_query("(?x, 100, ?y) . (?y, 101, ?z) . knn(?x, ?z, 10)")
        bound = solve_size_bound(q, N)
        bound.triple_weights[0] = 0.0
        bound.triple_weights[1] = 0.0
        assert not verify_weights(q, bound)

    def test_cyclic_restriction_checked(self):
        from repro.bounds.linear_program import verify_weights

        q = parse_query("(?a, 1, ?x) . sim(?x, ?y, 8)")
        bound = solve_size_bound(q, N)
        # Inflate a cyclic delta beyond its covering weights.
        for j in bound.delta_weights:
            bound.delta_weights[j] = 50.0
        assert not verify_weights(q, bound)
