"""Tests for timing, validation helpers, and the error hierarchy."""

import time

import pytest

from repro.utils.errors import (
    QueryError,
    ReproError,
    StructureError,
    TimeoutExceeded,
    ValidationError,
)
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import (
    check_index,
    check_nonnegative,
    check_positive,
    check_range,
)


class TestErrors:
    def test_hierarchy(self):
        for exc in (StructureError, QueryError, ValidationError, TimeoutExceeded):
            assert issubclass(exc, ReproError)

    def test_timeout_payload(self):
        err = TimeoutExceeded(1.5, partial_count=7)
        assert err.elapsed == 1.5
        assert err.partial_count == 7
        assert "1.500" in str(err)


class TestStopwatch:
    def test_unlimited_never_expires(self):
        sw = Stopwatch()
        assert not sw.expired()

    def test_expiry(self):
        sw = Stopwatch(budget=0.0)
        time.sleep(0.001)
        assert sw.expired()

    def test_restart(self):
        sw = Stopwatch(budget=100.0)
        time.sleep(0.001)
        first = sw.elapsed()
        sw.restart()
        assert sw.elapsed() < first


class TestTimer:
    def test_accumulates(self):
        t = Timer("phase")
        for _ in range(3):
            with t:
                pass
        assert t.count == 3
        assert t.total >= 0
        assert t.mean == pytest.approx(t.total / 3)

    def test_mean_of_unused_timer(self):
        assert Timer().mean == 0.0


class TestValidation:
    def test_check_positive(self):
        assert check_positive("n", 3) == 3
        with pytest.raises(ValidationError):
            check_positive("n", 0)
        with pytest.raises(ValidationError):
            check_positive("n", True)
        with pytest.raises(ValidationError):
            check_positive("n", 1.5)

    def test_check_nonnegative(self):
        assert check_nonnegative("n", 0) == 0
        with pytest.raises(ValidationError):
            check_nonnegative("n", -1)

    def test_check_index(self):
        assert check_index("i", 2, 3) == 2
        with pytest.raises(ValidationError):
            check_index("i", 3, 3)

    def test_check_range(self):
        assert check_range("r", 1, 2, 5) == (1, 2)
        assert check_range("r", 3, 2, 5) == (3, 2)  # empty allowed
        with pytest.raises(ValidationError):
            check_range("r", -1, 2, 5)
        with pytest.raises(ValidationError):
            check_range("r", 0, 5, 5)
