"""Tests for the AutoEngine policy and the graph-statistics module."""

import numpy as np
import pytest

from repro.engines.auto import AutoEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.graph.stats import compute_graph_stats
from repro.graph.triples import GraphData
from repro.query.parser import parse_query


class TestAutoEngine:
    def test_simple_query_uses_ring_knn_s(self, small_db):
        auto = AutoEngine(small_db)
        q = parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        assert auto.select(q) == "ring-knn-s"
        assert auto.evaluate(q).engine == "ring-knn-s"

    def test_symmetric_query_uses_ring_knn(self, small_db):
        auto = AutoEngine(small_db)
        q = parse_query("(?x, 20, ?y) . sim(?x, ?y, 3)")
        assert auto.select(q) == "ring-knn"
        assert auto.evaluate(q).engine == "ring-knn"

    def test_multi_clause_uses_ring_knn(self, small_db):
        auto = AutoEngine(small_db)
        q = parse_query(
            "(?x, 20, ?y) . (?y, 20, ?z) . knn(?x, ?y, 2) . knn(?y, ?z, 2)"
        )
        assert auto.select(q) == "ring-knn"

    def test_plain_bgp_uses_ring_knn_s(self, small_db):
        auto = AutoEngine(small_db)
        q = parse_query("(?x, 20, ?y)")
        assert auto.select(q) == "ring-knn-s"

    def test_answers_match_explicit_engines(self, small_db):
        auto = AutoEngine(small_db)
        reference = RingKnnEngine(small_db)
        for text in (
            "(?x, 20, ?y) . knn(?x, ?y, 3)",
            "(?x, 20, ?y) . sim(?x, ?y, 3)",
        ):
            q = parse_query(text)
            assert (
                auto.evaluate(q).sorted_solutions()
                == reference.evaluate(q).sorted_solutions()
            )


class TestGraphStats:
    def test_basic_counts(self, small_graph):
        stats = compute_graph_stats(small_graph)
        assert stats.num_edges == small_graph.num_edges
        assert stats.num_nodes == small_graph.num_nodes
        assert stats.num_predicates == small_graph.predicates.size
        assert stats.domain_size == small_graph.domain_size

    def test_degree_summaries(self):
        # Star graph: node 0 points at 1..5.
        g = GraphData([(0, 9, i) for i in range(1, 6)])
        stats = compute_graph_stats(g)
        assert stats.out_degree.count == 1
        assert stats.out_degree.maximum == 5
        assert stats.in_degree.count == 5
        assert stats.in_degree.mean == 1.0
        assert stats.in_degree.gini == pytest.approx(0.0)

    def test_gini_increases_with_skew(self):
        uniform = GraphData([(i, 9, (i + 1) % 10) for i in range(10)])
        skewed = GraphData(
            [(0, 9, i) for i in range(1, 9)] + [(1, 9, 0), (2, 9, 0)]
        )
        assert (
            compute_graph_stats(skewed).out_degree.gini
            > compute_graph_stats(uniform).out_degree.gini
        )

    def test_top_predicates_sorted(self, bench):
        stats = compute_graph_stats(bench.graph, top=3)
        counts = [c for _p, c in stats.top_predicates]
        assert counts == sorted(counts, reverse=True)
        assert len(stats.top_predicates) == 3

    def test_empty_graph(self):
        stats = compute_graph_stats(GraphData([]))
        assert stats.num_edges == 0
        assert stats.out_degree.count == 0
        assert stats.rows()

    def test_benchmark_is_skewed(self, bench):
        """The synthetic Wikidata stand-in must show degree skew."""
        stats = compute_graph_stats(bench.graph)
        assert stats.out_degree.gini > 0.2


class TestCliStats:
    def test_stats_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import save_bundle
        from repro.knn.builders import build_knn_graph_bruteforce

        rng = np.random.default_rng(0)
        graph = GraphData([(0, 5, 1), (1, 5, 2), (2, 5, 0)])
        knn = build_knn_graph_bruteforce(rng.normal(size=(3, 2)), K=1)
        path = tmp_path / "b.npz"
        save_bundle(path, graph, knn)
        assert main(["stats", "--data", str(path)]) == 0
        out = capsys.readouterr().out
        assert "edges (N)" in out
        assert "K-NN graph: 3 members" in out
