"""End-to-end tests for the experiment harnesses (E1-E10)."""

import numpy as np
import pytest

from repro.datasets.classification import make_gaussian_mixture
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.engines.baseline import BaselineEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.experiments.bounds_ablation import BOUNDS_HEADERS, bounds_rows, run_bounds_ablation
from repro.experiments.figure2 import FIGURE2_HEADERS, figure2_rows, run_figure2
from repro.experiments.figure3 import FIGURE3_HEADERS, figure3_rows, run_figure3
from repro.experiments.materialization import run_materialization_comparison
from repro.experiments.report import format_table
from repro.experiments.space import run_space_comparison
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def tiny_workload(bench):
    return generate_workload(
        bench, WorkloadConfig(k=4, n_q1=2, n_q2=1, n_q3=2, n_q4=1, n_q5=2, seed=13)
    )


class TestFigure2Harness:
    def test_runs_all_families_and_engines(self, bench_db, tiny_workload):
        engines = [
            BaselineEngine(bench_db),
            RingKnnEngine(bench_db),
            RingKnnSEngine(bench_db),
        ]
        results = run_figure2(bench_db, tiny_workload, engines, timeout=30)
        assert set(results) == set(tiny_workload)
        for family, fr in results.items():
            assert set(fr.series) == {"baseline", "ring-knn", "ring-knn-s"}
            for s in fr.series.values():
                assert len(s.times) == len(tiny_workload[family])
                assert all(t >= 0 for t in s.times)

    def test_engines_find_same_solution_counts(self, bench_db, tiny_workload):
        engines = [
            BaselineEngine(bench_db),
            RingKnnEngine(bench_db),
            RingKnnSEngine(bench_db),
        ]
        results = run_figure2(bench_db, tiny_workload, engines, timeout=60)
        for fr in results.values():
            counts = {
                name: s.solutions for name, s in fr.series.items()
            }
            assert counts["baseline"] == counts["ring-knn"] == counts["ring-knn-s"]

    def test_rows_and_table_render(self, bench_db, tiny_workload):
        engines = [RingKnnEngine(bench_db)]
        results = run_figure2(
            bench_db, {"Q1": tiny_workload["Q1"]}, engines, timeout=30
        )
        rows = figure2_rows(results)
        assert len(rows) == 1
        text = format_table(FIGURE2_HEADERS, rows, title="fig2")
        assert "fig2" in text and "ring-knn" in text

    def test_sim_bind_position_recorded(self, bench_db, tiny_workload):
        engines = [RingKnnEngine(bench_db), RingKnnSEngine(bench_db)]
        results = run_figure2(
            bench_db, {"Q1b": tiny_workload["Q1b"]}, engines, timeout=30
        )
        for s in results["Q1b"].series.values():
            assert s.sim_bind_fractions, "bind positions should be recorded"
            assert all(0 <= f <= 1 for f in s.sim_bind_fractions)


class TestFigure3Harness:
    def test_shapes_and_monotonicity(self):
        points, labels = make_gaussian_mixture(
            (40, 40, 40), dim=5, seed=3, center_scale=4.0
        )
        rows = run_figure3(points, labels, K=20, ks=[5, 10, 20])
        strategies = {p.strategy for p in rows}
        assert strategies == {"knn", "reverse", "intersection", "union"}
        assert len(rows) == 12
        by = {(p.strategy, p.k): p for p in rows}
        for k in (5, 10, 20):
            # Result-size ordering: intersection <= k <= union.
            assert by[("intersection", k)].avg_result_size <= k + 1e-9
            assert by[("knn", k)].avg_result_size == pytest.approx(k)
            assert by[("union", k)].avg_result_size >= k - 1e-9
            # Precisions are probabilities.
            for strat in strategies:
                assert 0 <= by[(strat, k)].precision <= 1

    def test_ks_beyond_K_rejected(self):
        points, labels = make_gaussian_mixture((20, 20), dim=3, seed=0)
        with pytest.raises(ValidationError):
            run_figure3(points, labels, K=5, ks=[10])

    def test_rows_render(self):
        points, labels = make_gaussian_mixture((25, 25), dim=4, seed=1)
        rows = figure3_rows(run_figure3(points, labels, K=10, ks=[5]))
        text = format_table(FIGURE3_HEADERS, rows)
        assert "intersection" in text


class TestSpaceHarness:
    def test_paper_shape(self, bench_db):
        report = run_space_comparison(bench_db)
        # Sec. 6.2's qualitative claims:
        assert report.baseline_bytes > report.ring_bytes
        assert report.ring_vs_raw < 2.0  # "almost the same space" order
        assert report.rows()

    def test_report_renders(self, bench_db):
        from repro.experiments.space import SPACE_HEADERS

        report = run_space_comparison(bench_db)
        text = format_table(SPACE_HEADERS, report.rows())
        assert "ring" in text


class TestMaterializationHarness:
    def test_report_structure(self, bench_db, tiny_workload):
        report = run_materialization_comparison(
            bench_db, tiny_workload["Q1"], timeout=60
        )
        assert report.queries == len(tiny_workload["Q1"])
        assert report.mean_materialize > 0
        assert report.mean_materialize_total >= report.mean_materialize
        assert report.setup_vs_integrated > 0
        assert report.rows()

    def test_setup_work_grows_with_k(self, bench, bench_db):
        """The Sec. 3.2 point in miniature: extraction work is O(k n)
        regardless of the query's selectivity, so the number of
        materialized pairs grows with k while the integrated engine
        only touches what the query needs. (The wall-clock dominance
        shape is exercised at benchmark scale in
        benchmarks/test_bench_materialization.py.)"""
        from repro.engines.materialize import MaterializeEngine
        from repro.query.parser import parse_query

        dep = bench.depicts
        img = int(bench.image_ids[0])
        text = f"(?e, {dep}, {img}) . knn({img}, ?y, {{k}})"
        engine = MaterializeEngine(bench_db)
        small = engine.evaluate(parse_query(text.format(k=1)), timeout=60)
        large = engine.evaluate(parse_query(text.format(k=8)), timeout=60)
        n = bench.knn_graph.num_members
        assert small.phase_seconds["materialized_pairs"] == 1 * n
        assert large.phase_seconds["materialized_pairs"] == 8 * n


class TestBoundsHarness:
    def test_bounds_rows(self, bench_db, tiny_workload):
        rows = run_bounds_ablation(
            bench_db, tiny_workload["Q1"] + tiny_workload["Q1b"], timeout=30
        )
        assert len(rows) == 4
        for row in rows:
            assert row.q_star >= row.solutions
            assert row.attempts["ring-knn"] > 0
        table = format_table(BOUNDS_HEADERS, bounds_rows(rows))
        assert "Q*_LP" in table

    def test_q1_acyclic_q1b_cyclic(self, bench_db, tiny_workload):
        rows = run_bounds_ablation(
            bench_db,
            [tiny_workload["Q1"][0], tiny_workload["Q1b"][0]],
            timeout=30,
        )
        assert rows[0].acyclic and not rows[1].acyclic
        assert rows[1].single_2_cyclic


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.00001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text
