"""Battery for the semantic cross-query cache (:mod:`repro.cache`).

Three layers of guarantees:

* **Canonicalizer** (Hypothesis): any variable renaming and/or atom
  reordering of a query collides on the signature; a *pure* renaming
  additionally preserves the profile (the key that gates byte-identical
  reuse); structurally distinct queries get distinct signatures.

* **QueryCache unit**: admission rejections (timeout, cost floor, byte
  budget, unbound variables), cost/age eviction order, epoch
  invalidation on ``bump_epoch`` *and* on a hot index-file replace
  (different store checksum behind the same path), and the
  byte-identical probe round trip under renamed variables.

* **Integration**: the golden Figure-2 workload evaluated cold, then
  warm through ``AutoEngine``/``QueryScheduler`` with a shared cache —
  warm solutions, enumeration order, and counters must be byte-identical
  to the cold run, under serial and 2-/4-worker pools; hit traces carry
  an explicit ``cache_hit`` event.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheConfig,
    QueryCache,
    canonicalize,
    database_epoch,
    first_seen_variables,
    profile_of,
)
from repro.engines.auto import AutoEngine
from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.engines.ring_knn import RingKnnEngine
from repro.ltj.stats import EvaluationStats
from repro.obs import QueryTrace
from repro.parallel.scheduler import MAX_OBSERVED_SHAPES, QueryScheduler
from repro.query.model import (
    DistClause,
    ExtendedBGP,
    SimClause,
    TriplePattern,
    Var,
)

W, X, Y, Z = Var("w"), Var("x"), Var("y"), Var("z")

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _rename(query: ExtendedBGP, mapping: dict[Var, Var]) -> ExtendedBGP:
    """Apply a variable renaming, keeping atoms in their written order."""

    def ren(term):
        return mapping.get(term, term) if isinstance(term, Var) else term

    return ExtendedBGP(
        [TriplePattern(ren(t.s), t.p, ren(t.o)) for t in query.triples],
        [
            SimClause(ren(c.x), c.k, ren(c.y), c.relation)
            for c in query.clauses
        ],
        [DistClause(ren(c.x), c.d, ren(c.y)) for c in query.dist_clauses],
    )


def _result(
    solutions: list[dict[Var, int]],
    elapsed: float = 1.0,
    timed_out: bool = False,
    engine: str = "ring-knn",
) -> QueryResult:
    stats = EvaluationStats()
    stats.solutions = len(solutions)
    stats.elapsed = elapsed
    stats.timed_out = timed_out
    return QueryResult(engine=engine, solutions=solutions, stats=stats)


# ----------------------------------------------------------------------
# canonicalizer properties (Hypothesis)
# ----------------------------------------------------------------------

_VARS = (W, X, Y, Z)
_FRESH = (Var("p2"), Var("q2"), Var("r2"), Var("s2"))
_PREDICATES = (20, 21, 22)


@st.composite
def bgps(draw) -> ExtendedBGP:
    """Small random extended BGPs over the ``small_db`` vocabulary."""
    variables = list(_VARS[: draw(st.integers(2, 4))])
    terms = variables + [0, 5]
    triples = [
        TriplePattern(
            draw(st.sampled_from(terms)),
            draw(st.sampled_from(_PREDICATES)),
            draw(st.sampled_from(terms)),
        )
        for _ in range(draw(st.integers(1, 3)))
    ]
    clauses = []
    for _ in range(draw(st.integers(0, 2))):
        x = draw(st.sampled_from(variables))
        y = draw(st.sampled_from([v for v in variables if v != x]))
        clauses.append(SimClause(x, draw(st.integers(1, 4)), y))
    dist_clauses = []
    for _ in range(draw(st.integers(0, 1))):
        x = draw(st.sampled_from(variables))
        y = draw(st.sampled_from([v for v in variables if v != x]))
        dist_clauses.append(DistClause(x, draw(st.sampled_from([0.5, 1.0])), y))
    return ExtendedBGP(triples, clauses, dist_clauses)


@st.composite
def renamings(draw) -> dict[Var, Var]:
    fresh = draw(st.permutations(list(_FRESH)))
    return dict(zip(_VARS, fresh))


class TestCanonicalizer:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query=bgps(), mapping=renamings(), data=st.data())
    def test_renaming_and_reordering_collide_on_signature(
        self, query, mapping, data
    ):
        renamed = _rename(query, mapping)
        shuffled = ExtendedBGP(
            data.draw(st.permutations(list(renamed.triples))),
            data.draw(st.permutations(list(renamed.clauses))),
            data.draw(st.permutations(list(renamed.dist_clauses))),
        )
        assert (
            canonicalize(shuffled).signature == canonicalize(query).signature
        )

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query=bgps(), mapping=renamings())
    def test_pure_renaming_preserves_profile(self, query, mapping):
        renamed = _rename(query, mapping)
        assert profile_of(renamed) == profile_of(query)
        # ... and the probe remap is positional: the renamed first-seen
        # list is the image of the original one under the mapping.
        assert first_seen_variables(renamed) == tuple(
            mapping.get(v, v) for v in first_seen_variables(query)
        )

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query=bgps())
    def test_structural_edits_change_the_signature(self, query):
        base = canonicalize(query).signature
        # Changing a constant, a k bound, or dropping an atom must all
        # produce a different signature.
        bumped_pred = ExtendedBGP(
            [
                TriplePattern(t.s, t.p + 7, t.o)
                for t in query.triples
            ],
            list(query.clauses),
            list(query.dist_clauses),
        )
        if query.triples:
            assert canonicalize(bumped_pred).signature != base
        if query.clauses:
            harder = ExtendedBGP(
                list(query.triples),
                [
                    SimClause(c.x, c.k + 1, c.y, c.relation)
                    for c in query.clauses
                ],
                list(query.dist_clauses),
            )
            assert canonicalize(harder).signature != base
        if len(query.atoms) > 1:
            dropped = ExtendedBGP(
                list(query.triples)[:-1],
                list(query.clauses),
                list(query.dist_clauses),
            )
            if dropped.atoms:
                assert canonicalize(dropped).signature != base

    def test_atom_permutation_changes_profile_not_signature(self):
        q = ExtendedBGP(
            [TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)],
            clauses=[SimClause(X, 2, Z)],
        )
        permuted = ExtendedBGP(
            [TriplePattern(Y, 21, Z), TriplePattern(X, 20, Y)],
            clauses=[SimClause(X, 2, Z)],
        )
        assert canonicalize(q).signature == canonicalize(permuted).signature
        assert profile_of(q) != profile_of(permuted)

    def test_variables_follow_first_seen_order(self):
        q = ExtendedBGP(
            [TriplePattern(Y, 20, X)],
            clauses=[SimClause(X, 2, W)],
            dist_clauses=[DistClause(Z, 1.0, Y)],
        )
        form = canonicalize(q)
        assert form.variables == (Y, X, W, Z)
        # ExtendedBGP.variables omits dist-only variables; the cache's
        # first-seen list must not (packed columns cover every binding).
        assert form.variables == first_seen_variables(q)


# ----------------------------------------------------------------------
# QueryCache unit behaviour
# ----------------------------------------------------------------------


QUERY = ExtendedBGP(
    [TriplePattern(X, 20, Y), TriplePattern(Y, 21, Z)],
    clauses=[SimClause(X, 2, Z)],
)
RENAMED = _rename(QUERY, {X: Var("a"), Y: Var("b"), Z: Var("c")})


class TestQueryCacheUnit:
    def test_probe_round_trip_is_byte_identical(self, small_db):
        cache = QueryCache()
        engine = RingKnnEngine(small_db)
        cold = engine.evaluate(QUERY)
        assert cache.fill(small_db, QUERY, cold, engine="ring-knn")

        # Probing the *renamed* query must replay the producer's
        # solutions — same values, same enumeration order — under the
        # probing query's own variable names.
        hit = cache.probe(small_db, RENAMED, engine="ring-knn")
        assert hit is not None and hit.cached
        reference = engine.evaluate(RENAMED)
        assert hit.solutions == reference.solutions
        assert hit.engine == "ring-knn"
        assert "cache" in hit.phase_seconds
        for field in ("solutions", "bindings", "attempts", "leap_calls"):
            assert getattr(hit.stats, field) == getattr(cold.stats, field)
        # Replayed descent order is the cold order mapped through ranks.
        mapping = dict(
            zip(first_seen_variables(QUERY), first_seen_variables(RENAMED))
        )
        assert hit.stats.first_descent_order == [
            mapping[v] for v in cold.stats.first_descent_order
        ]
        assert hit.stats.sim_variables == frozenset(
            mapping[v] for v in cold.stats.sim_variables
        )

    def test_engines_do_not_share_entries(self, small_db):
        cache = QueryCache()
        cold = RingKnnEngine(small_db).evaluate(QUERY)
        cache.fill(small_db, QUERY, cold, engine="ring-knn")
        assert cache.probe(small_db, QUERY, engine="ring-knn-s") is None
        assert cache.probe(small_db, QUERY, engine="ring-knn") is not None

    def test_atom_permutation_does_not_reuse_results(self, small_db):
        cache = QueryCache()
        cold = RingKnnEngine(small_db).evaluate(QUERY)
        cache.fill(small_db, QUERY, cold, engine="ring-knn")
        permuted = ExtendedBGP(
            list(reversed(QUERY.triples)), list(QUERY.clauses)
        )
        # Same signature, different profile: no byte-identical claim.
        assert cache.probe(small_db, permuted, engine="ring-knn") is None

    def test_timed_out_results_are_inadmissible(self, small_db):
        cache = QueryCache()
        meta: dict = {}
        bad = _result([{X: 1, Y: 2, Z: 3}], timed_out=True)
        assert not cache.fill(small_db, QUERY, bad, meta=meta)
        assert meta["store_reason"] == "timed out"
        assert cache.stats()["inadmissible"] == 1
        assert len(cache) == 0

    def test_cost_floor_rejects_cheap_results(self, small_db):
        cache = QueryCache(CacheConfig(min_cost_s=10.0))
        meta: dict = {}
        cheap = _result([{X: 1, Y: 2, Z: 3}], elapsed=0.001)
        assert not cache.fill(small_db, QUERY, cheap, meta=meta)
        assert meta["store_reason"] == "below cost floor"
        # An explicit observed cost above the floor overrides elapsed.
        assert cache.fill(small_db, QUERY, cheap, cost_s=11.0)

    def test_oversized_entry_is_inadmissible(self, small_db):
        cache = QueryCache(CacheConfig(max_bytes=1024))
        meta: dict = {}
        big = _result([{X: i, Y: i, Z: i} for i in range(1000)])
        assert not cache.fill(small_db, QUERY, big, meta=meta)
        assert meta["store_reason"] == "over byte budget"

    def test_projected_solutions_are_inadmissible(self, small_db):
        cache = QueryCache()
        meta: dict = {}
        partial = _result([{X: 1}])  # misses Y and Z bindings
        assert not cache.fill(small_db, QUERY, partial, meta=meta)
        assert meta["store_reason"] == "unbound variable"

    def test_eviction_prefers_cheap_stale_entries(self, small_db):
        # Budget fits two entries; the third fill evicts the cheapest
        # (cost/age score), not simply the oldest.
        row = [{X: 1, Y: 2, Z: 3}]
        nbytes = 3 * 8 + 512
        cache = QueryCache(
            CacheConfig(max_bytes=2 * nbytes + 1, max_entry_fraction=1.0)
        )
        queries = [
            ExtendedBGP(
                [TriplePattern(X, 20 + i, Y), TriplePattern(Y, 21, Z)],
                clauses=[SimClause(X, 2, Z)],
            )
            for i in range(3)
        ]
        cache.fill(small_db, queries[0], _result(row), cost_s=50.0)
        cache.fill(small_db, queries[1], _result(row), cost_s=0.01)
        cache.fill(small_db, queries[2], _result(row), cost_s=5.0)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        # The expensive old entry survived; the cheap one went.
        assert cache.probe(small_db, queries[0], engine="ring-knn")
        assert cache.probe(small_db, queries[1], engine="ring-knn") is None
        assert cache.probe(small_db, queries[2], engine="ring-knn")

    def test_bump_epoch_invalidates_on_next_probe(self, small_graph):
        db = GraphDatabase(small_graph)
        cache = QueryCache()
        q = ExtendedBGP([TriplePattern(X, 20, Y)])
        cache.fill(db, q, _result([{X: 1, Y: 2}]))
        assert cache.probe(db, q, engine="ring-knn") is not None
        before = database_epoch(db)
        db.bump_epoch()
        assert database_epoch(db) == before + 1
        assert cache.probe(db, q, engine="ring-knn") is None
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["entries"] == 0

    def test_clear_drops_entries_keeps_lifetime_counters(self, small_db):
        cache = QueryCache()
        cache.fill(small_db, QUERY, _result([{X: 1, Y: 2, Z: 3}]))
        assert cache.probe(small_db, QUERY, engine="ring-knn")
        cache.clear()
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert stats["hits"] == 1 and stats["fills"] == 1

    def test_first_level_round_trip_and_lru_bound(self, small_db):
        cache = QueryCache(CacheConfig(first_level_entries=2))
        queries = [
            ExtendedBGP([TriplePattern(X, 20 + i, Y)]) for i in range(3)
        ]
        for q in queries:
            assert cache.first_level_fill(
                small_db, q, "ring-knn", X, (1, 2, 3),
                attempts=4, leap_calls=9,
            )
        assert cache.stats()["first_level_entries"] == 2
        # Oldest entry fell off; the others replay, remapped to the
        # probing query's own variable name.
        assert cache.first_level_probe(small_db, queries[0], "ring-knn") is None
        renamed = _rename(queries[2], {X: Var("a"), Y: Var("b")})
        hit = cache.first_level_probe(small_db, renamed, "ring-knn")
        assert hit is not None
        assert hit.variable == Var("a")
        assert hit.candidates == (1, 2, 3)
        assert (hit.attempts, hit.leap_calls) == (4, 9)


# ----------------------------------------------------------------------
# epoch invalidation across a hot index replace
# ----------------------------------------------------------------------


class TestHotReloadInvalidation:
    def test_replaced_index_file_invalidates_entries(self, tmp_path):
        from repro.store import save

        rng = np.random.default_rng(3)
        path = str(tmp_path / "db.idx")
        graphs = [
            [
                (
                    int(rng.integers(0, 12)),
                    20,
                    int(rng.integers(0, 12)),
                )
                for _ in range(40)
            ]
            for _ in range(2)
        ]
        from repro.graph.triples import GraphData

        cache = QueryCache()
        q = ExtendedBGP([TriplePattern(X, 20, Y)])

        save(GraphDatabase(GraphData(graphs[0])), path)
        db1 = GraphDatabase.from_index(path)
        try:
            epoch1 = database_epoch(db1)
            assert epoch1 > 0  # seeded from the store checksum
            cold = RingKnnEngine(db1).evaluate(q)
            cache.fill(db1, q, cold)
            assert cache.probe(db1, q, engine="ring-knn") is not None
        finally:
            db1.close()

        # Hot replace: a different artifact behind the same path.
        save(GraphDatabase(GraphData(graphs[1])), path)
        db2 = GraphDatabase.from_index(path)
        try:
            assert database_epoch(db2) != epoch1
            assert cache.probe(db2, q, engine="ring-knn") is None
            assert cache.stats()["invalidations"] == 1
            # The fresh database's results are admitted under its epoch.
            cache.fill(db2, q, RingKnnEngine(db2).evaluate(q))
            assert cache.probe(db2, q, engine="ring-knn") is not None
        finally:
            db2.close()


# ----------------------------------------------------------------------
# engine + scheduler integration: golden Figure-2 cached-vs-cold sweep
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def figure2():
    from repro.bench.harness import _build
    from tests.test_golden_opcounts import CONFIG

    db, workload = _build(CONFIG)
    queries = [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]
    return db, queries


def _comparable(result: QueryResult):
    stats = result.stats
    return (
        result.solutions,
        stats.solutions,
        stats.bindings,
        stats.attempts,
        stats.leap_calls,
        stats.first_descent_order,
        sorted(stats.sim_variables),
    )


class TestGoldenFigure2Sweep:
    def test_auto_engine_warm_hits_are_byte_identical(self, figure2):
        db, queries = figure2
        cache = QueryCache()
        cold_engine = AutoEngine(db)
        warm_engine = AutoEngine(db, cache=cache)
        cold = [cold_engine.evaluate(q) for q in queries]
        first = [warm_engine.evaluate(q) for q in queries]
        warm = [warm_engine.evaluate(q) for q in queries]
        hits = 0
        for q, c, f, w in zip(queries, cold, first, warm):
            assert f.solutions == c.solutions, q
            if w.cached:
                hits += 1
                assert _comparable(w) == _comparable(c), q
        # Every admissible query must come back warm (only uncanonical
        # shapes may legitimately miss; the workload has none).
        assert hits == len(queries)
        stats = cache.stats()
        assert stats["hits"] >= len(queries)
        assert stats["fills"] >= 1

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_scheduler_warm_batches_are_byte_identical(
        self, figure2, workers
    ):
        db, queries = figure2
        cache = QueryCache()
        scheduler = QueryScheduler(db, workers=workers, cache=cache)
        cold = scheduler.run_batch(queries)
        warm = scheduler.run_batch(queries)
        for q, c, w in zip(queries, cold, warm):
            assert w.solutions == c.solutions, (workers, q)
            assert w.engine == c.engine, (workers, q)
        assert any(w.cached for w in warm), "no warm hit in second batch"
        assert cache.stats()["hits"] >= 1

    def test_trace_records_cache_hit_event(self, figure2):
        db, queries = figure2
        cache = QueryCache()
        engine = AutoEngine(db, cache=cache)
        engine.evaluate(queries[0])
        trace = QueryTrace()
        result = engine.evaluate(queries[0], trace=trace)
        assert result.cached
        assert trace.meta["cache"]["event"] == "cache_hit"
        assert trace.meta["cache"]["outcome"] == "hit"
        assert trace.meta["cache"]["signature"]
        assert trace.solutions == len(result.solutions)

    def test_limit_bypasses_the_cache(self, figure2):
        db, queries = figure2
        cache = QueryCache()
        engine = AutoEngine(db, cache=cache)
        engine.evaluate(queries[0])  # fills
        limited = engine.evaluate(queries[0], limit=1)
        assert not limited.cached
        assert len(limited.solutions) <= 1


# ----------------------------------------------------------------------
# scheduler cost-table bound (satellite: bounded EWMA memory)
# ----------------------------------------------------------------------


def test_observed_cost_table_is_lru_bounded(small_db):
    from repro.parallel.scheduler import ScheduledQuery

    scheduler = QueryScheduler(small_db, workers=1)
    plans = [
        ScheduledQuery(
            index=i,
            route="pooled",
            engine="ring-knn",
            estimate=10,
            reason="test",
            signature=("ring-knn", i, 0, 0),
        )
        for i in range(MAX_OBSERVED_SHAPES + 40)
    ]
    for plan in plans:
        scheduler.record_elapsed(plan, 0.5)
    assert len(scheduler._observed_s) == MAX_OBSERVED_SHAPES
    # Least-recently-touched shapes were dropped, newest kept.
    assert scheduler.observed_cost(plans[0]) is None
    assert scheduler.observed_cost(plans[-1]) == 0.5
