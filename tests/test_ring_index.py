"""Unit tests for Ring construction and primitives, including the
worked Example 1 of the paper (Figure 1)."""

import numpy as np
import pytest

from repro.graph.triples import GraphData
from repro.ring.index import NEXT_COORD, PREV_COORD, RingIndex
from repro.utils.errors import StructureError


class TestCoordinateCycle:
    def test_cycle_is_consistent(self):
        for coord in "spo":
            assert PREV_COORD[NEXT_COORD[coord]] == coord
            assert NEXT_COORD[PREV_COORD[coord]] == coord

    def test_arc_start_singletons(self):
        for coord in "spo":
            assert RingIndex.arc_start({coord}) == coord

    def test_arc_start_pairs(self):
        assert RingIndex.arc_start({"s", "p"}) == "s"
        assert RingIndex.arc_start({"p", "o"}) == "p"
        assert RingIndex.arc_start({"o", "s"}) == "o"

    def test_arc_start_invalid(self):
        with pytest.raises(StructureError):
            RingIndex.arc_start({"s", "p", "o"})


class TestFigure1Example:
    """Example 1: the travel graph, BGP {(x, c, y), (y, c, z)}."""

    def test_candidate_intersection_on_y(self, paper_figure1_graph):
        ring = RingIndex(paper_figure1_graph)
        c = 10
        # Example 1: "for (y, c, z), the candidate subjects {2, 3, 4} are
        # the distinct elements in C_S[1..5]".
        lo, hi = ring.block_range("p", c)
        subjects = set()
        value = 0
        while True:
            nxt = ring.leap_stored("p", lo, hi, value)
            if nxt is None:
                break
            subjects.add(nxt)
            value = nxt + 1
        assert subjects == {2, 3, 4}
        # "for (x, c, y), the candidate objects {1, 4, 5, 6} are the
        # distinct elements in C_O mapped to C_S[1..5]".
        objects = set()
        value = 0
        while True:
            nxt = ring.leap_ahead("p", c, value)
            if nxt is None:
                break
            objects.add(nxt)
            value = nxt + 1
        assert objects == {1, 4, 5, 6}
        # "The Ring efficiently finds the intersection {4}."
        assert subjects & objects == {4}

    def test_descend_by_y_narrows_ranges(self, paper_figure1_graph):
        ring = RingIndex(paper_figure1_graph)
        c = 10
        # After y := 4: (4, c, z) is the 2-arc (s, p) = (4, c).
        lo, hi = ring.pair_range("s", 4, c)
        assert hi - lo + 1 == 2  # edges 4->5, 4->6
        zs = set()
        value = 0
        while True:
            nxt = ring.leap_stored("s", lo, hi, value)
            if nxt is None:
                break
            zs.add(nxt)
            value = nxt + 1
        assert zs == {5, 6}
        # (x, c, 4) is the 2-arc (p, o) = (c, 4).
        lo, hi = ring.pair_range("p", c, 4)
        xs = set()
        value = 0
        while True:
            nxt = ring.leap_stored("p", lo, hi, value)
            if nxt is None:
                break
            xs.add(nxt)
            value = nxt + 1
        assert xs == {2, 3}


class TestPrimitives:
    def test_contains(self, small_graph):
        ring = RingIndex(small_graph)
        for triple in list(small_graph)[:30]:
            assert ring.contains(*triple)
        assert not ring.contains(0, 0, 0)
        assert not ring.contains(999, 20, 0)

    def test_block_count_matches_matching(self, small_graph):
        ring = RingIndex(small_graph)
        for value in range(small_graph.domain_size):
            assert ring.block_count("s", value) == len(
                small_graph.matching(value, None, None)
            )
            assert ring.block_count("p", value) == len(
                small_graph.matching(None, value, None)
            )
            assert ring.block_count("o", value) == len(
                small_graph.matching(None, None, value)
            )

    def test_out_of_domain_values_are_empty(self, small_graph):
        ring = RingIndex(small_graph)
        lo, hi = ring.block_range("s", 9999)
        assert lo > hi
        lo, hi = ring.pair_range("s", 9999, 0)
        assert lo > hi
        assert ring.leap_ahead("s", 9999, 0) is None

    def test_pair_range_sizes(self, small_graph):
        ring = RingIndex(small_graph)
        spo = small_graph.spo
        for s, p in {(int(r[0]), int(r[1])) for r in spo[:40]}:
            lo, hi = ring.pair_range("s", s, p)
            expected = len(small_graph.matching(s, p, None))
            assert hi - lo + 1 == expected

    def test_empty_graph(self):
        ring = RingIndex(GraphData([]))
        assert ring.num_edges == 0
        assert ring.leap_unbound("s", 0) is None

    def test_distinct_in_range(self, small_graph):
        ring = RingIndex(small_graph)
        # The stored column of the p-block table (T_POS) holds subjects.
        lo, hi = ring.block_range("p", 20)
        expected = len(np.unique(small_graph.matching(None, 20, None)[:, 0]))
        assert ring.distinct_in_range("p", lo, hi) == expected
        assert ring.distinct_in_range("p", lo, hi, cap=1) == 1

    def test_size_in_bytes(self, small_graph):
        assert RingIndex(small_graph).size_in_bytes() > 0
