"""Failure-injection tests: malformed inputs must fail loudly and early."""

import numpy as np
import pytest

from repro.knn.builders import build_knn_graph, build_knn_graph_bruteforce
from repro.knn.distance_index import DistanceRangeIndex
from repro.utils.errors import ValidationError


class TestNonFinitePoints:
    def test_nan_points_rejected_by_builders(self):
        points = np.zeros((10, 2))
        points[3, 1] = np.nan
        with pytest.raises(ValidationError, match="finite"):
            build_knn_graph_bruteforce(points, K=2)
        with pytest.raises(ValidationError, match="finite"):
            build_knn_graph(points, K=2, method="kdtree")

    def test_inf_points_rejected(self):
        points = np.zeros((10, 2))
        points[0, 0] = np.inf
        with pytest.raises(ValidationError, match="finite"):
            build_knn_graph_bruteforce(points, K=2)

    def test_nan_points_rejected_by_distance_index(self):
        points = np.zeros((5, 2))
        points[2, 0] = np.nan
        with pytest.raises(ValidationError, match="finite"):
            DistanceRangeIndex(points, d_max=1.0)


class TestMemberValidation:
    def test_unsorted_members_rejected(self):
        points = np.random.default_rng(0).normal(size=(5, 2))
        with pytest.raises(ValidationError):
            build_knn_graph_bruteforce(
                points, K=2, members=np.array([4, 3, 2, 1, 0])
            )

    def test_duplicate_members_rejected(self):
        points = np.random.default_rng(0).normal(size=(5, 2))
        with pytest.raises(ValidationError):
            build_knn_graph_bruteforce(
                points, K=2, members=np.array([0, 1, 1, 2, 3])
            )

    def test_wrong_length_members_rejected(self):
        points = np.random.default_rng(0).normal(size=(5, 2))
        with pytest.raises(ValidationError):
            build_knn_graph_bruteforce(points, K=2, members=np.arange(4))


class TestWorkloadGoldenCounts:
    """Regression net: the deterministic workload's solution counts.

    If the generator or any engine drifts, these exact numbers change;
    they were produced by three independent engines agreeing.
    """

    def test_golden_counts(self, bench, bench_db):
        from repro.datasets.workload import WorkloadConfig, generate_workload
        from repro.engines.ring_knn import RingKnnEngine

        workload = generate_workload(
            bench,
            WorkloadConfig(
                k=4, n_q1=2, n_q2=1, n_q3=2, n_q4=1, n_q5=2, seed=13
            ),
        )
        engine = RingKnnEngine(bench_db)
        counts = {
            family: [
                len(engine.evaluate(q, timeout=60).solutions)
                for q in queries
            ]
            for family, queries in workload.items()
        }
        # Determinism of the full pipeline: generation + evaluation.
        second = {
            family: [
                len(engine.evaluate(q, timeout=60).solutions)
                for q in queries
            ]
            for family, queries in workload.items()
        }
        assert counts == second
        # Every family produces at least one non-trivial query overall.
        assert any(sum(v) > 0 for v in counts.values())
