"""Tests for the ASCII violin rendering of Figure 2 distributions."""

from repro.experiments.figure2 import EngineSeries, FamilyResult
from repro.experiments.violin import render_family_violins, render_violin


class TestRenderViolin:
    def test_width_respected(self):
        bar = render_violin([0.1, 0.2, 0.3], 0.01, 1.0, width=40)
        assert len(bar) == 40

    def test_markers_present(self):
        bar = render_violin([0.1, 0.2, 0.9], 0.01, 1.0, width=40)
        # Median and mean markers (merged marker when they coincide).
        assert ("o" in bar and "x" in bar) or "8" in bar

    def test_empty_series_blank(self):
        assert render_violin([], 0.01, 1.0, width=10) == " " * 10

    def test_cluster_position_tracks_magnitude(self):
        fast = render_violin([0.01] * 10, 0.001, 10.0, width=40)
        slow = render_violin([5.0] * 10, 0.001, 10.0, width=40)
        assert fast.index("8") < slow.index("8")

    def test_degenerate_axis(self):
        bar = render_violin([0.5], 0.5, 0.5, width=20)
        assert len(bar) == 20


class TestRenderFamilyViolins:
    def make_results(self):
        return {
            "Q1": FamilyResult(
                "Q1",
                {
                    "baseline": EngineSeries(times=[1.0, 2.0, 4.0]),
                    "ring-knn": EngineSeries(times=[0.2, 0.3, 0.5]),
                },
            )
        }

    def test_contains_rows_and_axis(self):
        text = render_family_violins(self.make_results())
        assert "log scale" in text
        assert "Q1 baseline" in text.replace("  ", " ")
        assert "ring-knn" in text

    def test_empty_results(self):
        assert "no measurements" in render_family_violins({})

    def test_shared_axis_orders_engines(self):
        text = render_family_violins(self.make_results(), width=60)
        lines = [line for line in text.splitlines() if "|" in line]
        base_bar = lines[0].split("|")[1]
        ring_bar = lines[1].split("|")[1]
        marker = lambda bar: min(
            bar.index(c) for c in "ox8" if c in bar
        )
        assert marker(ring_bar) < marker(base_bar)
