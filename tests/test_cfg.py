"""Tests for the per-function CFG builder and the dataflow engine.

The golden half renders every function in ``lint_fixtures/cfg_cases.py``
through :func:`cfg_shape` and diffs against ``cfg_cases.golden`` — any
change to edge construction (finally sharing, exception continuations,
loop/else wiring) shows up as a reviewable text diff. Set
``REPRO_REGEN_GOLDENS=1`` to rewrite the golden after a deliberate
change. The structural half asserts the properties the RPL008-RPL010
rules lean on, independent of exact node numbering.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path

from repro.analysis.cfg import build_cfg, cfg_shape
from repro.analysis.dataflow import reachable_nodes, solve_forward

FIXTURES = Path(__file__).parent / "lint_fixtures"
CASES = FIXTURES / "cfg_cases.py"
GOLDEN = FIXTURES / "cfg_cases.golden"


def _functions():
    tree = ast.parse(CASES.read_text())
    return [
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _cfg(name: str):
    func = next(f for f in _functions() if f.name == name)
    return build_cfg(func)


def _edges(cfg, kind=None):
    return {
        (src, dst)
        for src, dst, k in cfg.edges
        if kind is None or k == kind
    }


def test_golden_shapes():
    rendered = "\n".join(cfg_shape(build_cfg(f)) for f in _functions())
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN.write_text(rendered)
    assert rendered == GOLDEN.read_text()


def test_every_node_reachable_and_exits_terminal():
    for func in _functions():
        cfg = build_cfg(func)
        assert reachable_nodes(cfg) == frozenset(
            n.index for n in cfg.nodes
        ), f"unreachable nodes in {func.name}"
        for terminal in (cfg.exit, cfg.raise_exit):
            assert not cfg.successors(terminal)


def test_nested_finally_runs_on_exception_path():
    cfg = _cfg("nested_try_finally")
    # step(inner) must not reach RAISE directly: its exception edge
    # lands on the inner Finally, whose region reaches the outer
    # Finally, which alone feeds RAISE.
    raise_preds = {src for src, dst in _edges(cfg) if dst == cfg.raise_exit}
    finallys = [n.index for n in cfg.nodes if n.label == "Finally"]
    assert len(finallys) == 2
    step_nodes = [
        n.index
        for n in cfg.nodes
        if n.stmt is not None
        and isinstance(n.stmt, ast.Expr)
        and "step" in ast.dump(n.stmt)
    ]
    assert step_nodes and not (set(step_nodes) & raise_preds)


def test_with_exit_is_release_point():
    cfg = _cfg("with_statements")
    with_exits = [
        n for n in cfg.nodes if n.label.startswith("WithExit")
    ]
    assert len(with_exits) == 2
    # Only the outermost context machinery (the with header, whose
    # context expression raises before __enter__, and the outer
    # WithExit re-raising) reaches RAISE; body statements' exception
    # edges land on the innermost WithExit — the release point.
    raise_preds = {
        src for src, dst in _edges(cfg, "except") if dst == cfg.raise_exit
    }
    managed = {w.index for w in with_exits} | {
        n.index for n in cfg.nodes if n.label == "With"
    }
    assert raise_preds and raise_preds <= managed
    body_exprs = {
        n.index
        for n in cfg.nodes
        if n.stmt is not None and isinstance(n.stmt, ast.Expr)
    }
    for src in body_exprs:
        except_dsts = {
            dst for s, dst in _edges(cfg, "except") if s == src
        }
        assert except_dsts <= {w.index for w in with_exits}


def test_early_return_in_except_routes_through_finally():
    cfg = _cfg("early_return_in_except")
    fin_node = next(n for n in cfg.nodes if n.label == "Finally")
    returns = [
        n.index
        for n in cfg.nodes
        if n.stmt is not None
        and isinstance(n.stmt, ast.Return)
        and n.line < fin_node.line  # inside the try/except
    ]
    assert len(returns) == 2
    # Every return inside the try/except routes into the finally region
    # (kind "return"), never straight to EXIT; the finally region's own
    # exit then carries the routed return on to EXIT.
    for ret in returns:
        succ = cfg.successors(ret)
        assert (fin_node.index, "return") in succ
        assert (cfg.exit, "return") not in succ
    fin_exits = {
        src for src, dst in _edges(cfg, "return") if dst == cfg.exit
    }
    assert any(
        cfg.nodes[src].line >= fin_node.line for src in fin_exits
    )


def test_while_else_skipped_by_break():
    cfg = _cfg("while_else")
    header = next(
        n.index
        for n in cfg.nodes
        if n.stmt is not None and isinstance(n.stmt, ast.While)
    )
    else_assign = next(
        n.index
        for n in cfg.nodes
        if n.stmt is not None
        and isinstance(n.stmt, ast.Assign)
        and n.line > cfg.nodes[header].line
        and isinstance(n.stmt.value, ast.UnaryOp)
    )
    final_return = next(
        n.index
        for n in cfg.nodes
        if n.stmt is not None and isinstance(n.stmt, ast.Return)
    )
    # Normal exhaustion: header -> else body; break: straight to the
    # statement after the loop, skipping the else.
    assert (header, else_assign) in _edges(cfg, "next")
    break_srcs = {
        src for src, dst in _edges(cfg, "break") if dst == final_return
    }
    assert break_srcs, "break edge missing"
    assert all(
        (src, else_assign) not in _edges(cfg) for src in break_srcs
    )
    # Loop back edge exists.
    assert any(dst == header for _, dst in _edges(cfg, "loop"))


def test_solve_forward_may_union_and_exception_transfer():
    source = (
        "def f(cond):\n"
        "    x = acquire()\n"
        "    if cond:\n"
        "        x.close()\n"
        "    touch(x)\n"
    )
    func = ast.parse(source).body[0]
    cfg = build_cfg(func)
    acq = next(
        n.index
        for n in cfg.nodes
        if n.stmt is not None and isinstance(n.stmt, ast.Assign)
    )
    close = next(
        n.index
        for n in cfg.nodes
        if n.stmt is not None
        and isinstance(n.stmt, ast.Expr)
        and "close" in ast.dump(n.stmt)
    )
    touch = next(
        n.index
        for n in cfg.nodes
        if n.stmt is not None
        and isinstance(n.stmt, ast.Expr)
        and "touch" in ast.dump(n.stmt)
    )

    def transfer(index):
        if index == acq:
            return frozenset({"x"}), frozenset()
        if index == close:
            return frozenset(), frozenset({"x"})
        return frozenset(), frozenset()

    def exception_transfer(index):
        if index == close:
            return frozenset(), frozenset({"x"})
        return frozenset(), frozenset()

    in_facts, out_facts = solve_forward(
        cfg, transfer, exception_transfer=exception_transfer
    )
    # May-analysis: the un-closed branch keeps the fact alive at the
    # join, so it reaches touch() and EXIT.
    assert "x" in in_facts[touch]
    assert "x" in in_facts[cfg.exit]
    # The acquisition's own exception edge carries no gen: acquire()
    # raising acquired nothing.
    assert out_facts[close] == frozenset()
    # But touch(x) raising leaks it to RAISE.
    assert "x" in in_facts[cfg.raise_exit]
