"""Tests for the A_j cumulative-count arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.arrays import CumulativeCounts
from repro.utils.errors import ValidationError


class TestConstruction:
    def test_basic_counts(self):
        cc = CumulativeCounts([2, 0, 2, 1], alphabet_size=3)
        assert len(cc) == 4
        assert cc.count(0) == 1
        assert cc.count(1) == 1
        assert cc.count(2) == 2

    def test_values_out_of_alphabet_rejected(self):
        with pytest.raises(ValidationError):
            CumulativeCounts([0, 5], alphabet_size=3)
        with pytest.raises(ValidationError):
            CumulativeCounts([-1], alphabet_size=3)

    def test_zero_alphabet_rejected(self):
        with pytest.raises(ValidationError):
            CumulativeCounts([], alphabet_size=0)

    def test_from_counts(self):
        cc = CumulativeCounts.from_counts(np.array([2, 0, 3]))
        assert len(cc) == 5
        assert cc.before(0) == 0
        assert cc.before(1) == 2
        assert cc.before(2) == 2
        assert cc.before(3) == 5


class TestQueries:
    def test_before_is_strictly_smaller_count(self):
        cc = CumulativeCounts([0, 0, 1, 3, 3, 3], alphabet_size=4)
        assert cc.before(0) == 0
        assert cc.before(1) == 2
        assert cc.before(2) == 3
        assert cc.before(3) == 3
        assert cc.before(4) == 6

    def test_range_of_blocks(self):
        cc = CumulativeCounts([0, 0, 1, 3, 3, 3], alphabet_size=4)
        assert cc.range_of(0) == (0, 1)
        assert cc.range_of(1) == (2, 2)
        lo, hi = cc.range_of(2)  # empty block
        assert lo > hi
        assert cc.range_of(3) == (3, 5)

    def test_block_of_every_row(self):
        seq = [0, 0, 1, 3, 3, 3]
        cc = CumulativeCounts(seq, alphabet_size=4)
        for row, value in enumerate(sorted(seq)):
            assert cc.block_of(row) == value

    def test_block_of_out_of_range(self):
        cc = CumulativeCounts([0], alphabet_size=1)
        with pytest.raises(ValidationError):
            cc.block_of(1)

    def test_next_nonempty(self):
        cc = CumulativeCounts([1, 1, 4], alphabet_size=6)
        assert cc.next_nonempty(0) == 1
        assert cc.next_nonempty(1) == 1
        assert cc.next_nonempty(2) == 4
        assert cc.next_nonempty(5) is None
        assert cc.next_nonempty(6) is None

    def test_next_nonempty_negative_clamped(self):
        cc = CumulativeCounts([3], alphabet_size=5)
        assert cc.next_nonempty(-2) == 3


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 9), min_size=1, max_size=200),
    st.integers(0, 12),
)
def test_next_nonempty_matches_reference(values, start):
    cc = CumulativeCounts(values, alphabet_size=10)
    candidates = sorted(v for v in set(values) if v >= start)
    expected = candidates[0] if candidates else None
    assert cc.next_nonempty(start) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=1, max_size=200))
def test_blocks_partition_rows(values):
    cc = CumulativeCounts(values, alphabet_size=10)
    total = 0
    for c in range(10):
        lo, hi = cc.range_of(c)
        size = max(0, hi - lo + 1)
        assert size == values.count(c)
        total += size
    assert total == len(values)
