"""Fault-injection battery for the ``repro serve`` query server.

Every failure mode the server must absorb, exercised under **both**
multiprocessing start methods (the forced-start-method escape hatch the
parallel suite uses):

* a query that outlives its deadline gets a typed 504 and the worker
  pool keeps serving — the next request succeeds;
* a full admission window sheds with 429 + ``Retry-After`` and recovers
  once the in-flight query finishes;
* an injected worker fault (a *real* exception inside a pool process)
  costs that request a typed 500, never the server;
* a draining server refuses new queries with a typed 503 while letting
  the in-flight one finish;
* SIGTERM against a real ``repro serve --from-index`` subprocess drains
  the in-flight query, prints ``drained, exiting`` and exits 0.

The in-process tests run the servers with ``debug_faults=True`` — the
only mode in which the ``debug`` request field is honoured; the last
test pins that the CLI flag wires it through end to end.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path
from queue import Empty, Queue

import numpy as np
import pytest

from repro.engines.database import GraphDatabase
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.parallel import forced
from repro.parallel.executor import shutdown_pools
from repro.serve.app import ServeConfig, ServerThread
from repro.store import save

START_METHODS = ("fork", "spawn")

#: Matches the 20-node conftest graph: predicates 20..22, K=5 K-NN.
QUERY = "(?x, 20, ?y) . knn(?x, ?y, 3)"


def _make_db() -> GraphDatabase:
    rng = np.random.default_rng(7)
    triples = [
        (
            int(rng.integers(0, 20)),
            int(20 + rng.integers(0, 3)),
            int(rng.integers(0, 20)),
        )
        for _ in range(120)
    ]
    points = np.random.default_rng(11).normal(size=(20, 2))
    return GraphDatabase(
        GraphData(triples), build_knn_graph_bruteforce(points, K=5)
    )


def _request(host, port, method, path, payload=None, timeout=120):
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        decoded = (
            json.loads(raw)
            if content_type.startswith("application/json")
            else raw.decode("utf-8")
        )
        return response.status, dict(response.headers), decoded
    finally:
        conn.close()


def _post(handle, path, payload, timeout=120):
    return _request(handle.host, handle.port, "POST", path, payload,
                    timeout=timeout)


@pytest.fixture(params=START_METHODS)
def start_method(request, monkeypatch):
    method = request.param
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable")
    monkeypatch.setenv(forced.ENV_START_METHOD, method)
    shutdown_pools()
    yield method
    shutdown_pools()


@pytest.fixture
def faulty_server(start_method):
    """A debug-faults server over a fresh tiny database."""
    handle = ServerThread(
        _make_db(),
        ServeConfig(
            workers=2, capacity=4, default_timeout=30.0, debug_faults=True
        ),
    ).start()
    yield handle
    handle.shutdown()


class TestDeadlines:
    def test_timeout_is_typed_504_and_pool_survives(self, faulty_server):
        """Slow query blows its deadline -> 504 TimeoutExceeded; the
        very next query must succeed on the same (unpoisoned) pool."""
        status, _, body = _post(
            faulty_server,
            "/query",
            {"query": QUERY, "debug": "sleep:2", "timeout": 0.2},
        )
        assert status == 504, body
        assert body["status"] == "error"
        assert body["error"]["type"] == "TimeoutExceeded"
        assert body["error"]["elapsed"] >= 0.2

        status, _, body = _post(faulty_server, "/query", {"query": QUERY})
        assert status == 200, body
        assert body["timed_out"] is False
        assert len(body["solutions"]) > 0

        _, _, metrics = _request(
            faulty_server.host, faulty_server.port, "GET",
            "/metrics?format=json",
        )
        assert metrics["queries"]["timeout"] >= 1
        assert metrics["queries"]["ok"] >= 1

    def test_already_expired_deadline_rejected_before_evaluation(
        self, faulty_server
    ):
        """A deadline that expires while queued never reaches an
        engine."""
        # Occupy the dispatch thread so the victim sits in the queue
        # past its tiny budget.
        blocker = threading.Thread(
            target=_post,
            args=(faulty_server, "/query",
                  {"query": QUERY, "debug": "sleep:0.8"}),
        )
        blocker.start()
        time.sleep(0.2)
        status, _, body = _post(
            faulty_server,
            "/query",
            {"query": QUERY, "timeout": 0.05},
        )
        blocker.join()
        assert status == 504, body
        assert body["error"]["type"] == "TimeoutExceeded"


class TestAdmission:
    def test_full_window_sheds_429_with_retry_after(self, start_method):
        handle = ServerThread(
            _make_db(),
            ServeConfig(workers=2, capacity=1, debug_faults=True),
        ).start()
        try:
            results: Queue = Queue()
            slow = threading.Thread(
                target=lambda: results.put(
                    _post(handle, "/query",
                          {"query": QUERY, "debug": "sleep:1.2"})
                ),
            )
            slow.start()
            time.sleep(0.3)  # let the slow query occupy the window

            status, headers, body = _post(
                handle, "/query", {"query": QUERY}
            )
            assert status == 429, body
            assert body["error"]["type"] == "AdmissionRejected"
            retry_after = int(headers["Retry-After"])
            assert retry_after >= 1
            assert body["error"]["retry_after"] == retry_after

            slow.join()
            slow_status, _, slow_body = results.get(timeout=30)
            assert slow_status == 200, slow_body

            # Window released: the retried request is admitted.
            status, _, body = _post(handle, "/query", {"query": QUERY})
            assert status == 200, body

            _, _, metrics = _request(
                handle.host, handle.port, "GET", "/metrics?format=json"
            )
            assert metrics["queries"]["shed"] >= 1
            assert metrics["gauges"]["shed_total"] >= 1.0
        finally:
            handle.shutdown()


class TestWorkerFaults:
    def test_worker_crash_is_typed_500_then_recovery(self, faulty_server):
        """A real exception inside a pool worker costs one 500; the
        recycled pool serves the next request."""
        status, _, body = _post(
            faulty_server,
            "/query",
            {"query": QUERY, "debug": "worker-raise"},
        )
        assert status == 500, body
        assert body["status"] == "error"
        assert body["error"]["type"] == "RuntimeError"
        assert "injected worker fault" in body["error"]["message"]

        status, _, body = _post(faulty_server, "/query", {"query": QUERY})
        assert status == 200, body
        assert len(body["solutions"]) > 0

        _, _, metrics = _request(
            faulty_server.host, faulty_server.port, "GET",
            "/metrics?format=json",
        )
        assert metrics["queries"]["error"] >= 1

    def test_inline_fault_does_not_leak_traceback(self, faulty_server):
        status, _, body = _post(
            faulty_server, "/query", {"query": QUERY, "debug": "raise"}
        )
        assert status == 500, body
        assert body["error"]["type"] == "RuntimeError"
        assert "Traceback" not in json.dumps(body)


class TestDrain:
    def test_draining_rejects_new_queries_but_finishes_inflight(self):
        shutdown_pools()
        handle = ServerThread(
            _make_db(),
            ServeConfig(workers=1, capacity=4, drain_grace=30.0,
                        debug_faults=True),
        ).start()
        results: Queue = Queue()
        try:
            # Hold one keep-alive connection open before the listener
            # closes: drain semantics apply to it.
            held = HTTPConnection(handle.host, handle.port, timeout=60)
            held.request("GET", "/healthz")
            held.getresponse().read()

            slow = threading.Thread(
                target=lambda: results.put(
                    _post(handle, "/query",
                          {"query": QUERY, "debug": "sleep:1.5"})
                ),
            )
            slow.start()
            time.sleep(0.3)
            assert handle.server is not None
            handle.server.request_shutdown()
            time.sleep(0.2)

            held.request(
                "POST", "/query",
                body=json.dumps({"query": QUERY}).encode("utf-8"),
            )
            response = held.getresponse()
            body = json.loads(response.read())
            assert response.status == 503, body
            assert body["error"]["type"] == "ServerDraining"
            held.close()

            slow.join()
            slow_status, _, slow_body = results.get(timeout=30)
            assert slow_status == 200, (
                "in-flight query must complete during drain", slow_body
            )
        finally:
            handle.shutdown()
            shutdown_pools()


def _read_until(lines: Queue, needle: str, timeout: float) -> str:
    deadline = time.monotonic() + timeout
    seen: list[str] = []
    while time.monotonic() < deadline:
        try:
            line = lines.get(timeout=0.2)
        except Empty:
            continue
        if line is None:
            break
        seen.append(line)
        if needle in line:
            return line
    raise AssertionError(
        f"never saw {needle!r} in server output; got: {seen}"
    )


class TestSigterm:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_sigterm_drains_then_exits_zero(self, method, tmp_path):
        """The real thing: ``repro serve --from-index`` in a subprocess,
        SIGTERM mid-query, in-flight answer delivered, exit code 0."""
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        index = tmp_path / "faults.idx"
        save(_make_db(), str(index))

        repo_root = Path(__file__).parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        env[forced.ENV_START_METHOD] = method
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--from-index", str(index),
                "--port", "0", "--workers", "2", "--debug-faults",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        lines: Queue = Queue()

        def _pump():
            assert proc.stdout is not None
            for line in proc.stdout:
                lines.put(line)
            lines.put(None)

        pump = threading.Thread(target=_pump, daemon=True)
        pump.start()
        try:
            banner = _read_until(lines, "serving on http://", timeout=120)
            port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])

            results: Queue = Queue()
            slow = threading.Thread(
                target=lambda: results.put(
                    _request(
                        "127.0.0.1", port, "POST", "/query",
                        {"query": QUERY, "debug": "sleep:1.5"},
                    )
                ),
            )
            slow.start()
            time.sleep(0.4)
            proc.send_signal(signal.SIGTERM)

            slow.join(timeout=60)
            assert not slow.is_alive(), "in-flight query never returned"
            status, _, body = results.get(timeout=10)
            assert status == 200, (
                "SIGTERM must drain the in-flight query", body
            )
            assert body["status"] == "ok"

            assert proc.wait(timeout=60) == 0
            _read_until(lines, "drained, exiting", timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
