"""Tests for graph/K-NN persistence."""

import numpy as np
import pytest

from repro.graph.dictionary import TermDictionary
from repro.graph.io import (
    dump_triples_text,
    load_bundle,
    load_triples_text,
    parse_triples_text,
    save_bundle,
)
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.utils.errors import ValidationError


class TestTextFormat:
    def test_numeric_roundtrip(self):
        graph = GraphData([(0, 1, 2), (3, 1, 0)])
        text = dump_triples_text(graph)
        parsed, dictionary = parse_triples_text(text)
        assert dictionary is None
        assert list(parsed) == list(graph)

    def test_named_terms_interned(self):
        text = """
        # people
        alice knows bob
        bob knows carol
        """
        graph, dictionary = parse_triples_text(text)
        assert dictionary is not None
        assert len(graph) == 2
        assert dictionary.id_of("alice") == 0

    def test_existing_dictionary_reused(self):
        d = TermDictionary(["alice"])
        graph, d2 = parse_triples_text("alice knows bob", d)
        assert d2 is d
        assert d.id_of("alice") == 0
        assert len(graph) == 1

    def test_comments_and_blank_lines(self):
        graph, _ = parse_triples_text("# nothing\n\n1 2 3  # trailing\n")
        assert list(graph) == [(1, 2, 3)]

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValidationError, match="line 1"):
            parse_triples_text("1 2")

    def test_dump_with_dictionary(self):
        d = TermDictionary()
        graph = GraphData(d.encode_triples([("a", "p", "b")]))
        assert dump_triples_text(graph, d) == "a p b\n"

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("7 8 9\n1 8 7\n")
        graph, _ = load_triples_text(path)
        assert len(graph) == 2

    def test_dump_empty(self):
        assert dump_triples_text(GraphData([])) == ""


class TestBundles:
    def test_roundtrip_graph_only(self, tmp_path):
        graph = GraphData([(0, 1, 2), (2, 1, 0)])
        path = tmp_path / "g.npz"
        save_bundle(path, graph)
        loaded, knn, points = load_bundle(path)
        assert list(loaded) == list(graph)
        assert knn is None and points is None

    def test_roundtrip_full(self, tmp_path):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(12, 3))
        knn = build_knn_graph_bruteforce(pts, K=3)
        graph = GraphData([(0, 20, 1)])
        path = tmp_path / "full.npz"
        save_bundle(path, graph, knn, pts)
        g2, knn2, pts2 = load_bundle(path)
        assert list(g2) == list(graph)
        assert np.array_equal(knn2.neighbor_table, knn.neighbor_table)
        assert np.array_equal(knn2.members, knn.members)
        assert np.allclose(pts2, pts)

    def test_bundle_feeds_database(self, tmp_path):
        from repro.engines.database import GraphDatabase
        from repro.engines.ring_knn import RingKnnEngine
        from repro.query.parser import parse_query

        rng = np.random.default_rng(1)
        pts = rng.normal(size=(10, 2))
        knn = build_knn_graph_bruteforce(pts, K=3)
        graph = GraphData(
            [(i, 20, (i + 1) % 10) for i in range(10)]
        )
        path = tmp_path / "db.npz"
        save_bundle(path, graph, knn, pts)
        g2, knn2, _ = load_bundle(path)
        db = GraphDatabase(g2, knn2)
        result = RingKnnEngine(db).evaluate(
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        )
        reference = RingKnnEngine(GraphDatabase(graph, knn)).evaluate(
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        )
        assert result.sorted_solutions() == reference.sorted_solutions()
