"""Tests for multiple independent K-NN relations in one query (Sec. 3.1:
"we could have various independent K-NN relations and refer to them in
the same queries" — the paper's motivating example 4: songs similar in
tonality AND lyrics)."""

import numpy as np
import pytest

from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.database import GraphDatabase
from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.query.model import Var
from repro.query.parser import parse_query
from repro.utils.errors import QueryError, ValidationError


@pytest.fixture(scope="module")
def two_relation_db():
    """20 'songs' with independent tonality and lyrics descriptors."""
    rng = np.random.default_rng(77)
    n = 20
    triples = [
        (int(rng.integers(0, n)), 30, int(rng.integers(0, n)))
        for _ in range(80)
    ]
    graph = GraphData(triples)
    tonality = build_knn_graph_bruteforce(rng.normal(size=(n, 3)), K=5)
    lyrics = build_knn_graph_bruteforce(rng.normal(size=(n, 6)), K=5)
    db = GraphDatabase(
        graph, knn_graphs={"tonality": tonality, "lyrics": lyrics}
    )
    return db, tonality, lyrics


class TestMultiRelationQueries:
    def test_conjunction_of_two_similarities(self, two_relation_db):
        """Example 4 of the intro: pairs similar in tonality AND lyrics."""
        db, tonality, lyrics = two_relation_db
        query = parse_query(
            "(?x, 30, ?y) . knn:tonality(?x, ?y, 4) . knn:lyrics(?x, ?y, 4)"
        )
        result = RingKnnEngine(db).evaluate(query)
        for sol in result.solutions:
            x, y = sol[Var("x")], sol[Var("y")]
            assert tonality.is_knn(x, y, 4)
            assert lyrics.is_knn(x, y, 4)
        # Conjunction is a subset of each single-relation result.
        single = RingKnnEngine(db).evaluate(
            parse_query("(?x, 30, ?y) . knn:tonality(?x, ?y, 4)")
        )
        assert len(result.solutions) <= len(single.solutions)

    def test_all_engines_agree(self, two_relation_db):
        db, _t, _l = two_relation_db
        query = parse_query(
            "(?x, 30, ?y) . sim:tonality(?x, ?y, 5) . knn:lyrics(?y, ?w, 3)"
        )
        reference = RingKnnEngine(db).evaluate(query).sorted_solutions()
        for engine_cls in (
            RingKnnSEngine,
            BaselineEngine,
            MaterializeEngine,
            ClassicSixPermEngine,
        ):
            got = engine_cls(db).evaluate(query).sorted_solutions()
            assert got == reference, engine_cls.__name__

    def test_unknown_relation_rejected(self, two_relation_db):
        db, _t, _l = two_relation_db
        with pytest.raises(QueryError, match="no such K-NN"):
            RingKnnEngine(db).evaluate(
                parse_query("(?x, 30, ?y) . knn:mood(?x, ?y, 2)")
            )

    def test_per_relation_k_bound(self, two_relation_db):
        db, _t, _l = two_relation_db
        with pytest.raises(QueryError, match="tonality"):
            RingKnnEngine(db).evaluate(
                parse_query("(?x, 30, ?y) . knn:tonality(?x, ?y, 9)")
            )

    def test_default_relation_absent(self, two_relation_db):
        db, _t, _l = two_relation_db
        with pytest.raises(QueryError):
            RingKnnEngine(db).evaluate(
                parse_query("(?x, 30, ?y) . knn(?x, ?y, 2)")
            )


class TestDatabaseWiring:
    def test_default_plus_named(self, small_graph, small_knn):
        rng = np.random.default_rng(1)
        other = build_knn_graph_bruteforce(rng.normal(size=(20, 2)), K=4)
        db = GraphDatabase(
            small_graph, small_knn, knn_graphs={"geo": other}
        )
        assert db.knn_graph is small_knn
        assert set(db.knn_rings) == {"default", "geo"}

    def test_default_conflict_rejected(self, small_graph, small_knn):
        with pytest.raises(ValidationError):
            GraphDatabase(
                small_graph, small_knn, knn_graphs={"default": small_knn}
            )

    def test_space_accounting_sums_relations(self, two_relation_db):
        db, _t, _l = two_relation_db
        assert db.ring_size_in_bytes() > db.ring.size_in_bytes()
        assert db.baseline_size_in_bytes() > db.ring_size_in_bytes() or (
            db.baseline_size_in_bytes() > db.ring.size_in_bytes()
        )
        assert db.raw_size_in_bytes() > db.graph.size_in_bytes()


class TestParserRelations:
    def test_dist_with_relation_rejected(self):
        with pytest.raises(QueryError):
            parse_query("dist:geo(?x, ?y, 1.0)")

    def test_repr_includes_relation(self):
        q = parse_query("(?x, 1, ?y) . knn:tags(?x, ?y, 3)")
        assert "[tags]" in repr(q)
