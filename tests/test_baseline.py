"""Behavioral tests specific to the Sec. 5.3 baseline."""

import pytest

from repro.engines.baseline import BaselineEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.query.parser import parse_query
from repro.utils.errors import QueryError


class TestSupportChecks:
    def test_disconnected_similarity_rejected(self, small_db):
        # w and v appear in no triple and no chain reaches them.
        query = parse_query("(?x, 20, ?y) . knn(?w, ?v, 3)")
        with pytest.raises(QueryError, match="disconnected"):
            BaselineEngine(small_db).evaluate(query)

    def test_chained_clauses_supported(self, small_db):
        # w reachable through y; v through w: supported.
        query = parse_query("(?x, 20, ?y) . knn(?y, ?w, 3) . knn(?w, ?v, 2)")
        result = BaselineEngine(small_db).evaluate(query)
        reference = RingKnnEngine(small_db).evaluate(query)
        assert result.sorted_solutions() == reference.sorted_solutions()

    def test_query_without_triples_rejected(self, small_db):
        query = parse_query("knn(?x, ?y, 3)")
        with pytest.raises(QueryError):
            BaselineEngine(small_db).evaluate(query)


class TestPostprocessing:
    def test_two_ready_filters(self, small_db):
        """Both clause variables bound by the BGP: pure filtering."""
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 4)")
        result = BaselineEngine(small_db).evaluate(query)
        reference = RingKnnEngine(small_db).evaluate(query)
        assert result.sorted_solutions() == reference.sorted_solutions()
        # The base BGP is strictly larger than the filtered output.
        assert result.phase_seconds["base_solutions"] >= len(result.solutions)

    def test_ready_extends_forward(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?y, ?w, 2)")
        result = BaselineEngine(small_db).evaluate(query)
        reference = RingKnnEngine(small_db).evaluate(query)
        assert result.sorted_solutions() == reference.sorted_solutions()

    def test_ready_extends_reverse(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?w, ?y, 2)")
        result = BaselineEngine(small_db).evaluate(query)
        reference = RingKnnEngine(small_db).evaluate(query)
        assert result.sorted_solutions() == reference.sorted_solutions()

    def test_phase_breakdown_reported(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 4)")
        result = BaselineEngine(small_db).evaluate(query)
        assert set(result.phase_seconds) == {
            "bgp",
            "postprocess",
            "base_solutions",
        }

    def test_limit_respected(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?y, ?w, 4)")
        full = BaselineEngine(small_db).evaluate(query)
        capped = BaselineEngine(small_db).evaluate(query, limit=2)
        assert len(capped.solutions) == 2
        assert len(full.solutions) > 2

    def test_timeout_flag(self, small_db):
        query = parse_query("(?x, ?p, ?y) . (?y, ?q, ?z) . knn(?x, ?z, 5)")
        result = BaselineEngine(small_db).evaluate(query, timeout=0.0)
        assert result.timed_out


class TestMotivatingContrast:
    def test_baseline_enumerates_more_intermediate_work_on_q5_shape(
        self, bench_db, bench
    ):
        """The Q5 point: the baseline must produce *all* l1/l2 bindings
        before filtering, while Ring-KNN restricts y' first. We verify
        via the base-solution count exceeding the final output."""
        from repro.datasets.workload import WorkloadConfig, generate_workload

        workload = generate_workload(
            bench, WorkloadConfig(k=4, n_q5=3, seed=2)
        )
        ratios = []
        for query in workload["Q5"]:
            result = BaselineEngine(bench_db).evaluate(query, timeout=60)
            produced = result.phase_seconds["base_solutions"]
            final = len(result.solutions)
            if final:
                ratios.append(produced / final)
        assert ratios and max(ratios) >= 1.0
