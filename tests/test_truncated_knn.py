"""Tests for truncated (fewer-than-K) neighbor lists (Sec. 3.1)."""

import numpy as np
import pytest

from repro.engines.database import GraphDatabase
from repro.engines.baseline import BaselineEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.graph.naive import evaluate_naive
from repro.graph.triples import GraphData
from repro.knn.adjacency import KnnAdjacency
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.graph import KnnGraph
from repro.knn.succinct import KnnRing
from repro.query.parser import parse_query
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def truncated():
    """A 3-NN graph where some rows keep fewer than 3 neighbors."""
    graph = KnnGraph.from_lists(
        members=np.array([0, 1, 2, 3, 4]),
        lists=[
            [1, 2, 3],   # full
            [0],         # only one close neighbor
            [3, 1],      # two
            [],          # isolated: no neighbors within range
            [3, 2, 0],
        ],
        K=3,
    )
    return graph, KnnRing(graph), KnnAdjacency(graph)


class TestModel:
    def test_from_lists_lengths(self, truncated):
        graph, _ring, _adj = truncated
        assert graph.lengths.tolist() == [3, 1, 2, 0, 3]
        assert graph.is_truncated
        assert graph.length_of(1) == 1
        assert graph.length_of(99) == 0

    def test_neighbors_respect_lengths(self, truncated):
        graph, _ring, _adj = truncated
        assert graph.neighbors_of(1, 3).tolist() == [0]
        assert graph.neighbors_of(3, 3).tolist() == []
        assert graph.neighbors_of(0, 2).tolist() == [1, 2]

    def test_is_knn_ignores_padding(self, truncated):
        graph, _ring, _adj = truncated
        # Row 3 is empty; padding must not leak.
        for v in (0, 1, 2, 4):
            assert not graph.is_knn(3, v, 3)
        assert graph.is_knn(1, 0, 1)
        assert not graph.is_knn(1, 2, 3)

    def test_reverse_lists_skip_padding(self, truncated):
        graph, _ring, _adj = truncated
        reverse = graph.reverse_lists()
        # 3 is listed by 2 (rank 1) and 4 (rank 1) and 0 (rank 3).
        assert {u for _r, u in reverse[3]} == {0, 2, 4}

    def test_too_long_list_rejected(self):
        with pytest.raises(ValidationError):
            KnnGraph.from_lists(np.array([0, 1]), [[1, 1, 1]], K=1)

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValidationError):
            KnnGraph(
                np.array([0, 1, 2]),
                np.array([[1, 2], [0, 2], [0, 1]]),
                lengths=np.array([3, 1, 1]),
            )


class TestSuccinctAndAdjacency:
    def test_ring_matches_graph(self, truncated):
        graph, ring, _adj = truncated
        for u in range(5):
            for k in (1, 2, 3):
                assert ring.neighbors_of(u, k) == graph.neighbors_of(
                    u, k
                ).tolist()
                for v in range(5):
                    if u == v:
                        continue
                    assert ring.contains(u, v, k) == graph.is_knn(u, v, k)

    def test_reverse_ranges_match(self, truncated):
        graph, ring, adj = truncated
        for v in range(5):
            for k in (1, 2, 3):
                expected = sorted(
                    u for u in range(5) if u != v and graph.is_knn(u, v, k)
                )
                assert sorted(ring.reverse_neighbors_of(v, k)) == expected
                assert sorted(adj.reverse_neighbors_of(v, k).tolist()) == expected

    def test_forward_count_capped_by_length(self, truncated):
        _graph, ring, _adj = truncated
        assert ring.forward_count(1, 3) == 1
        assert ring.forward_count(3, 2) == 0
        assert ring.forward_count(0, 2) == 2


class TestBuilderTruncation:
    def test_max_distance_truncates(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(size=(30, 2))
        full = build_knn_graph_bruteforce(points, K=6)
        capped = build_knn_graph_bruteforce(points, K=6, max_distance=0.01)
        assert capped.is_truncated
        assert capped.lengths.max() <= 6
        assert capped.lengths.sum() < full.lengths.sum()
        # Truncated lists are prefixes of the full ones.
        for u in range(30):
            le = int(capped.lengths[u])
            assert capped.neighbors_of(u).tolist() == (
                full.neighbors_of(u).tolist()[:le]
            )


class TestEndToEnd:
    def test_engines_agree_on_truncated_graph(self):
        rng = np.random.default_rng(9)
        n = 15
        triples = [
            (int(rng.integers(0, n)), 40, int(rng.integers(0, n)))
            for _ in range(60)
        ]
        graph = GraphData(triples)
        points = rng.uniform(size=(n, 2))
        knn = build_knn_graph_bruteforce(points, K=4, max_distance=0.08)
        assert knn.is_truncated
        db = GraphDatabase(graph, knn)
        for text in (
            "(?x, 40, ?y) . knn(?x, ?y, 3)",
            "(?x, 40, ?y) . sim(?x, ?y, 4)",
            "(?x, 40, ?y) . knn(?y, ?w, 2)",
        ):
            query = parse_query(text)
            expected = sorted(
                tuple(sorted((v.name, c) for v, c in s.items()))
                for s in evaluate_naive(query, graph, knn)
            )
            for engine_cls in (RingKnnEngine, RingKnnSEngine, BaselineEngine):
                got = engine_cls(db).evaluate(query).sorted_solutions()
                assert got == expected, (engine_cls.__name__, text)
