"""Tests for the Anuran/DryBean analogue datasets (Fig. 3 inputs)."""

import numpy as np
import pytest

from repro.datasets.classification import (
    ANURAN_CLASS_SIZES,
    DRYBEAN_CLASS_SIZES,
    make_anuran_like,
    make_drybean_like,
    make_gaussian_mixture,
)
from repro.utils.errors import ValidationError


class TestGaussianMixture:
    def test_shapes_and_labels(self):
        points, labels = make_gaussian_mixture((10, 20, 5), dim=4, seed=0)
        assert points.shape == (35, 4)
        assert labels.shape == (35,)
        assert np.bincount(labels).tolist() == [10, 20, 5]

    def test_deterministic(self):
        a = make_gaussian_mixture((5, 5), dim=3, seed=7)
        b = make_gaussian_mixture((5, 5), dim=3, seed=7)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_normalization(self):
        points, _ = make_gaussian_mixture(
            (50, 50), dim=3, seed=1, normalize=True
        )
        assert points.min() >= 0.0
        assert points.max() <= 1.0

    def test_classes_are_separable_ish(self):
        """Centers are spread; nearest-centroid accuracy should be high
        for the experiment to be meaningful."""
        points, labels = make_gaussian_mixture(
            (100, 100, 100), dim=8, seed=2, center_scale=3.0
        )
        centroids = np.stack(
            [points[labels == c].mean(axis=0) for c in range(3)]
        )
        d = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        acc = (d.argmin(axis=1) == labels).mean()
        assert acc > 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            make_gaussian_mixture((), dim=3)
        with pytest.raises(ValidationError):
            make_gaussian_mixture((0, 5), dim=3)
        with pytest.raises(ValidationError):
            make_gaussian_mixture((5,), dim=0)


class TestNamedDatasets:
    def test_anuran_profile(self):
        points, labels = make_anuran_like(scale=0.05)
        assert points.shape[1] == 22
        assert len(np.unique(labels)) == 10
        # Unbalanced: largest class much larger than smallest.
        counts = np.bincount(labels)
        assert counts.max() > 5 * counts.min()

    def test_anuran_full_size(self):
        sizes = ANURAN_CLASS_SIZES
        assert sum(sizes) == 7195 and len(sizes) == 10

    def test_drybean_profile(self):
        points, labels = make_drybean_like(scale=0.05)
        assert points.shape[1] == 16
        assert len(np.unique(labels)) == 7
        assert points.min() >= 0.0 and points.max() <= 1.0

    def test_drybean_full_size(self):
        assert sum(DRYBEAN_CLASS_SIZES) == 13611 and len(DRYBEAN_CLASS_SIZES) == 7

    def test_scale_bounds(self):
        with pytest.raises(ValidationError):
            make_anuran_like(scale=0.0)
        with pytest.raises(ValidationError):
            make_anuran_like(scale=1.5)
