"""Tests for the term dictionary."""

import pytest

from repro.graph.dictionary import TermDictionary
from repro.query.model import Var


class TestDictionary:
    def test_add_is_idempotent(self):
        d = TermDictionary()
        assert d.add("alice") == 0
        assert d.add("bob") == 1
        assert d.add("alice") == 0
        assert len(d) == 2

    def test_lookup_both_ways(self):
        d = TermDictionary(["x", "y"])
        assert d.id_of("y") == 1
        assert d.term_of(0) == "x"
        assert "x" in d
        assert "z" not in d

    def test_unknown_term_raises(self):
        with pytest.raises(KeyError):
            TermDictionary().id_of("ghost")

    def test_bad_id_raises(self):
        d = TermDictionary(["x"])
        with pytest.raises(IndexError):
            d.term_of(5)
        with pytest.raises(IndexError):
            d.term_of(-1)

    def test_encode_triples(self):
        d = TermDictionary()
        triples = d.encode_triples(
            [("alice", "knows", "bob"), ("bob", "knows", "alice")]
        )
        assert triples == [(0, 1, 2), (2, 1, 0)]

    def test_decode_solution(self):
        d = TermDictionary(["alice", "bob"])
        decoded = d.decode_solution({Var("x"): 1})
        assert decoded == {Var("x"): "bob"}
