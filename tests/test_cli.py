"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "bench.npz"
    code = main(
        [
            "generate",
            "--out",
            str(path),
            "--entities",
            "60",
            "--images",
            "30",
            "--misc-triples",
            "200",
            "--K",
            "5",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_bundle_created(self, bundle_path, capsys):
        assert bundle_path.exists()

    def test_bundle_loads(self, bundle_path):
        from repro.graph.io import load_bundle

        graph, knn, points = load_bundle(bundle_path)
        assert graph.num_edges > 0
        assert knn is not None and knn.K == 5
        assert points is not None


class TestQuery:
    def test_query_runs(self, bundle_path, capsys):
        code = main(
            [
                "query",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img) . knn(?img, ?other, 3)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "solutions in" in out
        assert "ring-knn" in out

    @pytest.mark.parametrize(
        "engine", ["ring-knn", "ring-knn-s", "baseline", "sixperm-knn"]
    )
    def test_all_engines_selectable(self, bundle_path, engine, capsys):
        code = main(
            [
                "query",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img) . knn(?img, ?other, 2)",
                "--engine",
                engine,
                "--print-limit",
                "3",
            ]
        )
        assert code == 0
        assert engine in capsys.readouterr().out

    def test_limit_flag(self, bundle_path, capsys):
        code = main(
            [
                "query",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img)",
                "--limit",
                "2",
            ]
        )
        assert code == 0
        assert "2 solutions" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_plan(self, bundle_path, capsys):
        code = main(
            [
                "explain",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img) . sim(?img, ?other, 3)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "single-2-cyclic" in out
        assert "plan for" in out


class TestCacheCommands:
    def test_cache_stats_replays_a_workload(
        self, bundle_path, tmp_path, capsys
    ):
        import json

        queries = tmp_path / "queries.txt"
        queries.write_text(
            "(?e, 0, ?img)\n"
            "(?e, 0, ?img) . knn(?img, ?other, 3)\n"
        )
        code = main(
            [
                "cache", "stats", "--data", str(bundle_path),
                "--queries", str(queries), "--repeat", "2",
            ]
        )
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        # Two passes over two queries: the second pass hits everything
        # the first admitted.
        assert stats["fills"] >= 1
        assert stats["hits"] >= 1
        assert stats["hit_rate"] == pytest.approx(
            stats["hits"] / (stats["hits"] + stats["misses"])
        )
        assert 0 < stats["bytes"] <= stats["max_bytes"]

    def test_cache_stats_requires_a_source(self, capsys):
        code = main(["cache", "stats"])
        captured = capsys.readouterr()
        assert code == 2
        assert "Traceback" not in captured.err
        assert "ValidationError" in captured.err

    def test_explain_analyze_reports_cache_outcome(
        self, bundle_path, capsys
    ):
        argv = [
            "explain", "--data", str(bundle_path),
            "--query", "(?e, 0, ?img) . knn(?img, ?other, 2)",
            "--analyze",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: miss" in out
        assert "signature=" in out
        assert "[stored]" in out

    def test_explain_analyze_no_cache_omits_the_line(
        self, bundle_path, capsys
    ):
        argv = [
            "explain", "--data", str(bundle_path),
            "--query", "(?e, 0, ?img) . knn(?img, ?other, 2)",
            "--analyze", "--no-cache",
        ]
        assert main(argv) == 0
        assert "cache:" not in capsys.readouterr().out

    def test_serve_batch_prints_cache_summary(
        self, bundle_path, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text("(?e, 0, ?img)\n(?e, 0, ?img)\n")
        code = main(
            [
                "serve-batch", "--data", str(bundle_path),
                "--queries", str(queries), "--workers", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "fills" in out

    def test_serve_batch_no_cache_runs_without_summary(
        self, bundle_path, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text("(?e, 0, ?img)\n")
        code = main(
            [
                "serve-batch", "--data", str(bundle_path),
                "--queries", str(queries), "--workers", "1", "--no-cache",
            ]
        )
        assert code == 0
        assert "cache:" not in capsys.readouterr().out


class TestExperimentCommands:
    def test_figure3_table(self, capsys):
        code = main(
            ["figure3", "--dataset", "anuran", "--scale", "0.01", "--K", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Precision@k" in out
        assert "intersection" in out

    def test_space_table(self, capsys):
        code = main(
            [
                "space",
                "--entities",
                "60",
                "--images",
                "30",
                "--misc-triples",
                "200",
                "--K",
                "5",
            ]
        )
        assert code == 0
        assert "ring" in capsys.readouterr().out

    def test_figure2_small(self, capsys):
        code = main(
            [
                "figure2",
                "--entities",
                "60",
                "--images",
                "30",
                "--misc-triples",
                "200",
                "--K",
                "5",
                "--k",
                "3",
                "--queries",
                "1",
                "--timeout",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Q1" in out and "ring-knn" in out


class TestServeBatchErrorPaths:
    """Typed, traceback-free failures of the batch/server commands."""

    def _run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        return code, captured

    def test_missing_query_file_is_typed_error(self, bundle_path, capsys):
        code, captured = self._run(
            [
                "serve-batch", "--data", str(bundle_path),
                "--queries", "/nonexistent/queries.txt",
            ],
            capsys,
        )
        assert code == 2
        assert "ValidationError" in captured.err
        assert "cannot read query file" in captured.err

    def test_malformed_query_line_is_typed_error(
        self, bundle_path, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# a comment\n"
            "(?x, 0, ?y)\n"
            "\n"
            "(?x, 0, ?y) . knn(?broken\n"
        )
        code, captured = self._run(
            [
                "serve-batch", "--data", str(bundle_path),
                "--queries", str(queries), "--workers", "1",
            ],
            capsys,
        )
        assert code == 2
        assert "QueryError" in captured.err
        # points at the offending non-comment line, 1-based
        assert "non-comment line 2" in captured.err
        assert "knn(?broken" in captured.err

    def test_missing_index_file_is_typed_error(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("(?x, 0, ?y)\n")
        code, captured = self._run(
            [
                "serve-batch", "--from-index",
                str(tmp_path / "missing.idx"),
                "--queries", str(queries),
            ],
            capsys,
        )
        assert code == 2
        # the store layer raises its own typed family for a bad path
        assert "StoreFormatError" in captured.err
        assert "No such file" in captured.err

    def test_corrupt_index_file_is_typed_error(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.idx"
        corrupt.write_bytes(b"this is not an index file at all")
        queries = tmp_path / "queries.txt"
        queries.write_text("(?x, 0, ?y)\n")
        code, captured = self._run(
            [
                "serve-batch", "--from-index", str(corrupt),
                "--queries", str(queries),
            ],
            capsys,
        )
        assert code == 2
        assert "Store" in captured.err  # typed Store* family

    def test_serve_missing_index_is_typed_error(self, tmp_path, capsys):
        code, captured = self._run(
            ["serve", "--from-index", str(tmp_path / "missing.idx")],
            capsys,
        )
        assert code == 2
        assert "StoreFormatError" in captured.err
        assert "No such file" in captured.err

    def test_missing_data_bundle_is_typed_error(self, tmp_path, capsys):
        code, captured = self._run(
            [
                "query", "--data", str(tmp_path / "missing.npz"),
                "--query", "(?x, 0, ?y)",
            ],
            capsys,
        )
        assert code == 2
        assert "ValidationError" in captured.err
        assert "cannot read data bundle" in captured.err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--data", "x", "--query", "y", "--engine", "magic"]
            )

    def test_serve_subcommand_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--from-index", "bench.idx", "--port", "8080",
                "--workers", "4", "--capacity", "32", "--debug-faults",
            ]
        )
        assert args.from_index == "bench.idx"
        assert args.port == 8080
        assert args.workers == 4
        assert args.capacity == 32
        assert args.debug_faults is True

    def test_serve_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--data", "a.npz", "--from-index", "b.idx"]
            )
