"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "bench.npz"
    code = main(
        [
            "generate",
            "--out",
            str(path),
            "--entities",
            "60",
            "--images",
            "30",
            "--misc-triples",
            "200",
            "--K",
            "5",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_bundle_created(self, bundle_path, capsys):
        assert bundle_path.exists()

    def test_bundle_loads(self, bundle_path):
        from repro.graph.io import load_bundle

        graph, knn, points = load_bundle(bundle_path)
        assert graph.num_edges > 0
        assert knn is not None and knn.K == 5
        assert points is not None


class TestQuery:
    def test_query_runs(self, bundle_path, capsys):
        code = main(
            [
                "query",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img) . knn(?img, ?other, 3)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "solutions in" in out
        assert "ring-knn" in out

    @pytest.mark.parametrize(
        "engine", ["ring-knn", "ring-knn-s", "baseline", "sixperm-knn"]
    )
    def test_all_engines_selectable(self, bundle_path, engine, capsys):
        code = main(
            [
                "query",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img) . knn(?img, ?other, 2)",
                "--engine",
                engine,
                "--print-limit",
                "3",
            ]
        )
        assert code == 0
        assert engine in capsys.readouterr().out

    def test_limit_flag(self, bundle_path, capsys):
        code = main(
            [
                "query",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img)",
                "--limit",
                "2",
            ]
        )
        assert code == 0
        assert "2 solutions" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_plan(self, bundle_path, capsys):
        code = main(
            [
                "explain",
                "--data",
                str(bundle_path),
                "--query",
                "(?e, 0, ?img) . sim(?img, ?other, 3)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "single-2-cyclic" in out
        assert "plan for" in out


class TestExperimentCommands:
    def test_figure3_table(self, capsys):
        code = main(
            ["figure3", "--dataset", "anuran", "--scale", "0.01", "--K", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Precision@k" in out
        assert "intersection" in out

    def test_space_table(self, capsys):
        code = main(
            [
                "space",
                "--entities",
                "60",
                "--images",
                "30",
                "--misc-triples",
                "200",
                "--K",
                "5",
            ]
        )
        assert code == 0
        assert "ring" in capsys.readouterr().out

    def test_figure2_small(self, capsys):
        code = main(
            [
                "figure2",
                "--entities",
                "60",
                "--images",
                "30",
                "--misc-triples",
                "200",
                "--K",
                "5",
                "--k",
                "3",
                "--queries",
                "1",
                "--timeout",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Q1" in out and "ring-knn" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--data", "x", "--query", "y", "--engine", "magic"]
            )
