"""Tests for the KnnGraph model (Defs. 3-4)."""

import numpy as np
import pytest

from repro.knn.graph import KnnGraph
from repro.utils.errors import ValidationError


def tiny_graph() -> KnnGraph:
    """4 members (ids 10, 20, 30, 40), K = 2."""
    members = np.array([10, 20, 30, 40])
    neighbors = np.array(
        [
            [20, 30],  # 10's nearest: 20, then 30
            [10, 30],
            [40, 10],
            [30, 20],
        ]
    )
    return KnnGraph(members, neighbors)


class TestValidation:
    def test_unsorted_members_rejected(self):
        with pytest.raises(ValidationError):
            KnnGraph(np.array([2, 1]), np.array([[1], [2]]))

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValidationError):
            KnnGraph(np.array([1, 1]), np.array([[1], [1]]))

    def test_self_neighbor_rejected(self):
        with pytest.raises(ValidationError):
            KnnGraph(np.array([1, 2]), np.array([[1], [1]]))

    def test_k_must_be_below_n(self):
        with pytest.raises(ValidationError):
            KnnGraph(np.array([1, 2]), np.array([[2, 2], [1, 1]]))

    def test_non_member_neighbor_rejected(self):
        with pytest.raises(ValidationError):
            KnnGraph(np.array([1, 2]), np.array([[9], [1]]))

    def test_duplicate_in_row_rejected(self):
        with pytest.raises(ValidationError):
            KnnGraph(
                np.array([1, 2, 3]), np.array([[2, 2], [1, 3], [1, 2]])
            )


class TestQueries:
    def test_membership(self):
        g = tiny_graph()
        assert g.is_member(20)
        assert not g.is_member(25)
        assert g.index_of(30) == 2
        assert g.index_of(5) is None

    def test_neighbors_of_prefix(self):
        g = tiny_graph()
        assert g.neighbors_of(10, 1).tolist() == [20]
        assert g.neighbors_of(10, 2).tolist() == [20, 30]
        assert g.neighbors_of(10).tolist() == [20, 30]

    def test_neighbors_of_nonmember_empty(self):
        assert tiny_graph().neighbors_of(99).size == 0

    def test_rank_of(self):
        g = tiny_graph()
        assert g.rank_of(10, 20) == 1
        assert g.rank_of(10, 30) == 2
        assert g.rank_of(10, 40) is None
        assert g.rank_of(99, 10) is None

    def test_is_knn_matches_def3(self):
        g = tiny_graph()
        assert g.is_knn(10, 20, 1)
        assert not g.is_knn(10, 30, 1)
        assert g.is_knn(10, 30, 2)

    def test_is_knn_rejects_k_beyond_K(self):
        with pytest.raises(ValidationError):
            tiny_graph().is_knn(10, 20, 3)

    def test_reverse_lists_sorted_by_rank(self):
        g = tiny_graph()
        reverse = g.reverse_lists()
        # 30 is listed by 20 (rank 2), 10 (rank 2), 40 (rank 1).
        assert reverse[30][0] == (1, 40)
        assert {u for _r, u in reverse[30]} == {10, 20, 40}
        ranks = [r for r, _u in reverse[30]]
        assert ranks == sorted(ranks)

    def test_k_property(self):
        assert tiny_graph().K == 2
        assert tiny_graph().num_members == 4
