"""Golden op-count regression tests over the canonical Figure-2 queries.

Leapfrog leap/attempt/binding counts and the per-structure wavelet-tree
operation counters are *deterministic*: they depend only on the code,
the generator seeds, and the workload — never on the machine or on wall
time. This pins them to a checked-in fixture so any change to the
succinct kernel, the relation adapters, or the LTJ engine that alters
the number of logical operations (rather than only their cost) fails
loudly.

Regenerate after an *intentional* algorithmic change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_opcounts.py

and commit the updated ``tests/golden/figure2_opcounts.json`` alongside
an explanation of why the counts moved. A kernel optimization that only
speeds up operations must leave this file byte-identical.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.bench.harness import BenchConfig, _build, collect_opcounts

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "figure2_opcounts.json"

# Canonical tiny-scale setup: small enough for the tier-1 suite, large
# enough that every family issues thousands of wavelet ops. The baseline
# engine is omitted only for runtime; it shares the same succinct
# structures, so its ops are covered by the Ring/K-NN counters here.
CONFIG = BenchConfig(
    entities=120,
    images=60,
    misc_triples=600,
    big_k=8,
    seed=7,
    k=5,
    queries=2,
    workload_seed=2,
    engines=("ring-knn", "ring-knn-s"),
    micro=False,
)


@pytest.fixture(scope="module")
def observed() -> dict:
    db, workload = _build(CONFIG)
    return collect_opcounts(db, workload, CONFIG.engines)


def test_golden_opcounts_match_fixture(observed):
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(observed, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"missing fixture {GOLDEN_PATH}; run with REGEN_GOLDEN=1 to create"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert observed.keys() == golden.keys()
    for key in sorted(golden):
        assert observed[key] == golden[key], (
            f"op counts diverged for {key} — if the algorithm changed "
            f"intentionally, regenerate with REGEN_GOLDEN=1"
        )


def test_golden_counts_are_nontrivial(observed):
    """Guard against the fixture silently pinning an empty measurement."""
    total_wavelet_ops = sum(
        bucket.get("total", 0)
        for entry in observed.values()
        for bucket in entry["wavelets"].values()
    )
    total_solutions = sum(
        entry["stats"]["solutions"] for entry in observed.values()
    )
    assert total_wavelet_ops > 10_000
    assert total_solutions > 0
    assert all(entry["stats"]["leap_calls"] > 0 for entry in observed.values())


def test_golden_engines_agree_on_solutions(observed):
    """ring-knn and ring-knn-s must count identical solutions per family
    (different orderings, same semantics)."""
    families = {key.split("/")[0] for key in observed}
    for family in sorted(families):
        counts = {
            key: entry["stats"]["solutions"]
            for key, entry in observed.items()
            if key.startswith(f"{family}/")
        }
        assert len(set(counts.values())) == 1, counts
