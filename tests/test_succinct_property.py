"""Property-test battery: BitVector / WaveletTree vs naive references.

These tests pin the *semantics* of the succinct kernel against
straightforward Python reference models, so the hot-path implementation
(lookup tables, unchecked fast paths, per-query memoization) can be
swapped freely: the battery must pass identically before and after any
kernel change.

Edge cases exercised explicitly (beyond random generation): the empty
sequence, all-zeros, all-ones, a single-symbol alphabet (``sigma = 1``),
and lengths that are not multiples of the 64-bit word size.
"""

from __future__ import annotations

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree

# ----------------------------------------------------------------------
# naive reference models
# ----------------------------------------------------------------------


class RefBits:
    """Reference semantics of BitVector, straight off a Python list."""

    def __init__(self, bits: list[int]) -> None:
        self.bits = list(bits)

    def rank1(self, i: int) -> int:
        return sum(self.bits[:i])

    def rank0(self, i: int) -> int:
        return i - self.rank1(i)

    def select1(self, j: int) -> int:
        return [p for p, b in enumerate(self.bits) if b == 1][j - 1]

    def select0(self, j: int) -> int:
        return [p for p, b in enumerate(self.bits) if b == 0][j - 1]

    def next_one(self, i: int) -> int | None:
        for p in range(max(i, 0), len(self.bits)):
            if self.bits[p]:
                return p
        return None


class RefSeq:
    """Reference semantics of WaveletTree over a Python list."""

    def __init__(self, seq: list[int]) -> None:
        self.seq = list(seq)

    def rank(self, c: int, i: int) -> int:
        return sum(1 for v in self.seq[:i] if v == c)

    def select(self, c: int, j: int) -> int:
        return [p for p, v in enumerate(self.seq) if v == c][j - 1]

    def range_next_value(self, lo: int, hi: int, c: int) -> int | None:
        window = [v for v in self.seq[lo : hi + 1] if v >= c]
        return min(window) if window else None

    def distinct_values(self, lo: int, hi: int) -> list[int]:
        return sorted(set(self.seq[lo : hi + 1]))

    def range_count(self, lo: int, hi: int, a: int, b: int) -> int:
        return sum(1 for v in self.seq[lo : hi + 1] if a <= v <= b)

    def quantile(self, lo: int, hi: int, j: int) -> int:
        return sorted(self.seq[lo : hi + 1])[j - 1]


bits_lists = st.lists(st.integers(0, 1), max_size=200)

# Sequences paired with an alphabet size at least max+1 (sigma=1 reachable
# via the all-zeros / empty cases).
seq_and_sigma = st.lists(st.integers(0, 30), max_size=150).flatmap(
    lambda seq: st.integers(
        (max(seq) + 1) if seq else 1, (max(seq) + 4) if seq else 4
    ).map(lambda sigma: (seq, sigma))
)


# ----------------------------------------------------------------------
# BitVector battery
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(bits_lists)
@example([])
@example([0] * 64)
@example([1] * 64)
@example([0] * 130)
@example([1] * 130)
@example([1, 0] * 50)
@example([0] * 63 + [1])
@example([1] + [0] * 64 + [1])
def test_bitvector_rank_select_match_reference(bits):
    bv = BitVector(bits)
    ref = RefBits(bits)
    n = len(bits)
    assert len(bv) == n
    assert bv.n_ones == sum(bits)
    assert bv.n_zeros == n - sum(bits)
    for i in range(n + 1):
        assert bv.rank1(i) == ref.rank1(i)
        assert bv.rank0(i) == ref.rank0(i)
    for i in range(n):
        assert bv.access(i) == bits[i]
    for j in range(1, bv.n_ones + 1):
        pos = bv.select1(j)
        assert pos == ref.select1(j)
        # Inverse round-trips: rank1(select1(j)) == j - 1 and the bit is set.
        assert bv.rank1(pos) == j - 1
        assert bv.rank1(pos + 1) == j
        assert bv.access(pos) == 1
    for j in range(1, bv.n_zeros + 1):
        pos = bv.select0(j)
        assert pos == ref.select0(j)
        assert bv.rank0(pos + 1) == j
        assert bv.access(pos) == 0


@settings(max_examples=60, deadline=None)
@given(bits_lists, st.integers(-2, 210))
@example([0] * 70 + [1], 70)
@example([1] + [0] * 69, 1)
def test_bitvector_next_one_matches_reference(bits, start):
    bv = BitVector(bits)
    assert bv.next_one(start) == RefBits(bits).next_one(start)


@settings(max_examples=50, deadline=None)
@given(bits_lists)
@example([])
@example([1] * 65)
def test_bitvector_iteration_and_to_array(bits):
    bv = BitVector(bits)
    arr = bv.to_array()
    assert arr.dtype == np.uint8
    assert arr.tolist() == list(bits)
    assert list(bv) == arr.tolist()


# ----------------------------------------------------------------------
# WaveletTree battery
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(seq_and_sigma)
@example(([], 1))
@example(([0] * 80, 1))
@example(([0] * 65, 3))
@example(([7] * 64, 8))
@example((list(range(16)) * 5, 16))
def test_wavelet_access_rank_select_match_reference(seq_sigma):
    seq, sigma = seq_sigma
    wt = WaveletTree(seq, sigma)
    ref = RefSeq(seq)
    n = len(seq)
    assert len(wt) == n
    assert wt.to_array().tolist() == seq
    for i in range(n):
        assert wt.access(i) == seq[i]
    for c in range(sigma):
        assert wt.total_count(c) == seq.count(c)
        for i in range(0, n + 1, max(1, n // 7)):
            assert wt.rank(c, i) == ref.rank(c, i)
        for j in range(1, seq.count(c) + 1):
            pos = wt.select(c, j)
            assert pos == ref.select(c, j)
            # Inverse round-trip through rank.
            assert wt.rank(c, pos) == j - 1
            assert wt.rank(c, pos + 1) == j


@settings(max_examples=80, deadline=None)
@given(seq_and_sigma, st.data())
def test_wavelet_range_next_value_matches_reference(seq_sigma, data):
    seq, sigma = seq_sigma
    wt = WaveletTree(seq, sigma)
    ref = RefSeq(seq)
    n = len(seq)
    if not n:
        assert wt.range_next_value(0, -1, 0) is None
        return
    lo = data.draw(st.integers(0, n - 1))
    hi = data.draw(st.integers(lo, n - 1))
    c = data.draw(st.integers(-2, sigma + 2))
    assert wt.range_next_value(lo, hi, c) == ref.range_next_value(lo, hi, c)


def test_wavelet_range_next_value_exhaustive_small_cases():
    """Every (lo, hi, c) of a few fixed sequences, incl. n % 64 != 0."""
    cases = [
        ([0, 3, 1, 3, 2, 0, 3], 4),
        ([5] * 70, 6),
        (list(range(10)) * 13, 10),  # n = 130, not a multiple of 64
    ]
    for seq, sigma in cases:
        wt = WaveletTree(seq, sigma)
        ref = RefSeq(seq)
        n = len(seq)
        for lo in range(0, n, 13):
            for hi in range(lo, n, 17):
                for c in range(-1, sigma + 1):
                    assert wt.range_next_value(
                        lo, hi, c
                    ) == ref.range_next_value(lo, hi, c)


@settings(max_examples=80, deadline=None)
@given(seq_and_sigma, st.data())
def test_wavelet_distinct_values_matches_reference(seq_sigma, data):
    seq, sigma = seq_sigma
    wt = WaveletTree(seq, sigma)
    ref = RefSeq(seq)
    n = len(seq)
    if not n:
        assert list(wt.distinct_values(0, -1)) == []
        assert wt.count_distinct(0, -1) == 0
        return
    lo = data.draw(st.integers(0, n - 1))
    hi = data.draw(st.integers(lo, n - 1))
    expected = ref.distinct_values(lo, hi)
    # distinct_values must yield increasing order, matching the set.
    assert list(wt.distinct_values(lo, hi)) == expected
    assert wt.count_distinct(lo, hi) == len(expected)
    if expected:
        cap = max(1, len(expected) - 1)
        assert wt.count_distinct(lo, hi, cap=cap) == min(cap, len(expected))


def test_wavelet_distinct_values_fixed_cases():
    for seq, sigma in [([2, 2, 0, 1, 2, 0], 3), ([0] * 64 + [1], 2)]:
        wt = WaveletTree(seq, sigma)
        ref = RefSeq(seq)
        n = len(seq)
        for lo in range(n):
            for hi in range(lo, n, 7):
                assert list(wt.distinct_values(lo, hi)) == (
                    ref.distinct_values(lo, hi)
                )


@settings(max_examples=60, deadline=None)
@given(seq_and_sigma, st.data())
def test_wavelet_range_count_and_quantile_match_reference(seq_sigma, data):
    seq, sigma = seq_sigma
    wt = WaveletTree(seq, sigma)
    ref = RefSeq(seq)
    n = len(seq)
    if not n:
        assert wt.range_count(0, -1, 0, sigma) == 0
        return
    lo = data.draw(st.integers(0, n - 1))
    hi = data.draw(st.integers(lo, n - 1))
    a = data.draw(st.integers(-1, sigma))
    b = data.draw(st.integers(a, sigma + 1))
    assert wt.range_count(lo, hi, a, b) == ref.range_count(lo, hi, a, b)
    j = data.draw(st.integers(1, hi - lo + 1))
    assert wt.quantile(lo, hi, j) == ref.quantile(lo, hi, j)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 0), min_size=1, max_size=130))
def test_wavelet_sigma_one_alphabet(seq):
    """sigma = 1: every operation degenerates but must stay consistent."""
    wt = WaveletTree(seq, 1)
    n = len(seq)
    assert wt.alphabet_size == 1
    assert wt.total_count(0) == n
    assert wt.rank(0, n) == n
    assert wt.select(0, n) == n - 1
    assert wt.range_next_value(0, n - 1, 0) == 0
    assert wt.range_next_value(0, n - 1, 1) is None
    assert list(wt.distinct_values(0, n - 1)) == [0]
