"""Merged parallel traces are pool-size invariant and equal serial.

The observability acceptance bar of the sharded executor: evaluating a
query under ``parallel-knn`` with a trace must produce — after
:func:`repro.obs.merge.merge_shard_traces` folds the worker documents
into the parent recorder — the *same logical op counts* as the serial
engine's trace, for every pool size. Wall-clock fields (``elapsed``,
``phases``) and execution metadata (``meta``) are the only legitimate
differences; everything else in the schema-validated document is
compared key for key, on the golden Figure-2 workload.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import _build
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.obs import QueryTrace, validate_trace
from tests.test_golden_opcounts import CONFIG

WORKER_COUNTS = (1, 2, 4)

#: Document keys that legitimately differ between serial and sharded
#: runs: wall times, the phase breakdown, and execution metadata. The
#: engine label differs by construction (ring-knn vs parallel-knn).
_EXCLUDED = frozenset({"elapsed", "phases", "meta", "engine"})


@pytest.fixture(scope="module")
def figure2_workload():
    db, workload = _build(CONFIG)
    queries = [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]
    return db, queries


def _comparable(trace: QueryTrace) -> dict:
    doc = trace.to_dict()
    validate_trace(doc)
    return {key: doc[key] for key in doc if key not in _EXCLUDED}


@pytest.mark.parametrize("base_cls", [RingKnnEngine, RingKnnSEngine])
def test_merged_trace_equals_serial_on_figure2(figure2_workload, base_cls):
    db, queries = figure2_workload
    serial = base_cls(db)
    for query in queries:
        serial_trace = QueryTrace()
        expected = serial.evaluate(query, trace=serial_trace)
        expected_doc = _comparable(serial_trace)
        for workers in WORKER_COUNTS:
            parallel = ParallelRingKnnEngine(
                db, workers=workers, base=base_cls.name
            )
            trace = QueryTrace()
            got = parallel.evaluate(query, trace=trace)
            assert got.solutions == expected.solutions, (workers, query)
            assert _comparable(trace) == expected_doc, (workers, query)


def test_merged_trace_carries_shard_metadata(figure2_workload):
    db, queries = figure2_workload
    parallel = ParallelRingKnnEngine(db, workers=2)
    trace = QueryTrace()
    parallel.evaluate(queries[0], trace=trace)
    assert trace.engine == "parallel-knn"
    meta = trace.meta["parallel"]
    assert meta["workers"] == 2
    assert meta["mode"] in ("fork", "spawn")
    shards = meta["shards"]
    assert shards, "sharded run must report per-shard timings"
    assert sum(s["candidates"] for s in shards) == meta["candidates"]
    for shard in shards:
        assert shard["elapsed_s"] >= 0.0
    # Per-shard evaluate phases are folded in under a shard: prefix.
    assert any(name.startswith("shard:") for name in trace.phases)
