"""Tests for the Sec. 7 direction-free-similarity rewrites."""

import pytest

from repro.bounds.constraint_graph import ConstraintGraph
from repro.engines.ring_knn import RingKnnEngine
from repro.query.model import SimClause, TriplePattern, Var
from repro.query.parser import parse_query
from repro.query.rewrite import UndirectedSim, orient_clauses, symmetric_to_directed
from repro.utils.errors import QueryError

X, Y, Z = Var("x"), Var("y"), Var("z")


class TestOrientClauses:
    def test_orientation_is_acyclic(self):
        triples = [
            TriplePattern(X, 20, Y),
            TriplePattern(Y, 20, Z),
        ]
        pairs = [
            UndirectedSim(X, 3, Y),
            UndirectedSim(Y, 3, Z),
            UndirectedSim(Z, 3, X),  # would close a triangle if misdirected
        ]
        query = orient_clauses(triples, pairs)
        assert ConstraintGraph(query).is_acyclic()

    def test_respects_custom_order(self):
        triples = [TriplePattern(X, 20, Y)]
        query = orient_clauses(
            triples, [UndirectedSim(X, 3, Y)], order=[Y, X]
        )
        assert query.clauses == (SimClause(Y, 3, X),)

    def test_constant_endpoint_goes_first(self):
        triples = [TriplePattern(X, 20, Y)]
        query = orient_clauses(triples, [UndirectedSim(X, 3, 7)])
        assert query.clauses == (SimClause(7, 3, X),)

    def test_relation_preserved(self):
        triples = [TriplePattern(X, 20, Y)]
        query = orient_clauses(
            triples, [UndirectedSim(X, 3, Y, relation="geo")]
        )
        assert query.clauses[0].relation == "geo"

    def test_same_endpoints_rejected(self):
        with pytest.raises(QueryError):
            UndirectedSim(X, 3, X)


class TestSymmetricToDirected:
    def test_drops_one_direction_per_cycle(self):
        query = parse_query("(?x, 20, ?y) . sim(?x, ?y, 4)")
        rewritten = symmetric_to_directed(query)
        assert len(rewritten.clauses) == 1
        assert ConstraintGraph(rewritten).is_acyclic()

    def test_keeps_plain_clauses(self):
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 4) . sim(?y, ?w, 2)")
        rewritten = symmetric_to_directed(query)
        # One directed clause survives the sym pair; the plain one stays.
        assert len(rewritten.clauses) == 2
        assert SimClause(X, 4, Y) in rewritten.clauses

    def test_answers_are_superset_of_symmetric(self, small_db):
        symmetric = parse_query("(?x, 20, ?y) . sim(?x, ?y, 4)")
        directed = symmetric_to_directed(symmetric)
        engine = RingKnnEngine(small_db)
        exact = set(engine.evaluate(symmetric).sorted_solutions())
        approx = set(engine.evaluate(directed).sorted_solutions())
        assert exact <= approx

    def test_answer_quality_overlap(self, bench_db, bench):
        """Sec. 7: the directed rewrite trades a bounded amount of
        answer fidelity for acyclicity; on the benchmark the overlap
        should be substantial (the kept direction implies similarity)."""
        from repro.datasets.workload import WorkloadConfig, generate_workload

        workload = generate_workload(
            bench, WorkloadConfig(k=4, n_q1=3, seed=8)
        )
        engine = RingKnnEngine(bench_db)
        for query in workload["Q1b"]:
            exact = set(engine.evaluate(query, timeout=30).sorted_solutions())
            approx = set(
                engine.evaluate(
                    symmetric_to_directed(query), timeout=30
                ).sorted_solutions()
            )
            assert exact <= approx
            if approx:
                # The superset cannot be arbitrarily inflated: it is
                # bounded by dropping one of two k-NN conditions.
                assert len(exact) / len(approx) >= 0.1

    def test_untouched_without_symmetric_pairs(self, small_db):
        query = parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        assert symmetric_to_directed(query) == query
