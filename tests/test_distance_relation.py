"""Tests for distance-clause evaluation (Sec. 3.3 extension), end to end."""

import numpy as np
import pytest

from repro.engines.baseline import BaselineEngine
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.graph.naive import evaluate_naive
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.distance_index import DistanceRangeIndex
from repro.query.parser import parse_query
from repro.utils.errors import QueryError


@pytest.fixture(scope="module")
def dist_db():
    rng = np.random.default_rng(61)
    n = 15
    triples = [
        (
            int(rng.integers(0, n)),
            int(30 + rng.integers(0, 2)),
            int(rng.integers(0, n)),
        )
        for _ in range(70)
    ]
    graph = GraphData(triples)
    points = rng.uniform(size=(n, 2))
    knn = build_knn_graph_bruteforce(points, K=4)
    index = DistanceRangeIndex(points, d_max=0.8)
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    distances = {
        (i, j): float(dist[i, j]) for i in range(n) for j in range(n) if i != j
    }
    return GraphDatabase(graph, knn, index), graph, knn, distances


def canonical(solutions):
    return sorted(
        tuple(sorted((v.name, c) for v, c in s.items())) for s in solutions
    )


DIST_QUERIES = [
    "(?x, 30, ?y) . dist(?x, ?y, 0.4)",
    "(?x, 30, ?y) . (?y, 31, ?z) . dist(?x, ?z, 0.5)",
    "(?x, 30, ?y) . dist(?y, ?w, 0.3)",
    "(?x, 30, ?y) . dist(?x, ?y, 0.4) . knn(?x, ?y, 4)",
]


@pytest.mark.parametrize("text", DIST_QUERIES)
def test_engines_match_naive_with_distance(dist_db, text):
    db, graph, knn, distances = dist_db
    query = parse_query(text)
    expected = canonical(evaluate_naive(query, graph, knn, distances))
    for engine_cls in (RingKnnEngine, RingKnnSEngine, BaselineEngine):
        got = engine_cls(db).evaluate(query).sorted_solutions()
        assert got == expected, engine_cls.__name__


def test_distance_without_index_rejected(dist_db):
    _db, graph, knn, _distances = dist_db
    bare = GraphDatabase(graph, knn)
    query = parse_query("(?x, 30, ?y) . dist(?x, ?y, 0.4)")
    with pytest.raises(QueryError):
        RingKnnEngine(bare).evaluate(query)


def test_distance_beyond_dmax_rejected(dist_db):
    db, _graph, _knn, _distances = dist_db
    query = parse_query("(?x, 30, ?y) . dist(?x, ?y, 0.9)")
    with pytest.raises(QueryError):
        RingKnnEngine(db).evaluate(query)


def test_distance_predicate_is_symmetric(dist_db):
    db, _graph, _knn, _distances = dist_db
    a = RingKnnEngine(db).evaluate(parse_query("(?x, 30, ?y) . dist(?x, ?y, 0.4)"))
    b = RingKnnEngine(db).evaluate(parse_query("(?x, 30, ?y) . dist(?y, ?x, 0.4)"))
    assert a.sorted_solutions() == b.sorted_solutions()
