"""Property tests: Ring pattern navigation vs the six-permutation oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.sixperm import SixPermIndex
from repro.graph.triples import GraphData
from repro.ring.index import RingIndex
from repro.ring.pattern import RingPatternState
from repro.utils.errors import StructureError


@pytest.fixture(scope="module")
def indexed():
    rng = np.random.default_rng(21)
    triples = rng.integers(0, 15, size=(250, 3))
    graph = GraphData(triples)
    return graph, RingIndex(graph), SixPermIndex(graph)


class TestAgainstOracle:
    def test_counts_match_all_single_bindings(self, indexed):
        graph, ring, oracle = indexed
        for coord in "spo":
            for value in range(graph.domain_size):
                state = RingPatternState(ring, {coord: value})
                assert state.count() == oracle.count({coord: value})

    def test_counts_match_pair_bindings(self, indexed):
        graph, ring, oracle = indexed
        rng = np.random.default_rng(5)
        coords = ["sp", "po", "os", "so", "ps", "op"]
        for pair in coords:
            for _ in range(30):
                v1 = int(rng.integers(0, graph.domain_size))
                v2 = int(rng.integers(0, graph.domain_size))
                state = RingPatternState(ring, {})
                state.bind(pair[0], v1)
                state.bind(pair[1], v2)
                assert state.count() == oracle.count(
                    {pair[0]: v1, pair[1]: v2}
                ), (pair, v1, v2)

    def test_leaps_match(self, indexed):
        graph, ring, oracle = indexed
        rng = np.random.default_rng(9)
        for _ in range(300):
            n_bound = int(rng.integers(0, 3))
            coords = list("spo")
            rng.shuffle(coords)
            bound = {
                c: int(rng.integers(0, graph.domain_size))
                for c in coords[:n_bound]
            }
            state = RingPatternState(ring, dict(bound))
            free = [c for c in "spo" if c not in bound]
            target = free[int(rng.integers(0, len(free)))]
            lower = int(rng.integers(0, graph.domain_size + 2))
            got = state.leap(target, lower)
            expected = oracle.leap(bound, target, lower)
            assert got == expected, (bound, target, lower)


class TestStateMachine:
    def test_bind_unbind_restores_state(self, indexed):
        _graph, ring, _oracle = indexed
        state = RingPatternState(ring, {})
        before = state.count()
        state.bind("s", 3)
        state.bind("o", 7)
        state.unbind()
        state.unbind()
        assert state.count() == before
        assert state.depth() == 0

    def test_cannot_bind_twice(self, indexed):
        _graph, ring, _oracle = indexed
        state = RingPatternState(ring, {"s": 1})
        with pytest.raises(StructureError):
            state.bind("s", 2)

    def test_cannot_unbind_root(self, indexed):
        _graph, ring, _oracle = indexed
        state = RingPatternState(ring, {})
        with pytest.raises(StructureError):
            state.unbind()

    def test_leap_on_bound_coordinate_rejected(self, indexed):
        _graph, ring, _oracle = indexed
        state = RingPatternState(ring, {"s": 1})
        with pytest.raises(StructureError):
            state.leap("s", 0)

    def test_probe_leaves_state_unchanged(self, indexed):
        _graph, ring, _oracle = indexed
        state = RingPatternState(ring, {"p": 4})
        depth = state.depth()
        count = state.count()
        state.probe({"s": 2, "o": 2})
        assert state.depth() == depth
        assert state.count() == count

    def test_probe_matches_contains(self, indexed):
        graph, ring, _oracle = indexed
        state = RingPatternState(ring, {})
        for s, p, o in list(graph)[:20]:
            assert state.probe({"s": s, "p": p, "o": o})
        assert not state.probe({"s": 0, "p": 0, "o": 0}) or (0, 0, 0) in graph


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=60,
    ),
    st.data(),
)
def test_random_graphs_match_oracle(triples, data):
    """Full navigation agreement on random graphs (hypothesis-driven)."""
    graph = GraphData(triples)
    ring = RingIndex(graph)
    oracle = SixPermIndex(graph)
    coords = list("spo")
    n_bound = data.draw(st.integers(0, 2))
    chosen = data.draw(st.permutations(coords))[:n_bound]
    bound = {c: data.draw(st.integers(0, 8)) for c in chosen}
    state = RingPatternState(ring, dict(bound))
    assert state.count() == oracle.count(bound)
    free = [c for c in "spo" if c not in bound]
    target = data.draw(st.sampled_from(free))
    lower = data.draw(st.integers(0, 9))
    assert state.leap(target, lower) == oracle.leap(bound, target, lower)
