"""Empirical checks of the worst-case-optimality claims (Thms. 1-3).

The theorems bound the *time* by ``O(Q* |Q| log N)``; in our engine the
data-dependent part of the time is the number of elimination attempts.
These tests measure attempts on random instances and check they stay
within ``Q* * |Q| * (log2 N + 1) * C`` for a small constant ``C`` under
the orderings the theory covers — a sanity net catching order-of-
magnitude regressions in the search strategy.
"""

import math

import numpy as np
import pytest

from repro.bounds.constraint_graph import ConstraintGraph
from repro.bounds.linear_program import solve_size_bound
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine
from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.query.parser import parse_query

SLACK = 4.0  # constant-factor headroom over the asymptotic bound


@pytest.fixture(scope="module", params=[0, 1, 2])
def random_db(request):
    rng = np.random.default_rng(request.param)
    n = 25
    triples = [
        (
            int(rng.integers(0, n)),
            int(60 + rng.integers(0, 3)),
            int(rng.integers(0, n)),
        )
        for _ in range(200)
    ]
    graph = GraphData(triples)
    points = rng.normal(size=(n, 3))
    knn = build_knn_graph_bruteforce(points, K=6)
    return GraphDatabase(graph, knn)


ACYCLIC_QUERIES = [
    "(?x, 60, ?y) . (?y, 61, ?z) . knn(?x, ?z, 4)",     # Example 4
    "(?x, 60, ?y) . knn(?x, ?w, 3) . knn(?w, ?v, 2)",   # chain
    "(?x, 60, ?y) . (?y, 60, ?z)",                      # plain BGP (Thm. 1)
]

SINGLE_2CYCLIC_QUERIES = [
    "(?x, 60, ?y) . sim(?x, ?y, 4)",
    "(?a, 60, ?x) . (?b, 61, ?y) . sim(?x, ?y, 3)",
]


def bound_on_attempts(db, query):
    bound = solve_size_bound(
        query, db.graph.num_edges, domain_size=max(db.graph.domain_size, 2)
    )
    size = len(query.atoms)
    logn = math.log2(max(db.graph.num_edges, 2)) + 1
    return SLACK * bound.q_star * size * logn


@pytest.mark.parametrize("text", ACYCLIC_QUERIES)
def test_acyclic_work_within_bound(random_db, text):
    query = parse_query(text)
    assert ConstraintGraph(query).is_acyclic()
    result = RingKnnEngine(random_db).evaluate(query, timeout=60)
    assert result.stats.attempts <= bound_on_attempts(random_db, query), (
        result.stats.attempts
    )


@pytest.mark.parametrize("text", SINGLE_2CYCLIC_QUERIES)
def test_single_2cyclic_work_within_bound(random_db, text):
    query = parse_query(text)
    graph = ConstraintGraph(query)
    assert not graph.is_acyclic() and graph.is_single_2_cyclic()
    result = RingKnnEngine(random_db).evaluate(query, timeout=60)
    assert result.stats.attempts <= bound_on_attempts(random_db, query)


def test_output_never_exceeds_q_star(random_db):
    for text in (*ACYCLIC_QUERIES, *SINGLE_2CYCLIC_QUERIES):
        query = parse_query(text)
        bound = solve_size_bound(
            query,
            random_db.graph.num_edges,
            domain_size=max(random_db.graph.domain_size, 2),
        )
        result = RingKnnEngine(random_db).evaluate(query, timeout=60)
        assert len(result.solutions) <= bound.q_star + 1e-6, text
