"""Unit tests for the per-tuple-cost harness (E13)."""

from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.experiments.report import format_table
from repro.experiments.tuple_cost import (
    TUPLE_COST_HEADERS,
    TupleCostReport,
    TupleCostRow,
    run_tuple_cost,
)


class TestTupleCostModel:
    def test_ms_per_tuple(self):
        row = TupleCostRow("e", "Q1", total_seconds=1.0, solutions=500)
        assert row.ms_per_tuple == 2.0

    def test_zero_solutions_guarded(self):
        row = TupleCostRow("e", "Q1", total_seconds=1.0, solutions=0)
        assert row.ms_per_tuple == 1000.0

    def test_ratio(self):
        report = TupleCostReport(
            [
                TupleCostRow("e", "Q1", 1.0, 1000),
                TupleCostRow("e", "Q1b", 1.0, 250),
            ]
        )
        assert report.ratio("e") == 4.0

    def test_table_rows_include_ratios(self):
        report = TupleCostReport(
            [
                TupleCostRow("e", "Q1", 1.0, 100),
                TupleCostRow("e", "Q1b", 2.0, 100),
            ]
        )
        rows = report.table_rows()
        assert rows[-1][1] == "sym/asym ratio"
        text = format_table(TUPLE_COST_HEADERS, rows)
        assert "ms/tuple" in text


class TestTupleCostHarness:
    def test_end_to_end(self, bench, bench_db):
        workload = generate_workload(
            bench, WorkloadConfig(k=4, n_q1=2, seed=17)
        )
        engines = [RingKnnEngine(bench_db), RingKnnSEngine(bench_db)]
        report = run_tuple_cost(
            bench_db, workload["Q1"], workload["Q1b"], engines, timeout=30
        )
        assert len(report.rows) == 4
        for engine in ("ring-knn", "ring-knn-s"):
            assert report.ratio(engine) > 0
