"""Tests for GraphDatabase plumbing, QueryResult, and EvaluationStats."""

import pytest

from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.ltj.stats import EvaluationStats
from repro.query.model import Var
from repro.query.parser import parse_query
from repro.utils.errors import QueryError


class TestGraphDatabase:
    def test_adjacency_is_lazy_and_cached(self, small_graph, small_knn):
        db = GraphDatabase(small_graph, small_knn)
        assert db._adjacency == {}
        first = db.adjacency
        assert db.adjacency is first

    def test_adjacency_without_knn_raises(self, small_graph):
        db = GraphDatabase(small_graph)
        with pytest.raises(QueryError):
            _ = db.adjacency

    def test_validate_rejects_k_beyond_K(self, small_db):
        with pytest.raises(QueryError, match="construction-time"):
            small_db.validate_query(
                parse_query("(?x, 20, ?y) . knn(?x, ?y, 99)")
            )

    def test_validate_rejects_missing_knn(self, small_graph):
        db = GraphDatabase(small_graph)
        with pytest.raises(QueryError, match="no such K-NN"):
            db.validate_query(parse_query("(?x, 20, ?y) . knn(?x, ?y, 2)"))

    def test_validate_rejects_missing_distance_index(self, small_db):
        with pytest.raises(QueryError, match="distance-range"):
            small_db.validate_query(
                parse_query("(?x, 20, ?y) . dist(?x, ?y, 0.5)")
            )

    def test_validate_accepts_plain_bgp(self, small_graph):
        GraphDatabase(small_graph).validate_query(parse_query("(?x, 20, ?y)"))

    def test_space_accounting_monotonic(self, small_db):
        assert small_db.baseline_size_in_bytes() > small_db.ring.size_in_bytes()
        assert small_db.ring_size_in_bytes() > small_db.ring.size_in_bytes()
        assert small_db.raw_size_in_bytes() > 0

    def test_database_without_knn_space(self, small_graph):
        db = GraphDatabase(small_graph)
        assert db.ring_size_in_bytes() == db.ring.size_in_bytes()
        assert db.baseline_size_in_bytes() == db.ring.size_in_bytes()
        assert db.raw_size_in_bytes() == small_graph.size_in_bytes()


class TestQueryResult:
    def test_sorted_solutions_canonical(self):
        stats = EvaluationStats()
        result = QueryResult(
            "test",
            [{Var("b"): 2, Var("a"): 1}, {Var("a"): 0, Var("b"): 9}],
            stats,
        )
        assert result.sorted_solutions() == [
            (("a", 0), ("b", 9)),
            (("a", 1), ("b", 2)),
        ]

    def test_elapsed_and_timeout_proxy_stats(self):
        stats = EvaluationStats(elapsed=1.25, timed_out=True)
        result = QueryResult("test", [], stats)
        assert result.elapsed == 1.25
        assert result.timed_out


class TestEvaluationStats:
    def test_first_sim_bind_fraction(self):
        stats = EvaluationStats()
        stats.sim_variables = frozenset({Var("s")})
        stats.first_descent_order = [Var("a"), Var("b"), Var("s"), Var("c")]
        assert stats.first_sim_bind_fraction == pytest.approx(2 / 4)

    def test_fraction_none_without_sim_vars(self):
        stats = EvaluationStats()
        stats.first_descent_order = [Var("a")]
        assert stats.first_sim_bind_fraction is None

    def test_fraction_none_when_descent_misses_sim(self):
        stats = EvaluationStats()
        stats.sim_variables = frozenset({Var("s")})
        stats.first_descent_order = [Var("a")]
        assert stats.first_sim_bind_fraction is None

    def test_sim_var_first_is_zero(self):
        stats = EvaluationStats()
        stats.sim_variables = frozenset({Var("s")})
        stats.first_descent_order = [Var("s"), Var("a")]
        assert stats.first_sim_bind_fraction == 0.0
