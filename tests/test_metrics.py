"""Tests for the distance-function library."""

import numpy as np
import pytest

from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.metrics import (
    METRICS,
    chebyshev,
    cosine_distance,
    euclidean,
    hamming,
    manhattan,
    metric_by_name,
    squared_euclidean,
)
from repro.utils.errors import ValidationError

A = np.array([1.0, 2.0, 2.0])
B = np.array([1.0, 0.0, 4.0])


class TestMetricValues:
    def test_euclidean(self):
        assert euclidean(A, B) == pytest.approx(np.sqrt(8))
        assert squared_euclidean(A, B) == pytest.approx(8.0)

    def test_manhattan(self):
        assert manhattan(A, B) == pytest.approx(4.0)

    def test_chebyshev(self):
        assert chebyshev(A, B) == pytest.approx(2.0)

    def test_cosine(self):
        assert cosine_distance(A, A) == pytest.approx(0.0)
        assert cosine_distance(A, -A) == pytest.approx(2.0)
        assert cosine_distance(np.array([1.0, 0]), np.array([0, 1.0])) == (
            pytest.approx(1.0)
        )

    def test_cosine_zero_vector_rejected(self):
        with pytest.raises(ValidationError):
            cosine_distance(np.zeros(3), A)

    def test_hamming(self):
        assert hamming(np.array([1, 0, 1, 1]), np.array([1, 1, 1, 0])) == 2.0


class TestMetricProperties:
    @pytest.mark.parametrize(
        "name", ["euclidean", "squared_euclidean", "manhattan", "chebyshev"]
    )
    def test_symmetry_and_identity(self, name):
        metric = METRICS[name]
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.normal(size=(2, 5))
            assert metric(a, b) == pytest.approx(metric(b, a))
            assert metric(a, a) == pytest.approx(0.0)
            assert metric(a, b) >= 0

    @pytest.mark.parametrize("name", ["euclidean", "manhattan", "chebyshev"])
    def test_triangle_inequality(self, name):
        metric = METRICS[name]
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b, c = rng.normal(size=(3, 4))
            assert metric(a, c) <= metric(a, b) + metric(b, c) + 1e-9


class TestLookup:
    def test_by_name(self):
        assert metric_by_name("manhattan") is manhattan

    def test_unknown(self):
        with pytest.raises(ValidationError):
            metric_by_name("minkowski-7")


class TestNonMetricKnnGraph:
    def test_cosine_knn_graph_builds(self):
        """Sec. 3.1: the structures accept any k-NN relation, including
        ones from non-metric similarities like cosine distance."""
        rng = np.random.default_rng(5)
        points = rng.normal(size=(25, 6)) + 0.1
        graph = build_knn_graph_bruteforce(points, K=4, metric=cosine_distance)
        from repro.knn.succinct import KnnRing

        ring = KnnRing(graph)
        for u in (0, 10, 24):
            assert ring.neighbors_of(u) == graph.neighbors_of(u).tolist()
