"""End-to-end battery for the ``repro serve`` query server.

One module-scoped server runs against a **store-backed** database (the
golden Figure-2 bundle saved with ``repro.store.save`` and reopened via
``GraphDatabase.from_index``) — the deployment shape ``repro serve
--from-index`` uses. Before the server boots, the same queries are
evaluated with the serial engines on the built database; the battery
then asserts the HTTP responses are **byte-identical** to those serial
references:

* plain ``/query`` (auto engine, batched through the scheduler) returns
  the serial solutions in the serial enumeration order;
* traced, engine-pinned ``/query`` returns the exact serial trace
  document (op counts included) minus only the wall-time/metadata keys
  the parallel suite also excludes;
* concurrent clients each get *their own* query's answer back.

The wire protocol is pinned separately: Hypothesis round-trips request
documents through ``parse_*`` / ``to_dict`` against the schemas, so
the JSON surface cannot drift from its documented contract.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import _build
from repro.engines.auto import AutoEngine
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine
from repro.obs import QueryTrace
from repro.parallel.executor import shutdown_pools
from repro.query.model import (
    DEFAULT_RELATION,
    ExtendedBGP,
    is_var,
)
from repro.query.parser import parse_query
from repro.serve import protocol
from repro.serve.app import ReproServer, ServeConfig, ServerThread
from repro.store import save
from tests.test_golden_opcounts import CONFIG
from tests.test_parallel_shm import _comparable

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _term_text(term) -> str:
    return f"?{term.name}" if is_var(term) else str(int(term))


def _query_text(query: ExtendedBGP) -> str:
    """Serialize a workload query back into the textual grammar.

    The fixture asserts the round trip (``parse_query(_query_text(q)) ==
    q``) so the server evaluates *exactly* the query the serial
    reference ran.
    """
    atoms = [
        f"({_term_text(t.s)}, {_term_text(t.p)}, {_term_text(t.o)})"
        for t in query.triples
    ]
    for clause in query.clauses:
        tag = (
            ""
            if clause.relation == DEFAULT_RELATION
            else f":{clause.relation}"
        )
        atoms.append(
            f"knn{tag}({_term_text(clause.x)}, {_term_text(clause.y)}, "
            f"{clause.k})"
        )
    for dist in query.dist_clauses:
        atoms.append(
            f"dist({_term_text(dist.x)}, {_term_text(dist.y)}, {dist.d})"
        )
    return " . ".join(atoms)


def _request(host: str, port: int, method: str, path: str, payload=None):
    """One HTTP exchange; returns ``(status, headers, decoded body)``."""
    conn = HTTPConnection(host, port, timeout=120)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        decoded = (
            json.loads(raw)
            if content_type.startswith("application/json")
            else raw.decode("utf-8")
        )
        return response.status, dict(response.headers), decoded
    finally:
        conn.close()


def _post(handle, path: str, payload):
    return _request(handle.host, handle.port, "POST", path, payload)


def _get(handle, path: str):
    return _request(handle.host, handle.port, "GET", path)


# ----------------------------------------------------------------------
# the golden fixture: serial references + a store-backed server
# ----------------------------------------------------------------------


class _Golden:
    def __init__(self, handle, cases, store_path):
        self.handle = handle
        self.cases = cases
        """List of ``(family, text, auto_solutions, serial_solutions,
        serial_trace_doc)`` — encoded solutions, comparable trace."""

        self.store_path = store_path


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    db, workload = _build(CONFIG)
    queries = [
        (family, query)
        for family, family_queries in sorted(workload.items())
        for query in family_queries
    ]

    # Serial references on the *built* database, before any server.
    auto_serial = AutoEngine(db)  # workers=1: serial strategy selection
    ring = RingKnnEngine(db)
    cases = []
    for family, query in queries:
        text = _query_text(query)
        assert parse_query(text) == query, (
            f"query text round-trip failed for {family}: {text!r}"
        )
        auto_solutions = protocol.encode_solutions(
            auto_serial.evaluate(query).solutions
        )
        trace = QueryTrace(query=text)
        serial = ring.evaluate(query, trace=trace)
        cases.append(
            (
                family,
                text,
                auto_solutions,
                protocol.encode_solutions(serial.solutions),
                _comparable(trace),
            )
        )

    # The served database is store-backed: save + mmap reopen.
    store_path = str(tmp_path_factory.mktemp("serve") / "figure2.idx")
    save(db, store_path)
    served_db = GraphDatabase.from_index(store_path)

    handle = ServerThread(
        served_db,
        ServeConfig(workers=2, capacity=64, default_timeout=120.0),
    ).start()
    try:
        yield _Golden(handle, cases, store_path)
    finally:
        handle.shutdown()
        shutdown_pools()


# ----------------------------------------------------------------------
# health + metrics surface
# ----------------------------------------------------------------------


class TestOperationalEndpoints:
    def test_healthz_reports_store_backing(self, golden):
        status, _headers, body = _get(golden.handle, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 2
        assert body["engines"] == ["auto", "ring-knn", "ring-knn-s"]
        store = body["store"]
        assert store is not None, "server must report its mmap backing"
        assert store["path"].endswith("figure2.idx")
        assert store["mapped"] is True
        assert store["nbytes"] > 0

    def test_metrics_json_counters_advance(self, golden):
        _, _, before = _get(golden.handle, "/metrics?format=json")
        status, _, body = _post(
            golden.handle, "/query", {"query": golden.cases[0][1]}
        )
        assert status == 200
        _, _, after = _get(golden.handle, "/metrics?format=json")
        assert after["queries"]["ok"] >= before["queries"]["ok"] + 1
        assert after["requests"].get("/query 200", 0) >= 1
        assert after["gauges"]["admission_capacity"] == 64.0
        assert after["engine_stats"]["solutions"] >= len(
            golden.cases[0][2]
        )

    def test_metrics_text_exposition(self, golden):
        status, headers, text = _get(golden.handle, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_queries_total" in text
        assert "repro_uptime_seconds" in text
        # every sample line is `name{labels} value` or `name value`
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, _, value = line.rpartition(" ")
            assert name and float(value) is not None

    def test_unknown_path_404_and_method_405(self, golden):
        status, _, body = _get(golden.handle, "/nope")
        assert status == 404
        protocol.validate_error_response(body)
        status, headers, body = _get(golden.handle, "/query")
        assert status == 405
        assert headers["Allow"] == "POST"
        protocol.validate_error_response(body)


# ----------------------------------------------------------------------
# byte-identical golden workload through the server
# ----------------------------------------------------------------------


class TestGoldenWorkload:
    def test_solutions_byte_identical_to_serial(self, golden):
        """Every Figure-2 query served (batched route) returns the
        serial engine's solutions in the serial enumeration order."""
        for family, text, auto_solutions, _serial, _doc in golden.cases:
            status, _, body = _post(
                golden.handle, "/query", {"query": text}
            )
            assert status == 200, (family, body)
            protocol.validate_query_response(body)
            assert body["route"] == "batched"
            assert body["timed_out"] is False
            assert body["solutions"] == auto_solutions, (
                f"{family}: served solutions diverged from serial "
                f"reference for {text!r}"
            )
            assert body["stats"]["solutions"] == len(auto_solutions)

    def test_traced_opcounts_byte_identical_to_serial(self, golden):
        """Pinned + traced requests reproduce the serial trace document
        exactly — logical op counts included."""
        for family, text, _auto, serial_solutions, serial_doc in golden.cases:
            status, _, body = _post(
                golden.handle,
                "/query",
                {"query": text, "engine": "ring-knn", "trace": True},
            )
            assert status == 200, (family, body)
            protocol.validate_query_response(body)
            assert body["route"] == "direct"
            assert body["engine"] == "ring-knn"
            assert body["solutions"] == serial_solutions
            served_doc = {
                key: value
                for key, value in body["trace"].items()
                if key not in {"elapsed", "phases", "meta", "engine"}
            }
            assert served_doc == serial_doc, (
                f"{family}: served trace diverged for {text!r}"
            )

    def test_concurrent_clients_get_their_own_answers(self, golden):
        """N clients fire distinct queries at once; each response must
        correspond to *that* client's query."""
        cases = golden.cases
        barrier = threading.Barrier(len(cases))

        def client(case):
            family, text, auto_solutions, _serial, _doc = case
            barrier.wait(timeout=60)
            status, _, body = _post(
                golden.handle, "/query", {"query": text}
            )
            return family, status, body, auto_solutions

        with ThreadPoolExecutor(max_workers=len(cases)) as pool:
            outcomes = list(pool.map(client, cases))
        for family, status, body, auto_solutions in outcomes:
            assert status == 200, (family, body)
            assert body["solutions"] == auto_solutions, (
                f"{family}: concurrent response was not this client's "
                "answer"
            )

    def test_limit_is_applied(self, golden):
        family, text, _auto, serial_solutions, _doc = max(
            golden.cases, key=lambda case: len(case[3])
        )
        if len(serial_solutions) < 2:
            pytest.skip("workload produced no multi-solution query")
        # Pin the serial engine: with a limit the answer must be the
        # exact prefix of the serial enumeration order.
        status, _, body = _post(
            golden.handle,
            "/query",
            {"query": text, "limit": 1, "engine": "ring-knn"},
        )
        assert status == 200, (family, body)
        assert len(body["solutions"]) == 1
        assert body["solutions"][0] == serial_solutions[0]

    def test_explain_endpoint_with_analysis(self, golden):
        _family, text, *_rest = golden.cases[0]
        status, _, body = _post(
            golden.handle, "/explain", {"query": text, "analyze": True}
        )
        assert status == 200, body
        protocol.validate_explain_response(body)
        assert body["engine"] == "ring-knn"
        assert "plan" in body["report"]
        assert body["trace"] is not None


# ----------------------------------------------------------------------
# cross-query cache over the wire
# ----------------------------------------------------------------------


class TestServedCache:
    def test_repeat_query_served_from_cache_byte_identical(self, golden):
        family, text, auto_solutions, _serial, _doc = golden.cases[1]
        first_status, _, first = _post(
            golden.handle, "/query", {"query": text}
        )
        status, _, second = _post(golden.handle, "/query", {"query": text})
        assert first_status == 200 and status == 200, (family, second)
        protocol.validate_query_response(second)
        assert second["cached"] is True
        assert first["solutions"] == auto_solutions
        assert second["solutions"] == auto_solutions, (
            f"{family}: warm hit diverged from the cold serial answer"
        )
        assert second["stats"] == first["stats"]

    def test_metrics_expose_cache_counters(self, golden):
        _family, text, *_rest = golden.cases[2]
        for _ in range(2):
            status, _, _body = _post(
                golden.handle, "/query", {"query": text}
            )
            assert status == 200
        _, _, document = _get(golden.handle, "/metrics?format=json")
        cache = document["cache"]
        assert cache["hits"] >= 1
        assert cache["fills"] >= 1
        assert cache["entries"] >= 1
        assert 0 < cache["bytes"] <= cache["max_bytes"]
        assert document["queries"]["cached"] >= 1
        _, _, text_body = _get(golden.handle, "/metrics")
        assert 'repro_cache_events_total{event="hits"}' in text_body
        assert "repro_cache_bytes" in text_body
        assert "repro_queries_cached_total" in text_body

    def test_healthz_reports_cache_enabled(self, golden):
        _, _, body = _get(golden.handle, "/healthz")
        assert body["cache"] is True


# ----------------------------------------------------------------------
# request validation over the wire
# ----------------------------------------------------------------------


class TestRequestValidation:
    def test_malformed_query_text_is_typed_400(self, golden):
        status, _, body = _post(golden.handle, "/query", {"query": "(?x"})
        assert status == 400
        protocol.validate_error_response(body)
        assert body["error"]["type"] == "QueryError"

    def test_unknown_field_rejected(self, golden):
        status, _, body = _post(
            golden.handle, "/query", {"query": "(?x, 0, ?y)", "turbo": 1}
        )
        assert status == 400
        assert "turbo" in body["error"]["message"]

    def test_unknown_engine_rejected(self, golden):
        status, _, body = _post(
            golden.handle,
            "/query",
            {"query": "(?x, 0, ?y)", "engine": "baseline"},
        )
        assert status == 400
        assert body["error"]["type"] == "ValidationError"

    def test_non_json_body_rejected(self, golden):
        conn = HTTPConnection(golden.handle.host, golden.handle.port,
                              timeout=30)
        try:
            conn.request("POST", "/query", body=b"not json at all")
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert body["error"]["type"] == "ValidationError"

    def test_debug_requires_flag(self, golden):
        """The fixture server runs without --debug-faults: directives
        must be rejected before admission."""
        status, _, body = _post(
            golden.handle,
            "/query",
            {"query": "(?x, 0, ?y)", "debug": "raise"},
        )
        assert status == 400
        assert "--debug-faults" in body["error"]["message"]


# ----------------------------------------------------------------------
# wire-protocol round trips (no server involved)
# ----------------------------------------------------------------------

_QUERY_REQUEST_DOCS = st.fixed_dictionaries(
    {"query": st.text(min_size=1, max_size=80)},
    optional={
        "engine": st.sampled_from(protocol.SERVE_ENGINES),
        "timeout": st.one_of(
            st.none(),
            st.floats(min_value=0, max_value=1e6, allow_nan=False,
                      allow_infinity=False),
        ),
        "limit": st.one_of(st.none(), st.integers(min_value=0,
                                                  max_value=10**6)),
        "trace": st.booleans(),
        "debug": st.one_of(st.none(), st.text(max_size=20)),
    },
)

_EXPLAIN_REQUEST_DOCS = st.fixed_dictionaries(
    {"query": st.text(min_size=1, max_size=80)},
    optional={
        "engine": st.sampled_from(("ring-knn", "ring-knn-s",
                                   "parallel-knn")),
        "analyze": st.booleans(),
        "timeout": st.one_of(
            st.none(),
            st.floats(min_value=0, max_value=1e6, allow_nan=False,
                      allow_infinity=False),
        ),
    },
)


class TestProtocolRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(document=_QUERY_REQUEST_DOCS)
    def test_query_request_round_trip(self, document):
        """bytes → parse → to_dict → parse is a fixed point, and the
        canonical form validates against the request schema."""
        request = protocol.parse_query_request(
            json.dumps(document).encode("utf-8")
        )
        canonical = request.to_dict()
        from repro.obs.schema import validate_document

        validate_document(canonical, protocol.QUERY_REQUEST_SCHEMA, "$")
        again = protocol.parse_query_request(json.dumps(canonical))
        assert again == request
        assert again.to_dict() == canonical
        # defaults are exactly the documented ones
        for field, default in (
            ("engine", "auto"), ("timeout", None), ("limit", None),
            ("trace", False), ("debug", None),
        ):
            if field not in document:
                assert canonical[field] == default

    @settings(max_examples=200, deadline=None)
    @given(document=_EXPLAIN_REQUEST_DOCS)
    def test_explain_request_round_trip(self, document):
        request = protocol.parse_explain_request(
            json.dumps(document).encode("utf-8")
        )
        canonical = request.to_dict()
        from repro.obs.schema import validate_document

        validate_document(canonical, protocol.EXPLAIN_REQUEST_SCHEMA, "$")
        again = protocol.parse_explain_request(json.dumps(canonical))
        assert again == request

    @settings(max_examples=100, deadline=None)
    @given(
        error_type=st.text(min_size=1, max_size=40),
        message=st.text(max_size=200),
        retry_after=st.one_of(st.none(),
                              st.integers(min_value=1, max_value=60)),
    )
    def test_error_response_always_validates(
        self, error_type, message, retry_after
    ):
        extra = {} if retry_after is None else {"retry_after": retry_after}
        body = protocol.error_response(error_type, message, **extra)
        protocol.validate_error_response(body)
        rebuilt = json.loads(json.dumps(body))
        protocol.validate_error_response(rebuilt)
        assert rebuilt["error"]["type"] == error_type

    @settings(max_examples=100, deadline=None)
    @given(junk=st.text(max_size=40))
    def test_parse_never_leaks_untyped_errors(self, junk):
        """Arbitrary bytes either parse or raise the typed error —
        never KeyError/TypeError."""
        from repro.utils.errors import ValidationError

        try:
            protocol.parse_query_request(junk.encode("utf-8"))
        except ValidationError:
            pass


# ----------------------------------------------------------------------
# server lifecycle without the golden fixture
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_double_shutdown_is_idempotent(self, tmp_path):
        db, _workload = _build(CONFIG)
        handle = ServerThread(
            db, ServeConfig(workers=1, capacity=4)
        ).start()
        try:
            status, _, body = _get(handle, "/healthz")
            assert status == 200 and body["status"] == "ok"
        finally:
            handle.shutdown()
        # a second shutdown must be a no-op, not an error
        handle.shutdown()
        shutdown_pools()

    def test_server_object_exposes_bound_port(self, golden):
        server = golden.handle.server
        assert isinstance(server, ReproServer)
        assert server.port == golden.handle.port
        assert server.port != 0
