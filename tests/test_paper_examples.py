"""End-to-end reproduction of the paper's worked Examples 1-3.

Figure 1's travel graph and 3-NN graph, the BGP of Example 1, and the
extended BGP of Example 3 — the engines must produce exactly the
solutions printed in the paper:

* Example 3 with ``y ~_2 z``: (x, y, z) in {(2, 4, 6), (3, 4, 6)};
* with ``y ~_3 z`` additionally (2, 4, 5) and (3, 4, 5).
"""

import numpy as np
import pytest

from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.database import GraphDatabase
from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.knn.graph import KnnGraph
from repro.query.model import Var
from repro.query.parser import parse_query

C = 10  # the (c)heap predicate of Figure 1


@pytest.fixture(scope="module")
def figure1_knn() -> KnnGraph:
    """The 3-NN graph of Figure 1, consistent with every published
    fragment: S_1 = 324, S_2 = 134, S'_4 = 675123 (B_4 = 100101000),
    S'_1 = 23, and Example 3's requirements on node 4's own list
    (6 in 2-NN(4), 5 only in 3-NN(4))."""
    members = np.arange(1, 8)
    neighbors = np.array(
        [
            [3, 2, 4],  # S_1 = 324
            [1, 3, 4],  # S_2 = 134
            [2, 1, 4],  # j_3 = 3 (4 at rank 3)
            [6, 7, 5],  # Example 3: 6 in 2-NN(4); 5 only at rank 3
            [6, 4, 7],  # j_5 = 2
            [4, 7, 5],  # j_6 = 1
            [4, 6, 5],  # j_7 = 1
        ]
    )
    return KnnGraph(members, neighbors)


@pytest.fixture(scope="module")
def figure1_db(paper_figure1_graph, figure1_knn) -> GraphDatabase:
    return GraphDatabase(paper_figure1_graph, figure1_knn)


ALL_ENGINES = [
    RingKnnEngine,
    RingKnnSEngine,
    BaselineEngine,
    MaterializeEngine,
    ClassicSixPermEngine,
]


def solutions_xyz(result):
    return sorted(
        (s[Var("x")], s[Var("y")], s[Var("z")]) for s in result.solutions
    )


class TestExample1:
    """Q = {(x, c, y), (y, c, z)}: places reachable in two cheap hops."""

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_two_hop_solutions(self, figure1_db, engine_cls):
        query = parse_query(f"(?x, {C}, ?y) . (?y, {C}, ?z)")
        result = engine_cls(figure1_db).evaluate(query)
        assert solutions_xyz(result) == [
            (2, 4, 5),
            (2, 4, 6),
            (3, 4, 5),
            (3, 4, 6),
        ]


class TestExample3:
    """Q = {(x, c, y), (y, c, z), y ~_2 z}: nearby consecutive stops."""

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_k2_solutions_match_paper(self, figure1_db, engine_cls):
        query = parse_query(f"(?x, {C}, ?y) . (?y, {C}, ?z) . sim(?y, ?z, 2)")
        result = engine_cls(figure1_db).evaluate(query)
        assert solutions_xyz(result) == [(2, 4, 6), (3, 4, 6)]

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_k3_adds_the_two_extra_solutions(self, figure1_db, engine_cls):
        query = parse_query(f"(?x, {C}, ?y) . (?y, {C}, ?z) . sim(?y, ?z, 3)")
        result = engine_cls(figure1_db).evaluate(query)
        assert solutions_xyz(result) == [
            (2, 4, 5),
            (2, 4, 6),
            (3, 4, 5),
            (3, 4, 6),
        ]

    def test_ranges_of_example3(self, figure1_db, figure1_knn):
        """The specific ranges the paper walks through for y := 4:
        S_4[1..2] for 4 <|_2 z and S'_4[1..3] for z <|_2 4."""
        ring = figure1_db.knn_ring
        lo, hi = ring.forward_range(4, 2)
        assert hi - lo + 1 == 2
        values = {ring.S.access(i) for i in range(lo, hi + 1)}
        assert values == {6, 7}  # 2-NN(4)
        lo, hi = ring.backward_range(4, 2)
        assert hi - lo + 1 == 3  # S'_4[1..3] per B_4 = 100101000
        values = {ring.Sprime.access(i) for i in range(lo, hi + 1)}
        assert values == {6, 7, 5}


class TestExample2Identities:
    def test_b4_unary_encoding(self, figure1_knn):
        """B_4 = 100101000: groups of sizes 2, 1, 3 at ranks 1, 2, 3."""
        from repro.knn.succinct import KnnRing

        ring = KnnRing(figure1_knn)
        vi = ring.index_of(4)
        starts = [ring._sprime_boundary(vi, t) for t in (1, 2, 3, 4)]
        sizes = [b - a for a, b in zip(starts, starts[1:])]
        assert sizes == [2, 1, 3]
