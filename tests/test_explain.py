"""Tests for query-plan explanation."""

import pytest

from repro.explain import explain
from repro.query.model import Var
from repro.query.parser import parse_query


class TestExplain:
    def test_acyclic_query_is_wco_under_ring_knn(self, small_db):
        report = explain(
            small_db, parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        )
        assert report.constraint_class == "acyclic"
        assert report.wco_guarantee
        assert report.safe
        assert report.q_star is not None and report.q_star > 0

    def test_single_2_cyclic_still_wco(self, small_db):
        report = explain(
            small_db, parse_query("(?x, 20, ?y) . sim(?x, ?y, 3)")
        )
        assert report.constraint_class == "single-2-cyclic"
        assert report.wco_guarantee

    def test_general_cycle_not_guaranteed(self, small_db):
        q = parse_query(
            "(?a, 20, ?x) . (?b, 20, ?y) . (?c, 20, ?z) "
            ". knn(?x,?y,3) . knn(?y,?z,3) . knn(?z,?x,3)"
        )
        report = explain(small_db, q)
        assert report.constraint_class == "general-cyclic"
        assert not report.wco_guarantee

    def test_ring_knn_s_never_guaranteed_on_cycles(self, small_db):
        q = parse_query("(?x, 20, ?y) . sim(?x, ?y, 3)")
        report = explain(small_db, q, engine="ring-knn-s")
        assert not report.wco_guarantee
        assert any("variance" in n for n in report.notes)

    def test_probe_order_recorded(self, small_db):
        report = explain(
            small_db, parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)")
        )
        assert report.probe_order
        assert set(report.probe_order) <= {Var("x"), Var("y")}

    def test_probe_can_be_disabled(self, small_db):
        report = explain(
            small_db,
            parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)"),
            probe=False,
        )
        assert report.probe_order == ()

    def test_initial_estimates_match_data(self, small_db):
        report = explain(
            small_db, parse_query("(?x, 20, ?y) . knn(?x, ?y, 3)"),
            probe=False,
        )
        # x: min(range of the triple, member count). y likewise.
        n20 = len(small_db.graph.matching(None, 20, None))
        assert report.initial_estimates[Var("x")] == min(n20, 20)
        assert report.initial_estimates[Var("y")] == min(n20, 20)

    def test_unsafe_query_flagged(self, small_db):
        report = explain(
            small_db, parse_query("(?x, 20, ?y) . knn(?w, ?x, 3)"),
            probe=False,
        )
        assert not report.safe
        assert report.q_star is not None

    def test_distance_clause_notes(self, small_db):
        import numpy as np

        from repro.engines.database import GraphDatabase
        from repro.knn.distance_index import DistanceRangeIndex

        rng = np.random.default_rng(0)
        points = rng.uniform(size=(20, 2))
        db = GraphDatabase(
            small_db.graph,
            small_db.knn_graph,
            DistanceRangeIndex(points, d_max=1.0),
        )
        report = explain(
            db, parse_query("(?x, 20, ?y) . dist(?x, ?y, 0.5)"), probe=False
        )
        assert report.q_star is None
        assert any("distance" in n for n in report.notes)

    def test_format_renders_everything(self, small_db):
        report = explain(
            small_db,
            parse_query("(?x, 20, ?y) . sim(?x, ?y, 3) . (?y, ?l1, ?l2)"),
        )
        text = report.format()
        assert "engine: ring-knn" in text
        assert "lonely" in text
        assert "single-2-cyclic" in text
        assert "Q*" in text
        assert "probe elimination order" in text

    def test_unknown_engine_rejected(self, small_db):
        with pytest.raises(KeyError):
            explain(small_db, parse_query("(?x, 20, ?y)"), engine="magic")
