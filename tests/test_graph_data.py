"""Tests for the GraphData triple container."""

import numpy as np
import pytest

from repro.graph.triples import GraphData
from repro.utils.errors import ValidationError


class TestConstruction:
    def test_dedup_and_sort(self):
        g = GraphData([(2, 0, 1), (0, 0, 1), (2, 0, 1)])
        assert len(g) == 2
        assert list(g) == [(0, 0, 1), (2, 0, 1)]

    def test_empty_graph(self):
        g = GraphData([])
        assert len(g) == 0
        assert g.domain_size == 0
        assert g.num_nodes == 0
        assert g.nodes.size == 0
        assert g.predicates.size == 0

    def test_from_arrays(self):
        g = GraphData.from_arrays(
            np.array([1, 0]), np.array([5, 5]), np.array([2, 3])
        )
        assert list(g) == [(0, 5, 3), (1, 5, 2)]

    def test_negative_constants_rejected(self):
        with pytest.raises(ValidationError):
            GraphData([(0, -1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            GraphData(np.zeros((3, 2), dtype=np.int64))

    def test_table_is_readonly(self):
        g = GraphData([(0, 1, 2)])
        with pytest.raises(ValueError):
            g.spo[0, 0] = 9


class TestDerivedQuantities:
    def test_paper_quantities(self):
        # n <= D <= 3N per Sec. 2.1.
        g = GraphData([(0, 1, 2), (3, 1, 0), (2, 4, 3)])
        assert g.num_edges == 3
        assert g.domain_size == 5
        # Predicates 1 and 4 are not nodes unless used as subject/object.
        assert g.num_nodes == 3
        assert set(g.nodes.tolist()) == {0, 2, 3}
        assert set(g.predicates.tolist()) == {1, 4}

    def test_contains(self):
        g = GraphData([(0, 1, 2), (3, 1, 0)])
        assert (0, 1, 2) in g
        assert (3, 1, 0) in g
        assert (0, 1, 3) not in g
        assert (9, 9, 9) not in g

    def test_size_in_bytes(self):
        g = GraphData([(0, 1, 2)])
        assert g.size_in_bytes() == 3 * 8


class TestMatchingAndUnion:
    def test_matching_wildcards(self):
        g = GraphData([(0, 1, 2), (0, 1, 3), (4, 1, 2), (0, 5, 2)])
        assert len(g.matching(0, 1, None)) == 2
        assert len(g.matching(None, None, 2)) == 3
        assert len(g.matching(None, None, None)) == 4
        assert len(g.matching(9, None, None)) == 0

    def test_union_dedups(self):
        a = GraphData([(0, 1, 2)])
        b = GraphData([(0, 1, 2), (3, 4, 5)])
        u = a.union(b)
        assert len(u) == 2
        assert (3, 4, 5) in u
