"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class for all
library-originated failures while letting genuine bugs (``TypeError``,
``IndexError`` from internal misuse) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StructureError(ReproError):
    """A succinct data structure was built or queried inconsistently."""


class QueryError(ReproError):
    """An extended BGP is malformed or unsupported by the chosen engine."""


class ValidationError(ReproError):
    """An argument failed validation (bad range, negative size, ...)."""


class TimeoutExceeded(ReproError):
    """Query evaluation exceeded its time budget.

    Attributes:
        elapsed: seconds spent before the engine gave up.
        partial_count: number of solutions produced before the timeout.
    """

    def __init__(self, elapsed: float, partial_count: int = 0) -> None:
        super().__init__(
            f"query evaluation timed out after {elapsed:.3f}s "
            f"({partial_count} solutions produced)"
        )
        self.elapsed = elapsed
        self.partial_count = partial_count
