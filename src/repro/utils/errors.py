"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class for all
library-originated failures while letting genuine bugs (``TypeError``,
``IndexError`` from internal misuse) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StructureError(ReproError):
    """A succinct data structure was built or queried inconsistently."""


class QueryError(ReproError):
    """An extended BGP is malformed or unsupported by the chosen engine."""


class ValidationError(ReproError):
    """An argument failed validation (bad range, negative size, ...)."""


class StoreError(ReproError):
    """Base class for persistent index-store (``repro.store``) failures."""


class StoreFormatError(StoreError):
    """An index file is structurally invalid (bad magic, truncated,
    malformed manifest) and cannot be attached safely."""


class StoreVersionError(StoreError):
    """An index file's format version is not the one this code writes.

    The format is intentionally versioned without migration shims: an
    index is a cache of a build, so the remedy is ``repro build``, not
    an in-place upgrade.
    """


class StoreChecksumError(StoreError):
    """An index file's payload does not match its recorded checksum."""


class StoreEndiannessError(StoreError):
    """The index file or host violates the little-endian contract."""


class ServeError(ReproError):
    """Base class for long-running query-server (``repro.serve``) failures."""


class AdmissionRejected(ServeError):
    """The server's bounded admission queue is full; retry later.

    Attributes:
        retry_after: suggested client back-off in whole seconds, derived
            from the observed service rate at rejection time.
    """

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class ServerDraining(ServeError):
    """The server received a shutdown signal and admits no new queries;
    in-flight queries are drained to completion first."""


class TimeoutExceeded(ReproError):
    """Query evaluation exceeded its time budget.

    Attributes:
        elapsed: seconds spent before the engine gave up.
        partial_count: number of solutions produced before the timeout.
    """

    def __init__(self, elapsed: float, partial_count: int = 0) -> None:
        super().__init__(
            f"query evaluation timed out after {elapsed:.3f}s "
            f"({partial_count} solutions produced)"
        )
        self.elapsed = elapsed
        self.partial_count = partial_count
