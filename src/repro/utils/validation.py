"""Small argument-validation helpers shared across the package.

They raise :class:`~repro.utils.errors.ValidationError` with uniform
messages, keeping the data-structure code free of repetitive checks.
"""

from __future__ import annotations

from repro.utils.errors import ValidationError


def check_positive(name: str, value: int) -> int:
    """Require ``value`` to be a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(name: str, value: int) -> int:
    """Require ``value`` to be a non-negative integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def check_index(name: str, value: int, size: int) -> int:
    """Require ``0 <= value < size`` (0-based index) and return ``value``."""
    check_nonnegative(name, value)
    if value >= size:
        raise ValidationError(f"{name}={value} out of range [0, {size})")
    return value


def check_range(name: str, lo: int, hi: int, size: int) -> tuple[int, int]:
    """Validate a closed 0-based range ``[lo, hi]`` within ``[0, size)``.

    An empty range (``lo > hi``) is allowed and returned as-is; many callers
    treat it as "no candidates".
    """
    if lo > hi:
        return lo, hi
    if lo < 0 or hi >= size:
        raise ValidationError(f"{name}=[{lo}, {hi}] out of bounds [0, {size})")
    return lo, hi
