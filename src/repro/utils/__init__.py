"""Shared utilities: errors, timing, validation, and RNG helpers."""

from repro.utils.errors import (
    QueryError,
    ReproError,
    StructureError,
    TimeoutExceeded,
    ValidationError,
)
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import (
    check_index,
    check_nonnegative,
    check_positive,
    check_range,
)

__all__ = [
    "ReproError",
    "StructureError",
    "QueryError",
    "ValidationError",
    "TimeoutExceeded",
    "Stopwatch",
    "Timer",
    "check_index",
    "check_nonnegative",
    "check_positive",
    "check_range",
]
