"""Timing helpers used by engines and the benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """Monotonic stopwatch with an optional budget, used for query timeouts.

    A ``budget`` of ``None`` means unlimited. The stopwatch starts on
    construction; :meth:`expired` is cheap enough to be polled inside the
    LTJ main loop every few thousand steps.
    """

    def __init__(self, budget: float | None = None) -> None:
        self.budget = budget
        self._start = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.monotonic() - self._start

    def expired(self) -> bool:
        """Whether the budget (if any) has been exhausted."""
        return self.budget is not None and self.elapsed() > self.budget

    def restart(self) -> None:
        """Reset the stopwatch to zero elapsed time."""
        self._start = time.monotonic()


@dataclass
class Timer:
    """Accumulating timer for instrumenting phases of an experiment.

    Use as a context manager; ``total`` accumulates across uses so one
    Timer can measure a phase that occurs inside a loop::

        t = Timer("leap")
        for _ in work:
            with t:
                leap(...)
        print(t.total)
    """

    name: str = ""
    total: float = 0.0
    count: int = 0
    _started: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.total += time.perf_counter() - self._started
        self.count += 1

    @property
    def mean(self) -> float:
        """Average seconds per timed block (0.0 if never used)."""
        return self.total / self.count if self.count else 0.0
