"""Query-plan explanation: what the LTJ engine is going to do and why.

Lives at the package top level (not under :mod:`repro.ltj`) because it
consults both the LTJ layer and the engines layer.

LTJ's orderings are adaptive, so there is no complete static plan; but
most of what a user wants to know *is* static or cheaply probed:

* the atoms and their initial candidate estimates (the ``l_x`` values
  the ordering rules consult at the first step);
* the constraint-graph classification (acyclic / single 2-cyclic /
  general), which decides whether the ordering is provably wco
  (Thms. 2-3);
* safety of the query (whether program (1) applies);
* the LP output bound ``Q*``;
* the first root-to-leaf elimination order of an actual (answer-limited)
  probe run.

:func:`explain` gathers these into a :class:`PlanReport`, and
``PlanReport.format()`` renders a human-readable summary.

With ``analyze=True`` (EXPLAIN ANALYZE), the query is additionally
*executed* under a :class:`~repro.obs.trace.QueryTrace` and the report
carries — and renders — the observed counters: per-variable leaps,
intersection members, bindings; per-atom backend detail; wavelet-tree
operation counts; phase timings; the ordering decisions actually taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bounds.constraint_graph import ConstraintGraph
from repro.bounds.linear_program import solve_size_bound
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.ltj.engine import LTJEngine
from repro.obs.trace import QueryTrace
from repro.query.model import ExtendedBGP, Var


@dataclass
class PlanReport:
    """Everything :func:`explain` learns about a query."""

    query: ExtendedBGP
    engine: str
    variables: tuple[Var, ...]
    lonely: tuple[Var, ...]
    similarity_variables: tuple[Var, ...]
    initial_estimates: dict[Var, int]
    constraint_class: str
    """``acyclic`` | ``single-2-cyclic`` | ``general-cyclic``."""

    wco_guarantee: bool
    """Whether Thm. 2 or Thm. 3 applies to this query under Ring-KNN."""

    safe: bool
    q_star: float | None
    """LP output bound; None when the bound LP is not applicable."""

    probe_order: tuple[Var, ...] = ()
    """First-descent elimination order of a limit-1 probe run."""

    probe_solutions_found: int = 0
    notes: list[str] = field(default_factory=list)

    analysis: QueryTrace | None = None
    """Execution trace when :func:`explain` ran with ``analyze=True``."""

    def format(self) -> str:
        """Render as an indented text report."""
        lines = [f"plan for {self.query}"]
        lines.append(f"  engine: {self.engine}")
        lines.append(
            "  variables: "
            + ", ".join(repr(v) for v in self.variables)
            + (f"  (lonely: {', '.join(repr(v) for v in self.lonely)})"
               if self.lonely else "")
        )
        lines.append(
            "  initial candidate estimates: "
            + ", ".join(
                f"{v!r}={self.initial_estimates[v]}" for v in self.variables
            )
        )
        guarantee = "wco (Thm. 2/3)" if self.wco_guarantee else "heuristic"
        lines.append(
            f"  constraint graph: {self.constraint_class} -> {guarantee}"
        )
        lines.append(f"  safe query: {self.safe}")
        if self.q_star is not None:
            lines.append(f"  output bound Q*: {self.q_star:.4g}")
        if self.probe_order:
            lines.append(
                "  probe elimination order: "
                + " -> ".join(repr(v) for v in self.probe_order)
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.analysis is not None:
            lines.extend(_format_analysis(self.analysis))
        return "\n".join(lines)


def _format_analysis(trace: QueryTrace) -> list[str]:
    """Render an execution trace as EXPLAIN ANALYZE report lines."""
    status = " [TIMED OUT]" if trace.timed_out else ""
    lines = [
        f"  analyze ({trace.engine}): {trace.solutions} solutions "
        f"in {trace.elapsed:.4f}s{status}"
    ]
    stats = trace.stats
    if stats:
        lines.append(
            "    totals: "
            f"leaps={stats.get('leap_calls', 0)} "
            f"candidates={stats.get('attempts', 0)} "
            f"bindings={stats.get('bindings', 0)}"
        )
    for name, seconds in trace.phases.items():
        lines.append(f"    phase {name}: {seconds:.4f}s")
    for v, c in trace.variables.items():
        lines.append(
            f"    var {v!r}: leaps={c.leaps} candidates={c.candidates} "
            f"bindings={c.bindings} failed={c.failed_bindings} "
            f"chosen={c.times_chosen} fanout={c.fanout}"
        )
    for rel in trace.relations:
        detail = ", ".join(
            f"{key}={count}" for key, count in sorted(rel.detail.items())
        )
        lines.append(
            f"    atom {rel.label} [{rel.kind}]: leaps={rel.leaps} "
            f"binds={rel.binds} failed={rel.failed_binds}"
            + (f" ({detail})" if detail else "")
        )
    for label, ops in trace.wavelets.items():
        lines.append(
            f"    wavelet {label}: total={ops.total} rank={ops.rank} "
            f"select={ops.select} access={ops.access} "
            f"range_next={ops.range_next} range_count={ops.range_count}"
        )
    for decision in trace.decisions:
        lines.append(
            f"    step {decision.depth}: chose ?{decision.variable} "
            f"[{decision.reason}]"
        )
    if trace.decisions_dropped:
        lines.append(
            f"    ... {trace.decisions_dropped} further ordering "
            "decisions not shown"
        )
    for key, value in trace.meta.items():
        if key == "parallel":
            lines.extend(_format_parallel_meta(value))
            continue
        if key == "cache":
            lines.append(_format_cache_meta(value))
            continue
        lines.append(f"    meta {key}: {value}")
    return lines


def _format_cache_meta(meta: dict) -> str:
    """Render ``trace.meta["cache"]`` as one report line.

    ``hit`` / ``miss`` / ``inadmissible`` plus the canonical signature
    (when the query canonicalized) and, after a miss, whether the cold
    result was admitted.
    """
    outcome = meta.get("outcome", "miss")
    line = f"    cache: {outcome}"
    if meta.get("reason"):
        line += f" ({meta['reason']})"
    if meta.get("signature"):
        line += f" signature={meta['signature']}"
    if meta.get("engine"):
        line += f" engine={meta['engine']}"
    if "stored" in meta:
        if meta["stored"]:
            line += " [stored]"
        else:
            line += f" [not stored: {meta.get('store_reason', '?')}]"
    return line


def _format_parallel_meta(meta: dict) -> list[str]:
    """Render ``trace.meta["parallel"]`` (domain-sharded execution)."""
    first = meta.get("first_variable")
    lines = [
        f"    parallel: {meta.get('workers')} workers "
        f"({meta.get('mode')}), "
        f"?{first} sharded over {meta.get('candidates')} candidates"
    ]
    for shard in meta.get("shards", []):
        lines.append(
            f"      shard {shard['shard']}: {shard['candidates']} "
            f"candidates -> {shard['solutions']} solutions "
            f"in {shard['elapsed_s']:.4f}s"
        )
    return lines


def explain(
    db: GraphDatabase,
    query: ExtendedBGP,
    engine: str = "ring-knn",
    probe: bool = True,
    analyze: bool = False,
    timeout: float | None = None,
    workers: int = 2,
    cache: object | None = None,
) -> PlanReport:
    """Analyze a query — statically, or (``analyze``) by executing it.

    Args:
        db: the indexed database.
        query: the extended BGP.
        engine: ``"ring-knn"``, ``"ring-knn-s"`` or ``"parallel-knn"``
            (domain-sharded Ring-KNN; static analysis is the base
            engine's, the ``analyze`` run executes sharded and reports
            per-shard timings).
        probe: run a limit-1 evaluation to capture the actual first
            elimination order (cheap for non-pathological queries).
        analyze: EXPLAIN ANALYZE — run the query to completion under a
            :class:`QueryTrace` and attach the observed counters as
            ``report.analysis`` (rendered by ``format()``).
        timeout: time budget for the ``analyze`` run.
        workers: pool size of the ``parallel-knn`` analyze run.
        cache: optional :class:`repro.cache.QueryCache`; the analyze
            run probes it before executing, fills it after, and the
            report renders the outcome (hit / miss / inadmissible plus
            the canonical signature) from ``trace.meta["cache"]``.
    """
    parallel = engine == "parallel-knn"
    base = "ring-knn" if parallel else engine
    engine_cls = {"ring-knn": RingKnnEngine, "ring-knn-s": RingKnnSEngine}[
        base
    ]
    driver = engine_cls(db)
    if parallel:
        from repro.engines.parallel_knn import ParallelRingKnnEngine

        analyze_driver: object = ParallelRingKnnEngine(
            db, workers=workers, base=base
        )
    else:
        analyze_driver = driver
    relations = driver.compile(query)
    ltj = LTJEngine(relations, ordering=driver._ordering(query))
    context = ltj._context({})

    graph = ConstraintGraph(query)
    if graph.is_acyclic():
        constraint_class = "acyclic"
    elif graph.is_single_2_cyclic():
        constraint_class = "single-2-cyclic"
    else:
        constraint_class = "general-cyclic"
    # Thm. 2 covers acyclic, Thm. 3 single 2-cyclic, both under the
    # constraint-aware ordering (Ring-KNN; domain-sharding preserves the
    # ordering, so parallel-knn inherits its base engine's guarantee).
    wco = base == "ring-knn" and constraint_class in (
        "acyclic",
        "single-2-cyclic",
    )

    notes: list[str] = []
    q_star: float | None = None
    if query.dist_clauses:
        notes.append(
            "distance clauses present: LP bound not computed (the paper's "
            "programs cover <|_k only); their per-binding counts still "
            "steer the adaptive ordering"
        )
    else:
        # N and the domain come from the Ring, which exists for both
        # bundle-built and store-backed (`from_index`) databases; the
        # raw `db.graph` tables are absent in the latter.
        bound = solve_size_bound(
            query,
            max(db.ring.num_edges, 1),
            domain_size=max(db.ring.domain_size, 2),
        )
        q_star = bound.q_star
    if base == "ring-knn-s" and constraint_class != "acyclic":
        notes.append(
            "Ring-KNN-S may bind constraint targets early; expect higher "
            "variance on cyclic constraint graphs (Sec. 6.2)"
        )

    report = PlanReport(
        query=query,
        engine=engine,
        variables=ltj.variables,
        lonely=tuple(query.lonely_variables()),
        similarity_variables=tuple(sorted(ltj.stats.sim_variables)),
        initial_estimates=context.estimates,
        constraint_class=constraint_class,
        wco_guarantee=wco,
        safe=query.is_safe(),
        q_star=q_star,
        notes=notes,
    )
    if probe:
        probe_engine = LTJEngine(
            driver.compile(query), ordering=driver._ordering(query), limit=1
        )
        solutions = probe_engine.evaluate()
        report.probe_order = tuple(probe_engine.stats.first_descent_order)
        report.probe_solutions_found = len(solutions)
    if analyze:
        trace = QueryTrace(query=repr(query))
        if cache is None:
            analyze_driver.evaluate(query, timeout=timeout, trace=trace)
        else:
            # Key on the serial base strategy: sharded execution is
            # byte-identical to it, so parallel-knn shares its entries.
            cache_info: dict[str, object] = {}
            hit = cache.probe(  # type: ignore[attr-defined]
                db, query, engine=base, meta=cache_info
            )
            if hit is not None:
                if trace.engine is None:
                    trace.engine = hit.engine
                trace.finish(hit.stats)
            else:
                result = analyze_driver.evaluate(
                    query, timeout=timeout, trace=trace
                )
                cache.fill(  # type: ignore[attr-defined]
                    db, query, result, engine=base, meta=cache_info
                )
            trace.meta["cache"] = cache_info
        report.analysis = trace
    return report
