"""Import-graph construction and reachability for reprolint.

RPL004 bans wall-clock and unseeded-randomness calls in any code
"reachable from the traced op-count pass". That reachability is
computed here: parse every project module's import statements, keep the
edges that stay inside the project, and BFS from the configured roots
(the bench harness and the engine entry points).

The walker is intentionally syntactic — it reads ``import``/``from``
statements, it does not execute anything. Conditional and
``TYPE_CHECKING``-guarded imports still count as edges: an
over-approximation is the right failure mode for a determinism gate.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import ModuleInfo, Project


def module_imports(module: "ModuleInfo") -> set[str]:
    """Absolute dotted names imported by ``module`` (project or not)."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from(module.name, node)
            if base is None:
                continue
            names.add(base)
            for alias in node.names:
                if alias.name != "*":
                    names.add(f"{base}.{alias.name}")
    return names


def _resolve_from(module_name: str, node: ast.ImportFrom) -> str | None:
    """Absolute base module of a ``from X import Y`` statement."""
    if node.level == 0:
        return node.module
    # Relative import: climb ``level`` packages from the current module.
    parts = module_name.split(".")
    # ``from . import x`` inside package ``a.b`` (module a.b.c) climbs to
    # a.b; inside a package __init__ the module name already *is* the
    # package, which _module_name() gives us (no "__init__" suffix), so
    # one level strips the last segment either way.
    if len(parts) < node.level:
        return None
    base_parts = parts[: len(parts) - node.level]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts) if base_parts else None


def build_import_graph(project: "Project") -> dict[str, set[str]]:
    """module name -> names of *project* modules it imports.

    ``from pkg import name`` resolves to the submodule ``pkg.name`` when
    one exists in the project, and also keeps the ``pkg`` edge (package
    ``__init__`` side effects run on import).
    """
    known = {m.name for m in project.modules}
    graph: dict[str, set[str]] = {}
    for module in project.modules:
        edges: set[str] = set()
        for name in module_imports(module):
            # Longest known prefix: ``repro.ring.index.RingIndex`` ->
            # ``repro.ring.index``; plain ``numpy`` -> no edge.
            candidate = name
            while candidate:
                if candidate in known:
                    edges.add(candidate)
                    break
                if "." not in candidate:
                    break
                candidate = candidate.rsplit(".", 1)[0]
        edges.discard(module.name)
        graph[module.name] = edges
    return graph


def reachable(graph: dict[str, set[str]], roots: tuple[str, ...]) -> set[str]:
    """Modules reachable from any module matching a root prefix.

    Roots are dotted prefixes (``"repro.engines"`` seeds every
    ``repro.engines.*`` module). The result includes the roots.
    """
    queue: deque[str] = deque(
        name
        for name in graph
        if any(name == r or name.startswith(r + ".") for r in roots)
    )
    seen: set[str] = set(queue)
    while queue:
        current = queue.popleft()
        for nxt in graph.get(current, ()):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen
