"""Runtime resource-leak sanitizer (``REPRO_SANITIZE=1``).

The flow-sensitive rules (RPL008-RPL010) prove lifecycle properties
*statically*; this module is the dynamic half of the same contract. When
``REPRO_SANITIZE=1`` is set, :func:`install` swaps the process-wide
resource primitives the runtime layers acquire — shm segments
(``repro.parallel.shm``), file mappings (``repro.store.io``), worker
pools (``repro.parallel.executor``), the test server thread
(``repro.serve.app``) — for instrumented twins that record every
acquisition with its full allocation stack in a process-local
:class:`Ledger` and strike it out on release.

``tests/conftest.py`` wraps each test in :func:`test_leak_check`: a
resource acquired during a test and still live when the test ends fails
*that test*, printing the allocation traceback — the exact thing a
"CI is out of shm space" post-mortem never has.

Facets: a creator-side shm segment owes *two* releases (``close`` drops
the mapping, ``unlink`` removes the OS object); an attachment owes only
``close``. An entry stays live until every facet is released.

Sanctioned owners: the executor's ``_POOLS`` LRU deliberately keeps
pools (and their segments) alive across tests — that is a cache, not a
leak. :func:`_owned_serials` walks the registry so cached ownership is
exempted *transitively* (the pool, its structure segment, its scratch
buffer), while an unregistered pool still trips the check.

Patching happens in the parent test process only: spawn-start workers
re-import clean modules, and fork children inherit an (unchecked) copy
of the ledger — worker-side acquisitions are the worker initializer's
to balance, and the parent-side ledger never sees them.
"""

from __future__ import annotations

import mmap as _mmap_mod
import os
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory as _shared_memory
from types import SimpleNamespace
from typing import Any, Iterator

#: Attribute stashed on instrumented instances linking them to their
#: ledger entry (survives subclassing; never pickled by the transport —
#: manifests travel, resource handles do not).
_SERIAL_ATTR = "_repro_sanitize_serial"


def enabled() -> bool:
    """Whether sanitizer mode is requested via the environment."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


@dataclass
class Acquisition:
    serial: int
    kind: str
    detail: str
    facets: set[str]
    stack: list[traceback.FrameSummary]

    def describe(self) -> str:
        frames = "".join(traceback.format_list(self.stack[-12:]))
        return (
            f"[{self.kind}] {self.detail} — unreleased facet(s): "
            f"{', '.join(sorted(self.facets))}\n"
            f"acquired at:\n{frames}"
        )


class Ledger:
    """Process-local acquire/release journal of instrumented resources."""

    def __init__(self) -> None:
        self._next = 0
        self._live: dict[int, Acquisition] = {}

    def acquire(self, kind: str, detail: str, facets: set[str]) -> int:
        self._next += 1
        stack = list(traceback.extract_stack())[:-2]  # sans acquire+wrapper
        self._live[self._next] = Acquisition(
            self._next, kind, detail, set(facets), stack
        )
        return self._next

    def release(self, serial: int | None, facet: str | None = None) -> None:
        if serial is None:
            return
        entry = self._live.get(serial)
        if entry is None:
            return
        if facet is None:
            entry.facets.clear()
        else:
            entry.facets.discard(facet)
        if not entry.facets:
            del self._live[serial]

    def live(self) -> dict[int, Acquisition]:
        return dict(self._live)


LEDGER = Ledger()


def _serial_of(obj: Any) -> int | None:
    return getattr(obj, _SERIAL_ATTR, None)


# ----------------------------------------------------------------------
# instrumented primitives
# ----------------------------------------------------------------------
class _SanitizedSharedMemory(_shared_memory.SharedMemory):
    """``SharedMemory`` recording its close (and, for creators, unlink)
    obligations."""

    def __init__(
        self, name: str | None = None, create: bool = False, size: int = 0
    ) -> None:
        super().__init__(name, create, size)
        facets = {"close"} | ({"unlink"} if create else set())
        setattr(
            self,
            _SERIAL_ATTR,
            LEDGER.acquire(
                "shm-segment" if create else "shm-attachment",
                f"name={self.name} create={create} size={size}",
                facets,
            ),
        )

    def close(self) -> None:
        LEDGER.release(_serial_of(self), "close")
        super().close()

    def unlink(self) -> None:
        LEDGER.release(_serial_of(self), "unlink")
        super().unlink()


class _SanitizedMmap(_mmap_mod.mmap):
    """``mmap.mmap`` recording its close obligation."""

    def __new__(cls, *args: Any, **kwargs: Any) -> "_SanitizedMmap":
        obj = super().__new__(cls, *args, **kwargs)
        setattr(
            obj,
            _SERIAL_ATTR,
            LEDGER.acquire("mmap", f"args={args!r}", {"close"}),
        )
        return obj

    def close(self) -> None:
        LEDGER.release(_serial_of(self), "close")
        super().close()


def _wrap_pool_class(pool_cls: type) -> None:
    orig_init = pool_cls.__init__
    orig_close = pool_cls.close

    def init(self: Any, db: Any, workers: int) -> None:
        orig_init(self, db, workers)
        setattr(
            self,
            _SERIAL_ATTR,
            LEDGER.acquire(
                "worker-pool", f"workers={self.workers}", {"close"}
            ),
        )

    def close(self: Any) -> None:
        orig_close(self)
        LEDGER.release(_serial_of(self), "close")

    pool_cls.__init__ = init  # type: ignore[method-assign]
    pool_cls.close = close  # type: ignore[method-assign]


def _wrap_server_thread(thread_cls: type) -> None:
    orig_start = thread_cls.start
    orig_shutdown = thread_cls.shutdown

    def start(self: Any, timeout: float = 180.0) -> Any:
        serial = LEDGER.acquire(
            "server-thread", f"host={self.host}", {"shutdown"}
        )
        setattr(self, _SERIAL_ATTR, serial)
        try:
            return orig_start(self, timeout)
        except BaseException:
            # Failed startup joined the thread already; nothing runs.
            LEDGER.release(serial, "shutdown")
            raise

    def shutdown(self: Any, timeout: float = 120.0) -> None:
        orig_shutdown(self, timeout)
        LEDGER.release(_serial_of(self), "shutdown")

    thread_cls.start = start  # type: ignore[method-assign]
    thread_cls.shutdown = shutdown  # type: ignore[method-assign]


_installed = False


def install() -> None:
    """Swap the runtime layers' resource primitives for recorded twins.

    Idempotent; patches only this process. Module-attribute patching is
    deliberate: the runtime modules name their primitives through their
    own namespaces (``shared_memory.SharedMemory``, ``mmap.mmap``), so
    rebinding *those* attributes instruments every acquisition the
    repro tree makes without touching the stdlib for other libraries.
    """
    global _installed
    if _installed:
        return
    _installed = True

    import repro.parallel.executor as executor
    import repro.parallel.shm as shm
    import repro.serve.app as app
    import repro.store.io as io

    shm.shared_memory = SimpleNamespace(  # type: ignore[assignment]
        SharedMemory=_SanitizedSharedMemory
    )
    io.mmap = SimpleNamespace(  # type: ignore[assignment]
        mmap=_SanitizedMmap, ACCESS_READ=_mmap_mod.ACCESS_READ
    )
    _wrap_pool_class(executor.WorkerPool)
    _wrap_server_thread(app.ServerThread)


def _owned_serials() -> set[int]:
    """Ledger entries owned by a sanctioned cross-test cache.

    The executor's ``_POOLS`` LRU is the one registry allowed to hold
    resources across tests; everything it transitively owns (the pool,
    the flattened structure segment, the scratch buffer's segment) is
    exempt from the per-test check — ``shutdown_pools`` releases them
    at session end.
    """
    import repro.parallel.executor as executor

    owned: set[int] = set()
    for pool in executor._POOLS.values():
        candidates: list[Any] = [pool]
        for holder in (pool._shm, pool._scratch):
            if holder is not None:
                candidates.append(holder)
                candidates.append(getattr(holder, "_shm", None))
        for obj in candidates:
            serial = _serial_of(obj)
            if serial is not None:
                owned.add(serial)
    return owned


@contextmanager
def test_leak_check(name: str) -> Iterator[None]:
    """Fail ``name`` if it acquires a resource it never releases."""
    before = set(LEDGER.live())
    yield
    leaked = [
        entry
        for serial, entry in sorted(LEDGER.live().items())
        if serial not in before and serial not in _owned_serials()
    ]
    if leaked:
        details = "\n".join(entry.describe() for entry in leaked)
        # Strike the entries so one leak fails one test, not every
        # test that follows it.
        for entry in leaked:
            LEDGER.release(entry.serial)
        raise ResourceLeakError(
            f"{name} leaked {len(leaked)} resource(s):\n{details}"
        )


class ResourceLeakError(AssertionError):
    """A test finished with unreleased instrumented resources."""
