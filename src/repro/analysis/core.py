"""Core machinery of reprolint: projects, findings, suppressions.

A :class:`Project` is the unit of analysis — a set of parsed modules
plus the import graph over them. Rules receive one module at a time but
may consult the project (e.g. RPL004's "reachable from the traced
pass" computation).

Suppressions are inline and must carry a justification::

    foo.rank1(i)  # reprolint: disable=RPL001 -- construction-time, not hot

    # reprolint: disable-file=RPL006 -- fixture exercising RPL001 only

A ``disable`` comment applies to its own physical line (or, when a line
holds only the comment, to the following line). A disable *without* the
``-- justification`` text is itself reported as RPL000: the point of a
suppression is to record why the invariant does not apply, not to make
the linter quiet.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.astutil import attach_parents

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
    r"(?:\s+--\s*(?P<why>\S.*?))?\s*$"
)

#: Magic comment letting fixture files impersonate an in-scope module:
#: ``# reprolint-module: repro.ltj.fake`` (first five lines only).
_MODULE_OVERRIDE_RE = re.compile(
    r"#\s*reprolint-module:\s*(?P<name>[\w.]+)\s*$"
)


@dataclass
class Finding:
    """One rule violation (or suppression problem) at a source location."""

    code: str
    message: str
    module: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False
    justification: str | None = None

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{tag}"

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass
class _Suppression:
    codes: frozenset[str]
    line: int
    file_level: bool
    justification: str | None
    used: bool = False


class ModuleInfo:
    """One parsed source module."""

    def __init__(self, path: Path, name: str, source: str) -> None:
        self.path = path
        self.name = name
        self.source = source
        self.lines = source.splitlines()
        self.tree = attach_parents(ast.parse(source, filename=str(path)))
        self.suppressions = self._parse_suppressions()

    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> list[_Suppression]:
        found: list[_Suppression] = []
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = frozenset(
                c.strip() for c in match.group("codes").split(",")
            )
            # A comment-only line covers the next line of code.
            target = lineno
            if text.lstrip().startswith("#") and match.group("kind") == "disable":
                target = lineno + 1
            found.append(
                _Suppression(
                    codes=codes,
                    line=target,
                    file_level=match.group("kind") == "disable-file",
                    justification=match.group("why"),
                )
            )
        return found

    def suppression_for(self, code: str, line: int) -> _Suppression | None:
        for sup in self.suppressions:
            if code in sup.codes and (sup.file_level or sup.line == line):
                return sup
        return None

    def finding(self, code: str, message: str, node: ast.AST | None = None,
                line: int | None = None, col: int | None = None) -> Finding:
        """Build a Finding anchored at ``node`` (or an explicit line)."""
        at_line = line if line is not None else getattr(node, "lineno", 1)
        at_col = col if col is not None else getattr(node, "col_offset", 0)
        return Finding(
            code=code,
            message=message,
            module=self.name,
            path=str(self.path),
            line=at_line,
            col=at_col,
        )


class Project:
    """A set of modules to lint, with a lazily built import graph."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = sorted(modules, key=lambda m: m.name)
        self._by_name = {m.name: m for m in self.modules}
        self._import_graph: dict[str, set[str]] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_paths(cls, paths: list[str | Path]) -> "Project":
        """Discover ``.py`` files under the given files/directories."""
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        modules = []
        seen: set[Path] = set()
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            source = file.read_text(encoding="utf-8")
            modules.append(ModuleInfo(file, _module_name(file, source), source))
        return cls(modules)

    def module(self, name: str) -> ModuleInfo | None:
        return self._by_name.get(name)

    # ------------------------------------------------------------------
    @property
    def import_graph(self) -> dict[str, set[str]]:
        """module name -> project-module names it imports."""
        if self._import_graph is None:
            from repro.analysis.imports import build_import_graph

            self._import_graph = build_import_graph(self)
        return self._import_graph

    def reachable_from(self, prefixes: tuple[str, ...]) -> set[str]:
        """Project modules reachable (via imports) from root prefixes."""
        from repro.analysis.imports import reachable

        return reachable(self.import_graph, prefixes)


def _module_name(path: Path, source: str) -> str:
    """Dotted module name: magic override, else derived from the path."""
    for text in source.splitlines()[:5]:
        match = _MODULE_OVERRIDE_RE.search(text)
        if match is not None:
            return match.group("name")
    parts = list(path.resolve().with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro",):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            return ".".join(parts[idx:])
    return parts[-1] if parts else str(path)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    modules_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def lint(project: Project, rules=None) -> LintResult:
    """Run rules over every module; apply and police suppressions."""
    from repro.analysis.rules import ALL_RULES

    active = list(ALL_RULES if rules is None else rules)
    result = LintResult(rules_run=[r.code for r in active])
    for module in project.modules:
        result.modules_checked += 1
        for rule in active:
            for finding in rule.check(module, project):
                sup = module.suppression_for(finding.code, finding.line)
                if sup is not None:
                    sup.used = True
                    finding.suppressed = True
                    finding.justification = sup.justification
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
        # Suppressions without justification are findings themselves.
        for sup in module.suppressions:
            if not sup.justification:
                result.findings.append(
                    Finding(
                        code="RPL000",
                        message=(
                            "reprolint suppression without justification: "
                            "append ' -- <why the invariant does not "
                            "apply here>'"
                        ),
                        module=module.name,
                        path=str(module.path),
                        line=sup.line,
                    )
                )
    result.findings.sort(key=lambda f: (f.path, f.line, f.code))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.code))
    return result


# ----------------------------------------------------------------------
# output
# ----------------------------------------------------------------------
def format_findings(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report."""
    out: list[str] = []
    for finding in result.findings:
        out.append(finding.format())
    if verbose:
        for finding in result.suppressed:
            why = finding.justification or ""
            out.append(f"{finding.format()} -- {why}")
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
    out.append(
        f"reprolint: {len(result.findings)} finding(s) "
        f"({summary or 'clean'}), {len(result.suppressed)} suppressed, "
        f"{result.modules_checked} module(s) checked"
    )
    return "\n".join(out)


def format_json(result: LintResult) -> str:
    """Machine-readable report (the CI gate consumes this)."""
    return json.dumps(
        {
            "ok": result.ok,
            "rules": result.rules_run,
            "modules_checked": result.modules_checked,
            "findings": [f.as_dict() for f in result.findings],
            "suppressed": [f.as_dict() for f in result.suppressed],
        },
        indent=2,
        sort_keys=True,
    )


def format_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report (GitHub code-scanning annotations).

    Only unsuppressed findings become results — suppressed ones carry a
    reviewed justification and would otherwise resurface as alerts on
    every push. Paths are emitted as relative POSIX URIs so GitHub can
    anchor annotations against the checkout root.
    """
    from repro.analysis.rules import rule_catalog

    catalog = {code: (name, summary) for code, name, summary in rule_catalog()}
    catalog.setdefault(
        "RPL000",
        (
            "unjustified-suppression",
            "inline suppressions must record why the invariant "
            "does not apply",
        ),
    )
    seen_codes = sorted(
        {f.code for f in result.findings} | set(result.rules_run)
    )
    rules = []
    for code in seen_codes:
        name, summary = catalog.get(code, (code.lower(), code))
        rules.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": summary},
            }
        )
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = []
    for finding in result.findings:
        uri = Path(finding.path).as_posix()
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_index[finding.code],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
