"""Per-function control-flow graphs for the flow-sensitive lint tier.

``build_cfg`` turns one ``ast`` function body into a small statement-level
CFG: one node per statement header, plus synthetic ``ENTRY``/``EXIT``/
``RAISE`` nodes and a ``WithExit`` node per ``with`` statement (the
``__exit__`` call, where context-managed resources are released). The
graph is deliberately conservative — it exists so the dataflow rules
(RPL008-RPL010) can reason about *paths*, including the exceptional
ones today's pattern rules cannot see:

- Any statement whose header contains a call, a ``raise``, or an
  ``assert`` grows an exception edge to the innermost handler — each
  ``except`` clause of the enclosing ``try``, then the enclosing
  ``finally`` region (exceptions run it before propagating), and
  ``RAISE`` at the top level.
- ``finally`` bodies are built once and shared by every continuation
  (normal fall-through, exception propagation, ``return``/``break``/
  ``continue`` routed through them). Sharing merges paths, which can
  only over-approximate reachability — safe for the may-leak analyses
  built on top.
- ``with`` statements desugar to the same frame machinery as
  ``try/finally``: body exceptions and early exits route through the
  ``WithExit`` node, which rules treat as the release point of the
  context-managed resources.
- Loop back edges (body end to header) carry the ``loop`` kind;
  ``while``/``for`` ``else`` clauses hang off the header's normal exit
  and are skipped by ``break`` (which targets the statement *after*
  the whole loop).

``cfg_shape`` renders the graph as deterministic text for the golden
fixtures under ``tests/lint_fixtures/`` — construction must never
depend on dict/set iteration order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Edge kinds, in the order they render in golden shapes.
EDGE_KINDS = ("next", "loop", "except", "return", "break", "continue")


@dataclass(frozen=True)
class CFGNode:
    """One CFG node: a statement header or a synthetic marker."""

    index: int
    label: str
    stmt: ast.stmt | None = None
    line: int = 0

    def render(self) -> str:
        if self.line:
            return f"{self.index} {self.label} L{self.line}"
        return f"{self.index} {self.label}"


@dataclass
class CFG:
    """Statement-level control-flow graph of one function."""

    func: FunctionNode
    nodes: list[CFGNode] = field(default_factory=list)
    edges: set[tuple[int, int, str]] = field(default_factory=set)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def successors(self, index: int) -> list[tuple[int, str]]:
        """Outgoing ``(node, kind)`` pairs, deterministically ordered."""
        return sorted(
            (dst, kind) for src, dst, kind in self.edges if src == index
        )

    def node_for(self, stmt: ast.stmt) -> CFGNode | None:
        """The node whose header is ``stmt`` (None for unreached code)."""
        for node in self.nodes:
            if node.stmt is stmt and not node.label.startswith("WithExit"):
                return node
        return None

    def with_exit_for(self, stmt: ast.With | ast.AsyncWith) -> CFGNode | None:
        for node in self.nodes:
            if node.stmt is stmt and node.label.startswith("WithExit"):
                return node
        return None


@dataclass
class _FinallyFrame:
    """An enclosing ``finally`` region (or ``with`` exit) on the stack."""

    entry: int
    exit_preds: list[tuple[int, str]]
    # Continuations routed through this finally by early exits in its
    # try body; resolved when the owning Try/With finishes building.
    pending: list[str] = field(default_factory=list)
    is_loop: bool = False  # loop frames share the stack for routing


@dataclass
class _LoopFrame(_FinallyFrame):
    header: int = -1
    breaks: list[int] = field(default_factory=list)
    is_loop: bool = True


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func=func)
        self._add_node("ENTRY")
        self._add_node("EXIT")
        self._add_node("RAISE")
        # Innermost-last stacks: exception landing targets, and the
        # combined finally/loop frame stack used to route early exits.
        self._exc_stack: list[list[int]] = [[self.cfg.raise_exit]]
        self._frames: list[_FinallyFrame] = []

    # ------------------------------------------------------------------
    # graph primitives
    # ------------------------------------------------------------------
    def _add_node(
        self, label: str, stmt: ast.stmt | None = None, line: int = 0
    ) -> int:
        index = len(self.cfg.nodes)
        self.cfg.nodes.append(CFGNode(index, label, stmt, line))
        return index

    def _edge(self, src: int, dst: int, kind: str = "next") -> None:
        self.cfg.edges.add((src, dst, kind))

    def _connect(self, preds: list[tuple[int, str]], dst: int) -> None:
        for src, kind in preds:
            self._edge(src, dst, kind)

    # ------------------------------------------------------------------
    # exception edges
    # ------------------------------------------------------------------
    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
        """The expressions evaluated by ``stmt``'s own node (not its
        nested statement blocks)."""
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter, stmt.target]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        if isinstance(stmt, ast.Try):
            return []
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return list(stmt.decorator_list)
        return [stmt]

    @classmethod
    def _can_raise(cls, stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return True
        for root in cls._header_exprs(stmt):
            for node in ast.walk(root):
                if isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
                    return True
        return False

    def _exception_edges(self, node: int, stmt: ast.stmt) -> None:
        if not self._can_raise(stmt):
            return
        for target in self._exc_stack[-1]:
            self._edge(node, target, "except")

    # ------------------------------------------------------------------
    # early-exit routing (return / break / continue through finallys)
    # ------------------------------------------------------------------
    def _route_early_exit(self, node: int, kind: str) -> None:
        """Route ``return``/``break``/``continue`` from ``node`` through
        any enclosing finally regions to its ultimate target."""
        for frame in reversed(self._frames):
            if kind in ("break", "continue") and frame.is_loop:
                loop = frame
                assert isinstance(loop, _LoopFrame)
                if kind == "break":
                    loop.breaks.append(node)
                else:
                    self._edge(node, loop.header, "continue")
                return
            if not frame.is_loop:
                self._edge(node, frame.entry, kind)
                frame.pending.append(kind)
                return
        # No enclosing finally (for return) / malformed break: to EXIT.
        if kind == "return":
            self._edge(node, self.cfg.exit, "return")

    def _resolve_pending(self, frame: _FinallyFrame) -> None:
        """After a finally region is fully built, connect its exit to
        the continuation of every early exit that was routed through."""
        for kind in sorted(set(frame.pending)):
            for src, _ in frame.exit_preds:
                self._route_early_exit(src, kind)

    # ------------------------------------------------------------------
    # statement dispatch
    # ------------------------------------------------------------------
    def build(self) -> CFG:
        preds = self._body(
            self.cfg.func.body, [(self.cfg.entry, "next")]
        )
        self._connect(preds, self.cfg.exit)
        return self.cfg

    def _body(
        self, stmts: list[ast.stmt], preds: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        for stmt in stmts:
            preds = self._statement(stmt, preds)
        return preds

    def _statement(
        self, stmt: ast.stmt, preds: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        label = type(stmt).__name__
        node = self._add_node(label, stmt, stmt.lineno)
        self._connect(preds, node)
        self._exception_edges(node, stmt)

        if isinstance(stmt, ast.Return):
            self._route_early_exit(node, "return")
            return []
        if isinstance(stmt, ast.Break):
            self._route_early_exit(node, "break")
            return []
        if isinstance(stmt, ast.Continue):
            self._route_early_exit(node, "continue")
            return []
        if isinstance(stmt, ast.Raise):
            return []
        if isinstance(stmt, ast.If):
            then_out = self._body(stmt.body, [(node, "next")])
            else_out = (
                self._body(stmt.orelse, [(node, "next")])
                if stmt.orelse
                else [(node, "next")]
            )
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, node)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, node)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, node)
        # Simple statement (or nested def/class, treated opaquely).
        return [(node, "next")]

    # ------------------------------------------------------------------
    # compound statements
    # ------------------------------------------------------------------
    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, header: int
    ) -> list[tuple[int, str]]:
        frame = _LoopFrame(entry=-1, exit_preds=[], header=header)
        self._frames.append(frame)
        body_out = self._body(stmt.body, [(header, "next")])
        self._frames.pop()
        for src, _ in body_out:
            self._edge(src, header, "loop")
        # Normal exhaustion falls through the header — into ``else`` if
        # present (``break`` skips it), then past the loop.
        after: list[tuple[int, str]] = (
            self._body(stmt.orelse, [(header, "next")])
            if stmt.orelse
            else [(header, "next")]
        )
        after.extend((src, "break") for src in frame.breaks)
        return after

    def _with(
        self, stmt: ast.With | ast.AsyncWith, header: int
    ) -> list[tuple[int, str]]:
        with_exit = self._add_node("WithExit", stmt, stmt.lineno)
        frame = _FinallyFrame(
            entry=with_exit, exit_preds=[(with_exit, "next")]
        )
        # Body exceptions run ``__exit__`` before propagating.
        self._exc_stack.append([with_exit])
        self._frames.append(frame)
        body_out = self._body(stmt.body, [(header, "next")])
        self._frames.pop()
        self._exc_stack.pop()
        self._connect(body_out, with_exit)
        # Exceptional continuation: __exit__ may re-raise outward.
        for target in self._exc_stack[-1]:
            self._edge(with_exit, target, "except")
        self._resolve_pending(frame)
        return [(with_exit, "next")]

    def _try(self, stmt: ast.Try, header: int) -> list[tuple[int, str]]:
        out: list[tuple[int, str]] = []
        frame: _FinallyFrame | None = None
        if stmt.finalbody:
            # The finally region is built once, in the *outer* context
            # (its own exceptions propagate outward), and shared by all
            # continuations.
            fin_entry = self._add_node(
                "Finally", None, stmt.finalbody[0].lineno
            )
            fin_out = self._body(
                stmt.finalbody, [(fin_entry, "next")]
            )
            frame = _FinallyFrame(entry=fin_entry, exit_preds=fin_out)
            self._frames.append(frame)
            # Exception propagation resumes after the finally runs.
            for target in self._exc_stack[-1]:
                for src, _ in fin_out:
                    self._edge(src, target, "except")

        handler_nodes: list[int] = []
        for handler in stmt.handlers:
            handler_nodes.append(
                self._add_node("ExceptHandler", None, handler.lineno)
            )
        # Exceptions in the try body land on each handler; if none
        # matches (or there are no handlers), they run the finally.
        body_targets = list(handler_nodes)
        if frame is not None:
            body_targets.append(frame.entry)
        elif not handler_nodes:
            body_targets.extend(self._exc_stack[-1])

        self._exc_stack.append(body_targets)
        body_out = self._body(stmt.body, [(header, "next")])
        self._exc_stack.pop()

        # else-clause and handler bodies are outside the handlers'
        # protection: their exceptions run the finally (if any) before
        # propagating to the outer context.
        post_body_exc = (
            [frame.entry] if frame is not None else self._exc_stack[-1]
        )
        self._exc_stack.append(post_body_exc)
        # else-clause runs only after a clean body.
        if stmt.orelse:
            body_out = self._body(stmt.orelse, body_out)
        out.extend(body_out)
        for handler, h_node in zip(stmt.handlers, handler_nodes):
            out.extend(self._body(handler.body, [(h_node, "next")]))
        self._exc_stack.pop()

        if frame is not None:
            self._frames.pop()
            self._connect(out, frame.entry)
            self._resolve_pending(frame)
            return list(frame.exit_preds)
        return out


def build_cfg(func: FunctionNode) -> CFG:
    """Build the statement-level CFG of one function definition."""
    return _Builder(func).build()


def cfg_shape(cfg: CFG) -> str:
    """Deterministic text rendering of a CFG (golden-fixture format)."""
    lines = [f"cfg {cfg.func.name}"]
    lines.extend(node.render() for node in cfg.nodes)
    lines.append("edges:")
    order = {kind: rank for rank, kind in enumerate(EDGE_KINDS)}
    for src, dst, kind in sorted(
        cfg.edges, key=lambda e: (e[0], e[1], order.get(e[2], 99))
    ):
        lines.append(f"{src} -> {dst} {kind}")
    return "\n".join(lines) + "\n"
