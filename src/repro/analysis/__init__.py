"""``reprolint``: AST-based static analysis for the repo's invariants.

The wco guarantees reproduced from Arroyuelo et al. (SIGMOD 2024)
survive in this codebase as *coding conventions*: hot-path modules must
call the unchecked ``_*_u`` succinct kernels, logical op counters must
be bumped before memo lookups so traced op counts stay deterministic,
observability must be zero-overhead when disabled, the traced pass must
be bit-for-bit reproducible, and every engine must honour the relation
and result contracts. ``repro.analysis`` turns those conventions into
machine-checked rules (RPL001-RPL010) run as ``repro lint`` and as a CI
gate — see ``docs/static-analysis.md`` for the rule catalogue and the
invariant each protects. RPL008-RPL010 are flow-sensitive: they run on
the per-function CFGs of :mod:`repro.analysis.cfg` via the forward
dataflow engine in :mod:`repro.analysis.dataflow`.

Public API::

    from repro.analysis import Project, lint, ALL_RULES

    project = Project.from_paths(["src/repro"])
    result = lint(project)
    for finding in result.findings:
        print(finding.format())
"""

from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleInfo,
    Project,
    format_findings,
    format_json,
    format_sarif,
    lint,
)
from repro.analysis.rules import ALL_RULES, get_rules, rule_catalog

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Project",
    "lint",
    "format_findings",
    "format_json",
    "format_sarif",
    "ALL_RULES",
    "get_rules",
    "rule_catalog",
]
