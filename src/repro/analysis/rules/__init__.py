"""Rule registry for reprolint.

Rules register by being instantiated into :data:`ALL_RULES`; the CLI
and the test-suite fixtures address them by code.
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.rpl001_hot_path import HotPathPurity
from repro.analysis.rules.rpl002_counter_memo import CounterBeforeMemo
from repro.analysis.rules.rpl003_obs_guard import ObsGuard
from repro.analysis.rules.rpl004_determinism import Determinism
from repro.analysis.rules.rpl005_engine_contract import EngineContract
from repro.analysis.rules.rpl006_typing import StrictTyping
from repro.analysis.rules.rpl007_transport import ShmOnlyTransport
from repro.analysis.rules.rpl008_lifecycle import ResourceLifecycle
from repro.analysis.rules.rpl009_async import NoBlockingInAsync
from repro.analysis.rules.rpl010_shared_state import ThreadForkSharedState

ALL_RULES: tuple[Rule, ...] = (
    HotPathPurity(),
    CounterBeforeMemo(),
    ObsGuard(),
    Determinism(),
    EngineContract(),
    StrictTyping(),
    ShmOnlyTransport(),
    ResourceLifecycle(),
    NoBlockingInAsync(),
    ThreadForkSharedState(),
)

_BY_CODE = {rule.code: rule for rule in ALL_RULES}


def get_rules(codes: list[str] | None = None) -> tuple[Rule, ...]:
    """Resolve rule codes (``["RPL001", ...]``) to rule instances."""
    if codes is None:
        return ALL_RULES
    unknown = [c for c in codes if c not in _BY_CODE]
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return tuple(_BY_CODE[c] for c in codes)


def rule_catalog() -> list[tuple[str, str, str]]:
    """``(code, name, summary)`` rows for ``repro lint --list-rules``."""
    return [(r.code, r.name, r.summary) for r in ALL_RULES]


__all__ = ["Rule", "ALL_RULES", "get_rules", "rule_catalog"]
