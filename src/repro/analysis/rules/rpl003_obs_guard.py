"""RPL003 — observability touches must be guarded.

PR-1's observability layer is opt-in: engines and indexes carry
``trace``/``obs``/``ops`` references that default to ``None`` and are
only populated when the caller asks for instrumentation. The
zero-overhead-when-disabled guarantee (bench harness measures < noise
when tracing is off) holds because every counter bump and trace call
sits behind an ``is not None`` guard. This rule enforces that shape
everywhere outside ``repro.obs`` (which *is* the recorder and may touch
freely).

A "touch" is a method call, attribute read or attribute write *through*
an observability reference — a dotted chain whose non-final segment is
one of the configured obs names (``self.obs.bump(...)``,
``trace.engine = ...``, ``vc.leap += 1``). Binding the reference itself
(``obs = self.obs``, ``self._trace = trace``) is free: that is how the
guard pattern starts.

Recognised guards, matching the idioms in the tree:

* ``if X is not None:`` with the touch in the body (or ``if X is
  None:`` with the touch in the orelse),
* conditional expressions — ``f(trace) if trace is not None else None``,
* early-return — a preceding ``if X is None: return ...`` whose body
  always leaves the block guards everything after it,
* ``assert X is not None`` before the touch in the same block.

``X`` may be the touched chain's own prefix or any obs-named alias —
the alias-binding idiom (``obs = self.obs; if obs is not None:``)
renames the reference, so guard matching is deliberately loose: a
None-guard on *some* obs reference in scope accepts the touch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    OBS_EXEMPT_PREFIXES,
    OBS_GUARD_PREFIXES,
    OBS_SEGMENTS,
    in_scope,
)
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


def _obs_chain(chain: str) -> bool:
    """True when a non-final segment of ``chain`` is an obs name."""
    segments = chain.split(".")
    return any(seg in OBS_SEGMENTS for seg in segments[:-1])


def _is_guard_test(test: ast.expr) -> tuple[str, bool] | None:
    """Recognise ``X is (not) None`` where X is an obs-ish chain."""
    decomposed = astutil.is_none_check(test)
    if decomposed is None:
        return None
    chain, is_not_none = decomposed
    if chain.split(".")[-1] in OBS_SEGMENTS or _obs_chain(chain):
        return chain, is_not_none
    return None


def _guarded(node: ast.AST) -> bool:
    """Whether an obs touch at ``node`` sits behind a None-guard."""
    current: ast.AST = node
    for anc in astutil.ancestors(node):
        # Conditional expression: touch in the not-None arm.
        if isinstance(anc, ast.IfExp):
            guard = _is_guard_test(anc.test)
            if guard is not None:
                _, is_not_none = guard
                if is_not_none and current is anc.body:
                    return True
                if not is_not_none and current is anc.orelse:
                    return True
        # Guarding if-statement: touch in the matching branch.
        if isinstance(anc, ast.If):
            guard = _is_guard_test(anc.test)
            if guard is not None:
                _, is_not_none = guard
                in_body = any(current is s or _contains(s, current)
                              for s in anc.body)
                in_orelse = any(current is s or _contains(s, current)
                                for s in anc.orelse)
                if is_not_none and in_body:
                    return True
                if not is_not_none and in_orelse:
                    return True
        # Preceding early-return guard or assert in any enclosing block.
        for block in _blocks_of(anc):
            if current in block:
                idx = block.index(current)
                if _block_guards_tail(block[:idx]):
                    return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break
        current = anc
    return False


def _contains(tree: ast.AST, target: ast.AST) -> bool:
    return any(n is target for n in ast.walk(tree))


def _blocks_of(node: ast.AST) -> list[list[ast.stmt]]:
    blocks = []
    for field in ("body", "orelse", "finalbody"):
        stmts = getattr(node, field, None)
        if isinstance(stmts, list) and stmts and isinstance(stmts[0], ast.stmt):
            blocks.append(stmts)
    for handler in getattr(node, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


def _block_guards_tail(prefix: list[ast.stmt]) -> bool:
    """Does some statement in ``prefix`` guard everything after it?"""
    for stmt in prefix:
        if isinstance(stmt, ast.If):
            guard = _is_guard_test(stmt.test)
            if guard is not None and not guard[1] and astutil.terminates(stmt.body):
                return True  # if X is None: return/raise/continue
        if isinstance(stmt, ast.Assert):
            guard = _is_guard_test(stmt.test)
            if guard is not None and guard[1]:
                return True  # assert X is not None
    return False


class ObsGuard(Rule):
    code = "RPL003"
    name = "obs-guard"
    summary = (
        "trace/counter touches outside repro.obs must sit behind an "
        "'is not None' guard (zero overhead when disabled)"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if not in_scope(module.name, OBS_GUARD_PREFIXES):
            return
        if in_scope(module.name, OBS_EXEMPT_PREFIXES):
            return
        reported: set[tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            touch = self._touch_chain(node)
            if touch is None:
                continue
            key = (node.lineno, node.col_offset)
            if key in reported:
                continue
            if _guarded(node):
                continue
            reported.add(key)
            yield module.finding(
                self.code,
                f"unguarded observability touch '{touch}': wrap in "
                "'if <ref> is not None:' (or the early-return / "
                "conditional-expression variant) so disabled tracing "
                "stays zero-overhead",
                node,
            )

    @staticmethod
    def _touch_chain(node: ast.AST) -> str | None:
        """Dotted chain when ``node`` is an obs touch, else None."""
        if isinstance(node, ast.Call):
            chain = astutil.call_name(node)
            if chain is not None and _obs_chain(chain):
                return chain
            return None
        if isinstance(node, ast.AugAssign):
            chain = astutil.dotted(node.target)
            if chain is not None and _obs_chain(chain):
                return chain
            return None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                chain = astutil.dotted(target)
                if chain is not None and _obs_chain(chain):
                    return chain
            return None
        return None
