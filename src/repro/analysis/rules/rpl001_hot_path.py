"""RPL001 — hot-path purity.

The PR-3 kernel overhaul split every ``BitVector`` operation into a
validated public entry point (``rank1``/``select1``/...) and an
unchecked ``_*_u`` twin. Hot-path modules — the LTJ engine, the Ring,
the succinct K-NN structure and the wavelet tree itself — sit inside
per-result loops where the public ops' argument re-validation measured
as a multiple-x constant-factor tax, so they must call the ``_*_u``
kernels. The same modules must not fall back to ``np.searchsorted``
inside a loop: the plain-int ``bisect`` caches added in PR-3 exist
precisely because per-call numpy dispatch dominated the profile.

Note the banned set is the *BitVector* surface only.
``WaveletTree.rank/select/access`` are the paper's counted logical
operations — hot paths are *supposed* to call those (the golden
Figure-2 fixture counts them); their internals then bottom out in
``_*_u`` kernels, which is what this rule verifies.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    HOT_PATH_PREFIXES,
    VALIDATED_BITVECTOR_OPS,
    in_scope,
)
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


class HotPathPurity(Rule):
    code = "RPL001"
    name = "hot-path-purity"
    summary = (
        "hot-path modules must use unchecked _*_u BitVector kernels and "
        "bisect instead of np.searchsorted in loops"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if not in_scope(module.name, HOT_PATH_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = astutil.call_name(node)
            if chain is None:
                continue
            segments = chain.split(".")
            op = segments[-1]
            if op in VALIDATED_BITVECTOR_OPS and len(segments) > 1:
                yield module.finding(
                    self.code,
                    f"validated BitVector op '.{op}()' on the hot path; "
                    f"call the unchecked '._{op}_u()' kernel (arguments "
                    "here are in-range by construction)",
                    node,
                )
            elif op == "searchsorted":
                func = astutil.enclosing_function(node)
                if astutil.enclosing_loop(node, stop=func) is not None:
                    yield module.finding(
                        self.code,
                        "np.searchsorted inside a loop on the hot path; "
                        "use bisect over a plain-int cache (per-call "
                        "numpy dispatch dominates the profile here)",
                        node,
                    )
