"""RPL001 — hot-path purity.

The PR-3 kernel overhaul split every ``BitVector`` operation into a
validated public entry point (``rank1``/``select1``/...) and an
unchecked ``_*_u`` twin. Hot-path modules — the LTJ engine, the Ring,
the succinct K-NN structure and the wavelet tree itself — sit inside
per-result loops where the public ops' argument re-validation measured
as a multiple-x constant-factor tax, so they must call the ``_*_u``
kernels. The same modules must not fall back to ``np.searchsorted``
inside a loop: the plain-int ``bisect`` caches added in PR-3 exist
precisely because per-call numpy dispatch dominated the profile.

Note the banned set is the *BitVector* surface only.
``WaveletTree.rank/select/access`` are the paper's counted logical
operations — hot paths are *supposed* to call those (the golden
Figure-2 fixture counts them); their internals then bottom out in
``_*_u`` kernels, which is what this rule verifies.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    HOT_PATH_PREFIXES,
    INT_MIRRORED_ARRAY_ATTRS,
    VALIDATED_BITVECTOR_OPS,
    in_scope,
)
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


class HotPathPurity(Rule):
    code = "RPL001"
    name = "hot-path-purity"
    summary = (
        "hot-path modules must use unchecked _*_u BitVector kernels, "
        "bisect instead of np.searchsorted in loops, and the plain-int "
        "_i mirrors instead of indexing canonical numpy arrays"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if not in_scope(module.name, HOT_PATH_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node)
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = astutil.call_name(node)
            if chain is None:
                continue
            segments = chain.split(".")
            op = segments[-1]
            if op in VALIDATED_BITVECTOR_OPS and len(segments) > 1:
                yield module.finding(
                    self.code,
                    f"validated BitVector op '.{op}()' on the hot path; "
                    f"call the unchecked '._{op}_u()' kernel (arguments "
                    "here are in-range by construction)",
                    node,
                )
            elif op == "searchsorted":
                mirrored = self._mirrored_searchsorted_arg(node)
                if mirrored is not None:
                    yield module.finding(
                        self.code,
                        f"np.searchsorted over a slice of canonical "
                        f"array '.{mirrored}' allocates a view and "
                        f"re-enters numpy dispatch per call; use "
                        f"bisect with lo/hi bounds on the plain "
                        f"'.{mirrored}_i' mirror instead",
                        node,
                    )
                    continue
                func = astutil.enclosing_function(node)
                if astutil.enclosing_loop(node, stop=func) is not None:
                    yield module.finding(
                        self.code,
                        "np.searchsorted inside a loop on the hot path; "
                        "use bisect over a plain-int cache (per-call "
                        "numpy dispatch dominates the profile here)",
                        node,
                    )

    @staticmethod
    def _mirrored_searchsorted_arg(node: ast.Call) -> str | None:
        """The mirrored-attribute name when ``searchsorted``'s haystack
        is (a slice of) a canonical mirrored array.

        Fires with or without an enclosing loop: range_within-style
        helpers are themselves called once per leap, so the loop is in
        the caller and invisible to a file-local check.
        """
        if not node.args:
            return None
        haystack = node.args[0]
        if isinstance(haystack, ast.Subscript):
            haystack = haystack.value
        if (
            isinstance(haystack, ast.Attribute)
            and haystack.attr in INT_MIRRORED_ARRAY_ATTRS
        ):
            return haystack.attr
        return None

    def _check_subscript(
        self, module: "ModuleInfo", node: ast.Subscript
    ) -> Iterator["Finding"]:
        """Flag element reads of canonical arrays that have ``_i`` mirrors.

        ``x._counts[c]`` yields a ``numpy.int64`` that re-enters numpy
        dispatch on every later arithmetic op — and on shm/mmap-attached
        structures the canonical array is a view over a shared buffer,
        making the ``_i`` mirror the coercion boundary that keeps numpy
        scalars out of the hot path. Slices and writes stay vectorized
        and are exempt.
        """
        if not isinstance(node.ctx, ast.Load):
            return
        if isinstance(node.slice, ast.Slice):
            return
        value = node.value
        if not isinstance(value, ast.Attribute):
            return
        if value.attr not in INT_MIRRORED_ARRAY_ATTRS:
            return
        yield module.finding(
            self.code,
            f"element read of canonical array '.{value.attr}[...]' on "
            f"the hot path yields a numpy scalar; index the plain-int "
            f"'.{value.attr}_i' mirror instead (slices are exempt — "
            "they stay vectorized)",
            node,
        )
