"""RPL002 — op counter must be bumped before the memo lookup.

The wavelet tree memoizes ``rank``/``range_next_value`` per query. The
traced logical op counts are the repo's ground truth (the golden
Figure-2 fixture diffs them exactly), so they must be *memo-invariant*:
a memo hit has to count exactly like a miss. The convention that
guarantees this is ordering — the ``self.ops.<op> += 1`` increment
happens before the ``self._memo_*`` cache is consulted.

This rule approximates "increment dominates lookup" with a linear
statement-order walk (sound for the straight-line wrapper methods it
patrols): inside each class of a memoized module, any public method
that reads a ``_memo_*`` attribute — directly or via private helpers
of the same class — must contain an ``ops`` counter increment at an
earlier source line. ``_memo_users`` and friends are refcounting
bookkeeping, not caches, and are ignored.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    MEMO_ATTR_PREFIX,
    MEMO_BOOKKEEPING_ATTRS,
    MEMOIZED_PREFIXES,
    in_scope,
)
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


def _memo_read_line(func: ast.FunctionDef | ast.AsyncFunctionDef) -> int | None:
    """First line where ``func`` reads a ``self._memo_*`` cache."""
    first: int | None = None
    for node in ast.walk(func):
        if not isinstance(node, ast.Attribute):
            continue
        if not node.attr.startswith(MEMO_ATTR_PREFIX):
            continue
        if node.attr in MEMO_BOOKKEEPING_ATTRS:
            continue
        if isinstance(node.ctx, ast.Load):
            if first is None or node.lineno < first:
                first = node.lineno
    return first


def _ops_increment_line(func: ast.FunctionDef | ast.AsyncFunctionDef) -> int | None:
    """First line where ``func`` bumps an op counter (``x.ops.y += 1``)."""
    first: int | None = None
    for node in ast.walk(func):
        if not isinstance(node, ast.AugAssign):
            continue
        chain = astutil.dotted(node.target)
        if chain is None:
            continue
        segments = chain.split(".")
        if "ops" in segments[:-1] or segments[0] == "ops":
            if first is None or node.lineno < first:
                first = node.lineno
    return first


def _self_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[str, int]]:
    """``(method_name, lineno)`` for every ``self.<m>(...)`` call."""
    calls: list[tuple[str, int]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        chain = astutil.call_name(node)
        if chain is None:
            continue
        segments = chain.split(".")
        if len(segments) == 2 and segments[0] == "self":
            calls.append((segments[1], node.lineno))
    return calls


class CounterBeforeMemo(Rule):
    code = "RPL002"
    name = "counter-before-memo"
    summary = (
        "in memoized wrappers the op-counter increment must precede the "
        "memo lookup (traced counts stay memo-invariant)"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if not in_scope(module.name, MEMOIZED_PREFIXES):
            return
        for klass in ast.walk(module.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            yield from self._check_class(module, klass)

    def _check_class(
        self, module: "ModuleInfo", klass: ast.ClassDef
    ) -> Iterator["Finding"]:
        methods = {
            stmt.name: stmt
            for stmt in klass.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        memo_line = {name: _memo_read_line(f) for name, f in methods.items()}
        inc_line = {name: _ops_increment_line(f) for name, f in methods.items()}

        # ``exposed[m]`` = earliest line at which method ``m`` reaches a
        # memo lookup that is NOT preceded (in source order) by an op
        # increment inside ``m`` itself. Propagate through self-calls to
        # a fixpoint so private helpers inherit their callers' cover.
        exposed: dict[str, int | None] = {}
        for name in methods:
            line = memo_line[name]
            if line is not None and (inc_line[name] is None or inc_line[name] >= line):
                exposed[name] = line
            else:
                exposed[name] = None
        changed = True
        while changed:
            changed = False
            for name, func in methods.items():
                for callee, call_line in _self_calls(func):
                    if callee == name or exposed.get(callee) is None:
                        continue
                    covered = inc_line[name] is not None and inc_line[name] < call_line
                    if not covered and (
                        exposed[name] is None or call_line < exposed[name]
                    ):
                        exposed[name] = call_line
                        changed = True

        for name, func in methods.items():
            if name.startswith("_"):
                continue  # private helpers are judged via their callers
            line = exposed.get(name)
            if line is not None:
                yield module.finding(
                    self.code,
                    f"'{klass.name}.{name}' consults a _memo_* cache "
                    "without first incrementing the op counter; a memo "
                    "hit must count exactly like a miss or traced op "
                    "counts become cache-dependent",
                    line=line,
                )
