"""RPL004 — determinism of the traced op-count pass.

The bench harness replays every query under a trace and diffs the
logical op counts *exactly* — across runs, machines and Python
versions. Anything reachable from that pass (computed over the import
graph from ``repro.bench.harness`` and ``repro.engines``) therefore
must not:

* consult wall-clock time (``time.time``, ``datetime.now`` — only
  ``time.perf_counter`` is sanctioned, and only for wall-time fields
  the diff normalizes away),
* iterate a ``set`` where the order can leak into results
  (``for x in set(...)``, ``list({...})`` — sort first).

Unseeded randomness is checked *repo-wide*, not just in the reachable
set: ``np.random.default_rng()`` without a seed, the legacy global
``np.random.*`` entry points, and the stateful ``random`` module all
make dataset builders and demos irreproducible, which is how a
"repro" repo dies. Pass an explicit seed (``default_rng(seed)``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    DETERMINISM_ROOTS,
    NUMPY_GLOBAL_RNG_FNS,
    WALL_CLOCK_CALLS,
)
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


def _imports_random_module(module: "ModuleInfo") -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
    return False


#: Consumers that erase iteration order: a set iterated directly inside
#: one of these calls cannot leak hash order into results.
_ORDER_INSENSITIVE_CONSUMERS: frozenset[str] = frozenset(
    {"sorted", "min", "max", "sum", "len", "set", "frozenset",
     "any", "all", "Counter"}
)


def _order_erased(node: ast.AST) -> bool:
    """Whether ``node`` feeds an order-insensitive consumer.

    ``sorted(x for x in some_set)`` iterates the set but cannot leak its
    order; climb the expression ancestors looking for such a call.
    """
    for anc in astutil.ancestors(node):
        if isinstance(anc, ast.stmt):
            return False
        if isinstance(anc, ast.Call):
            chain = astutil.call_name(anc)
            if chain is not None and chain.split(".")[-1] in (
                _ORDER_INSENSITIVE_CONSUMERS
            ):
                return True
    return False


def _is_set_producer(expr: ast.expr) -> bool:
    """Syntactically a set: ``set(...)`` call, set literal, set comp."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        chain = astutil.call_name(expr)
        if chain == "set":
            return True
        # ``a | b`` unions etc. are out of syntactic reach; methods that
        # obviously return sets:
        if chain is not None and chain.split(".")[-1] in {
            "intersection", "union", "difference", "symmetric_difference",
        }:
            return True
    return False


class Determinism(Rule):
    code = "RPL004"
    name = "determinism"
    summary = (
        "no wall-clock reads or order-leaking set iteration reachable "
        "from the traced pass; no unseeded randomness anywhere"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if not module.name.startswith("repro"):
            return
        reachable = module.name in project.reachable_from(DETERMINISM_ROOTS)
        uses_random_mod = _imports_random_module(module)

        # Names bound to set-producing expressions, per function scope,
        # for the iteration-order check.
        set_names = _set_bound_names(module.tree)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, reachable, uses_random_mod
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)) and reachable:
                yield from self._check_iteration(module, node.iter, set_names)
            elif isinstance(node, ast.comprehension) and reachable:
                yield from self._check_iteration(module, node.iter, set_names)

    # ------------------------------------------------------------------
    def _check_call(
        self,
        module: "ModuleInfo",
        node: ast.Call,
        reachable: bool,
        uses_random_mod: bool,
    ) -> Iterator["Finding"]:
        chain = astutil.call_name(node)
        if chain is None:
            return
        segments = chain.split(".")

        # Unseeded np.random.default_rng() — repo-wide.
        if segments[-1] == "default_rng" and not node.args and not node.keywords:
            yield module.finding(
                self.code,
                "np.random.default_rng() without a seed: results are "
                "irreproducible; pass an explicit seed",
                node,
            )
            return

        # Legacy global numpy RNG (np.random.rand & co) — repo-wide.
        if (
            len(segments) >= 2
            and segments[-2] == "random"
            and segments[-1] in NUMPY_GLOBAL_RNG_FNS
            and segments[0] in {"np", "numpy"}
        ):
            yield module.finding(
                self.code,
                f"legacy global numpy RNG 'np.random.{segments[-1]}': "
                "use a seeded np.random.default_rng(seed) generator",
                node,
            )
            return

        # Stateful ``random`` module — repo-wide (when imported).
        if uses_random_mod and len(segments) == 2 and segments[0] == "random":
            yield module.finding(
                self.code,
                f"stateful 'random.{segments[1]}' call: global RNG state "
                "is unseeded/shared; use a seeded "
                "np.random.default_rng(seed) or random.Random(seed)",
                node,
            )
            return

        # Wall clock — only in code reachable from the traced pass.
        if reachable and (
            chain in WALL_CLOCK_CALLS
            or any(chain.endswith("." + w) for w in WALL_CLOCK_CALLS)
        ):
            yield module.finding(
                self.code,
                f"wall-clock read '{chain}' is reachable from the traced "
                "op-count pass; op counts must not depend on time "
                "(time.perf_counter is allowed for wall-time fields)",
                node,
            )

    def _check_iteration(
        self,
        module: "ModuleInfo",
        iter_expr: ast.expr,
        set_names: set[str],
    ) -> Iterator["Finding"]:
        leaky = _is_set_producer(iter_expr) or (
            isinstance(iter_expr, ast.Name) and iter_expr.id in set_names
        )
        if leaky and not _order_erased(iter_expr):
            yield module.finding(
                self.code,
                "iteration over a set in code reachable from the traced "
                "pass: hash order can leak into results; iterate "
                "sorted(...) instead",
                iter_expr,
            )


def _set_bound_names(tree: ast.AST) -> set[str]:
    """Local names assigned from set-producing expressions.

    Names later re-bound to sorted(...)/list(...) are removed — the
    common fix pattern ``s = set(...); items = sorted(s)`` must not
    keep flagging ``s`` if it is never iterated.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if _is_set_producer(node.value):
                    names.add(target.id)
                elif target.id in names:
                    names.discard(target.id)
    return names
