"""RPL010 — thread/fork shared-state must be lock-guarded or declared.

The serving stack runs three execution domains over one address space
(plus forked children): the asyncio **loop** thread, the single
**dispatch** thread behind ``run_in_executor``, and pool **workers**
(separate processes attached to the same shm segments). State races
hide in the seams:

- an instance attribute written on the dispatch thread and read from
  the loop (or vice versa) without a lock is a data race — Python's
  GIL orders the bytecodes but not the *invariants*;
- a module global written by parent-side code and read post-fork by a
  worker silently diverges: the child keeps the pre-fork snapshot.

Side classification is syntactic and conservative: dispatch-side roots
are callables passed to ``run_in_executor``/``to_thread``/``submit``/
``Thread``; worker-side roots are ``submit``/``apply_async`` targets,
``initializer=`` callables, and everything defined in the declared
``FORK_SIDE_MODULES``; loop-side roots are the ``async def`` bodies.
Each side closes transitively over resolved *sync* call edges (calling
an ``async def`` schedules it on the loop regardless of the caller's
thread, so async callees never migrate a side).

An access is exempt when it happens under ``with <something named
*lock*>:`` or when the ``(owner, attribute)`` pair is listed in
``DECLARED_THREAD_SAFE`` — the reviewed ownership ledger in
``repro/analysis/config.py`` that makes every known-safe handoff a
deliberate, documented decision instead of folklore.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    DECLARED_THREAD_SAFE,
    FORK_SIDE_MODULES,
    THREAD_SPAWN_CALLS,
    THREAD_STATE_PREFIXES,
    in_scope,
)
from repro.analysis.rules.base import Rule
from repro.analysis.summaries import CallIndex, FunctionInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project

#: Worker-side spawn verbs (cross a *process* boundary).
_WORKER_SPAWN = frozenset({"submit", "apply_async", "map_async"})

LOOP, DISPATCH, WORKER = "loop", "dispatch", "worker"


@dataclass
class _Access:
    func: FunctionInfo
    node: ast.AST
    line: int
    is_write: bool
    guarded: bool


def _is_lock_guarded(node: ast.AST) -> bool:
    for anc in astutil.ancestors(node):
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                chain = astutil.dotted(expr)
                if chain is not None and "lock" in chain.lower():
                    return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


def _module_globals(module: "ModuleInfo") -> frozenset[str]:
    names: set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return frozenset(names)


class ThreadForkSharedState(Rule):
    code = "RPL010"
    name = "thread-fork-shared-state"
    summary = (
        "state shared across the loop/dispatch/worker domains must be "
        "lock-guarded or listed in DECLARED_THREAD_SAFE"
    )

    def __init__(self) -> None:
        self._cache: dict[int, tuple[CallIndex, dict[str, set[str]]]] = {}

    # ------------------------------------------------------------------
    # side classification
    # ------------------------------------------------------------------
    def _index_for(
        self, project: "Project"
    ) -> tuple[CallIndex, dict[str, set[str]]]:
        key = id(project)
        if key in self._cache:
            return self._cache[key]
        modules = [
            m
            for m in project.modules
            if in_scope(m.name, THREAD_STATE_PREFIXES)
        ]
        index = CallIndex(modules)
        sides = {
            LOOP: self._close(
                index,
                {k for k, i in index.functions.items() if i.is_async},
            ),
            DISPATCH: self._close(index, self._spawn_roots(index, False)),
            WORKER: self._close(
                index,
                self._spawn_roots(index, True)
                | {
                    k
                    for k, i in index.functions.items()
                    if i.ref.module in FORK_SIDE_MODULES
                },
            ),
        }
        self._cache.clear()
        self._cache[key] = (index, sides)
        return index, sides

    def _spawn_roots(self, index: CallIndex, worker: bool) -> set[str]:
        verbs = _WORKER_SPAWN if worker else THREAD_SPAWN_CALLS
        roots: set[str] = set()
        for info in index.functions.values():
            for site in info.calls:
                refs: list[ast.expr] = []
                if astutil.last_segment(site.name) in verbs:
                    refs.extend(site.node.args)
                    refs.extend(kw.value for kw in site.node.keywords)
                elif worker:
                    # ``initializer=fn`` on any pool constructor runs
                    # ``fn`` once per worker process, post-fork.
                    refs.extend(
                        kw.value
                        for kw in site.node.keywords
                        if kw.arg == "initializer"
                    )
                for ref in refs:
                    chain = astutil.dotted(ref)
                    if chain is None:
                        continue
                    target = index._resolve(info, chain)
                    if target is not None:
                        roots.add(target.key)
        return roots

    @staticmethod
    def _close(index: CallIndex, roots: set[str]) -> set[str]:
        seen = set(roots)
        work = list(roots)
        while work:
            info = index.functions.get(work.pop())
            if info is None:
                continue
            for site in info.calls:
                if site.target is None or site.target.key in seen:
                    continue
                callee = index.functions[site.target.key]
                if callee.is_async:
                    continue  # runs on the loop, not the caller's thread
                seen.add(site.target.key)
                work.append(site.target.key)
        return seen

    # ------------------------------------------------------------------
    # access collection
    # ------------------------------------------------------------------
    @staticmethod
    def _accesses(
        info: FunctionInfo, globals_: frozenset[str]
    ) -> dict[tuple[str, str], list[_Access]]:
        """``(owner, name) -> accesses`` for one function body.

        Owner is the enclosing class name for ``self.X`` touches and
        the module dotted name for module-global touches.
        """
        out: dict[tuple[str, str], list[_Access]] = {}
        declared_global: set[str] = {
            name
            for node in ast.walk(info.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        for node in ast.walk(info.node):
            key: tuple[str, str] | None = None
            is_write = False
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and info.class_name is not None
            ):
                key = (info.class_name, node.attr)
                is_write = isinstance(node.ctx, (ast.Store, ast.Del))
            elif isinstance(node, ast.Name) and node.id in globals_:
                key = (info.ref.module, node.id)
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    if node.id not in declared_global:
                        continue  # a local shadowing the global
                    is_write = True
                else:
                    # Container mutation through the global binding:
                    # ``G[k] = v`` / ``G.pop(...)`` write shared state.
                    up = astutil.parent(node)
                    if isinstance(up, ast.Subscript) and isinstance(
                        up.ctx, (ast.Store, ast.Del)
                    ):
                        is_write = True
            if key is None:
                continue
            out.setdefault(key, []).append(
                _Access(
                    info,
                    node,
                    getattr(node, "lineno", info.node.lineno),
                    is_write,
                    _is_lock_guarded(node),
                )
            )
        return out

    # ------------------------------------------------------------------
    # rule body
    # ------------------------------------------------------------------
    def check(
        self, module: "ModuleInfo", project: "Project"
    ) -> Iterator["Finding"]:
        if not in_scope(module.name, THREAD_STATE_PREFIXES):
            return
        index, sides = self._index_for(project)
        globals_by_module = {
            m.name: _module_globals(m)
            for m in project.modules
            if in_scope(m.name, THREAD_STATE_PREFIXES)
        }

        # (owner, name) -> side -> accesses, over the WHOLE indexed
        # surface (conflicts cross modules); report only pairs whose
        # conflicting *write* lives in the module under check.
        table: dict[tuple[str, str], dict[str, list[_Access]]] = {}
        for key, info in index.functions.items():
            member_sides = [s for s in (LOOP, DISPATCH, WORKER) if key in sides[s]]
            if not member_sides:
                continue
            per_fn = self._accesses(
                info, globals_by_module.get(info.ref.module, frozenset())
            )
            for owner_name, accesses in per_fn.items():
                slot = table.setdefault(owner_name, {})
                for side in member_sides:
                    slot.setdefault(side, []).extend(accesses)

        for owner_name in sorted(table):
            owner, name = owner_name
            if (owner, name) in DECLARED_THREAD_SAFE or (
                "*",
                name,
            ) in DECLARED_THREAD_SAFE:
                continue
            if owner in FORK_SIDE_MODULES:
                continue  # whole module declared worker-owned
            per_side = table[owner_name]
            yield from self._conflicts(
                module, owner, name, per_side, LOOP, DISPATCH
            )
            yield from self._conflicts(
                module, owner, name, per_side, DISPATCH, LOOP
            )
            # Fork divergence: parent-side writes invisible post-fork.
            for parent in (LOOP, DISPATCH):
                yield from self._conflicts(
                    module, owner, name, per_side, parent, WORKER
                )
                yield from self._conflicts(
                    module, owner, name, per_side, WORKER, parent
                )

    def _conflicts(
        self,
        module: "ModuleInfo",
        owner: str,
        name: str,
        per_side: dict[str, list[_Access]],
        write_side: str,
        touch_side: str,
    ) -> Iterator["Finding"]:
        writes = [
            a
            for a in per_side.get(write_side, ())
            if a.is_write and not a.guarded
        ]
        touches = [
            a for a in per_side.get(touch_side, ()) if not a.guarded
        ]
        for write in writes:
            if write.func.ref.module != module.name:
                continue
            witnesses = [
                t for t in touches if t.node is not write.node
            ]
            if not witnesses:
                continue
            other = witnesses[0]
            yield module.finding(
                self.code,
                f"'{owner}.{name}' is written on the {write_side} side "
                f"in '{write.func.node.name}' and touched on the "
                f"{touch_side} side in '{other.func.node.name}' (line "
                f"{other.line}) without a lock; guard both with a "
                "shared lock or add the pair to DECLARED_THREAD_SAFE "
                "with its ownership argument",
                write.node,
            )
            break  # one finding per (owner, name, direction)
