"""Rule interface for reprolint."""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


class Rule:
    """One invariant check.

    Subclasses set ``code`` (``"RPLxxx"``), ``name`` (short slug) and
    ``summary`` (one line, shown by ``repro lint --list-rules``), and
    implement :meth:`check` yielding findings for one module. The full
    rationale lives in the class docstring and ``docs/static-analysis.md``.
    """

    code: str = "RPL999"
    name: str = "unnamed"
    summary: str = ""

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rule {self.code} {self.name}>"
