"""RPL006 — annotation completeness on the strict-typed packages.

``repro.succinct``, ``repro.ltj``, ``repro.ring`` and ``repro.bounds``
are gated by ``mypy --strict`` in CI (see ``[tool.mypy]`` in
pyproject.toml). mypy itself is not a runtime dependency, so this rule
is the in-container approximation that keeps the gate honest between CI
runs: every function in a gated package must annotate every parameter
(``self``/``cls`` excepted) and its return type. It will not catch
type *errors* — only CI's real mypy run does — but it catches the
failure mode that actually erodes strict gates: unannotated defs, which
``--strict`` rejects wholesale.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import TYPED_PREFIXES, in_scope
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


class StrictTyping(Rule):
    code = "RPL006"
    name = "strict-typing"
    summary = (
        "functions in mypy-strict-gated packages must annotate all "
        "parameters and the return type"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if not in_scope(module.name, TYPED_PREFIXES):
            return
        for func in astutil.walk_functions(module.tree):
            missing: list[str] = []
            args = func.args
            positional = list(args.posonlyargs) + list(args.args)
            in_class = astutil.class_of(func) is not None
            is_static = any(
                isinstance(dec, ast.Name) and dec.id == "staticmethod"
                for dec in func.decorator_list
            )
            skip_first = in_class and not is_static
            for i, arg in enumerate(positional):
                if skip_first and i == 0:
                    continue  # self / cls
                if arg.annotation is None:
                    missing.append(arg.arg)
            for arg in args.kwonlyargs:
                if arg.annotation is None:
                    missing.append(arg.arg)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if func.returns is None:
                missing.append("return")
            if missing:
                yield module.finding(
                    self.code,
                    f"'{func.name}' is missing annotations "
                    f"({', '.join(missing)}); this package is gated by "
                    "mypy --strict in CI",
                    func,
                )
