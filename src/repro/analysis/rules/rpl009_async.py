"""RPL009 — no blocking call reachable from the asyncio loop.

``repro.serve`` runs one asyncio event loop; every request, health
check and metrics scrape shares it. A single blocking call inside an
``async def`` — ``time.sleep``, a scheduler round trip, a future
``result()``, sync socket/file IO — stalls *every* connected client
for its duration. The sanctioned escape is the dispatch-thread
boundary: hand the blocking callable **by reference** to
``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)`` and await
the future.

The rule combines two tiers:

- **direct**: a call site inside an ``async def`` (in ``repro.serve``)
  whose dotted name is in ``BLOCKING_CALLS`` or whose last segment is
  in ``BLOCKING_METHODS``;
- **transitive**: a call site whose callee — resolved through the
  call-summary layer (``self.m``, same-module names, imported project
  functions) — reaches a blocking primitive through any chain of
  ordinary calls. The reported message carries the witness chain.

Reference-passing is invisible to the call graph by construction, so
the executor boundary needs no special casing: a worker function handed
to ``run_in_executor`` is never a *call* from the async body.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    ASYNC_PREFIXES,
    BLOCKING_CALLS,
    BLOCKING_METHODS,
    in_scope,
)
from repro.analysis.rules.base import Rule
from repro.analysis.summaries import (
    CallIndex,
    CallSite,
    modules_reachable_from,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


def _blocking_reason(site: CallSite) -> str | None:
    if site.name in BLOCKING_CALLS:
        return f"'{site.name}()' blocks the calling thread"
    if astutil.last_segment(site.name) in BLOCKING_METHODS:
        return (
            f"'{site.name}()' is a blocking primitive "
            f"('.{astutil.last_segment(site.name)}()')"
        )
    return None


class NoBlockingInAsync(Rule):
    code = "RPL009"
    name = "blocking-in-async"
    summary = (
        "async defs in repro.serve must not reach blocking calls "
        "except via the run_in_executor dispatch-thread boundary"
    )

    def __init__(self) -> None:
        self._index_cache: dict[int, CallIndex] = {}

    def _index_for(self, project: "Project") -> CallIndex:
        key = id(project)
        if key not in self._index_cache:
            self._index_cache.clear()  # one project at a time
            self._index_cache[key] = CallIndex(
                modules_reachable_from(project, ASYNC_PREFIXES)
            )
        return self._index_cache[key]

    def check(
        self, module: "ModuleInfo", project: "Project"
    ) -> Iterator["Finding"]:
        if not in_scope(module.name, ASYNC_PREFIXES):
            return
        index = self._index_for(project)

        # Tier 2 seeds: every indexed function with a direct blocking
        # call, closed over resolved call edges. Async functions are
        # excluded as propagation *carriers*: calling an async def
        # returns a coroutine without running it.
        seeds: dict[str, str] = {}
        for key, info in index.functions.items():
            if info.is_async:
                continue
            for site in info.calls:
                reason = _blocking_reason(site)
                if reason is not None:
                    seeds[key] = reason
                    break
        blocked = index.propagate(seeds)

        for key in sorted(index.functions):
            info = index.functions[key]
            if info.module.name != module.name or not info.is_async:
                continue
            for site in info.calls:
                reason = _blocking_reason(site)
                if reason is not None:
                    yield module.finding(
                        self.code,
                        f"async '{info.node.name}' calls a blocking "
                        f"primitive: {reason}; hand it to the dispatch "
                        "thread via loop.run_in_executor(...) instead",
                        site.node,
                    )
                    continue
                if site.target is not None and site.target.key in blocked:
                    chain = " -> ".join(blocked[site.target.key])
                    yield module.finding(
                        self.code,
                        f"async '{info.node.name}' reaches a blocking "
                        f"call through '{site.name}()': {chain}; cross "
                        "the dispatch-thread boundary "
                        "(loop.run_in_executor) before blocking",
                        site.node,
                    )
