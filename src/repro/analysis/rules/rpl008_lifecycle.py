"""RPL008 — resource lifecycle must close on every CFG path.

The runtime layers around the LTJ core (``repro.parallel``,
``repro.store``, ``repro.serve``) acquire OS-visible resources — shm
segments, mmap mappings, worker pools, sockets, mmap-backed stores.
Leaking one is invisible to the test suite's happy paths and very
visible in a long-running server. Until now leak checking was runtime
only (the ``_CREATED`` registry asserts in tests); this rule proves the
property *statically*, per function, over the CFG: a local variable
bound to a resource constructor must be dead — released, stored,
returned, or handed off — by the time control reaches the function's
``EXIT`` **and** ``RAISE`` nodes. The exception edges are the point:
``shm = SharedMemory(...)`` followed by a fallible call leaks the
segment exactly when that call raises.

A fact ``(var, line)`` is *generated* by ``var = <ResourceCall>(...)``
(tuple targets take the first name — resource-returning helpers put
the resource first by convention) and *killed* when the variable:

- receives a release method call (``close``/``unlink``/``terminate``/
  ``shutdown``/``join``/``stop``/``release``),
- is returned or yielded (ownership moves to the caller),
- is stored into an attribute/subscript (an owner object adopts it),
- is passed as a bare argument to any call (registries, constructors
  and helpers adopt or manage it),
- is rebound or ``del``-ed, or
- is the context expression of a ``with`` (managed release).

Facts still live entering ``EXIT`` or ``RAISE`` are reported at their
acquisition line, saying which paths leak.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.cfg import CFG, build_cfg, _Builder
from repro.analysis.config import (
    RESOURCE_CALLS,
    RESOURCE_PREFIXES,
    RESOURCE_RELEASE_METHODS,
    in_scope,
)
from repro.analysis.dataflow import solve_forward
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project

#: A dataflow fact: this acquisition may still be unreleased.
Fact = tuple[str, int]  # (variable name, acquisition line)


def _acquisition(stmt: ast.stmt) -> tuple[str, ast.Call] | None:
    """``(bound name, call)`` when ``stmt`` binds a resource constructor."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return None
    if isinstance(value, ast.Await):
        value = value.value
    if not isinstance(value, ast.Call):
        return None
    name = astutil.call_name(value)
    if name is None or astutil.last_segment(name) not in RESOURCE_CALLS:
        return None
    if isinstance(target, ast.Name):
        return target.id, value
    if (
        isinstance(target, ast.Tuple)
        and target.elts
        and isinstance(target.elts[0], ast.Name)
    ):
        # Resource-first convention for multi-value helpers
        # (e.g. ``mapping, size = _map_file(path)``).
        return target.elts[0].id, value
    return None


def _released_names(stmt: ast.stmt, tracked: frozenset[str]) -> set[str]:
    """Variables release-called or adopted at this statement.

    Unlike the full kill set, these apply on *exception* edges too: a
    release call that raises has still consumed the handle, and once a
    resource is handed to an adopting callee (``registry.append(shm)``),
    error cleanup is the adopter's job, not this function's.
    """
    released: set[str] = set()
    for root in _Builder._header_exprs(stmt):
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in RESOURCE_RELEASE_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in tracked
            ):
                released.add(func.value.id)
            released.update(
                name for name in _adopted_names(node) if name in tracked
            )
    return released


def _adopted_names(call: ast.Call) -> set[str]:
    """Bare-name arguments handed off to an *adopting* callee.

    Only receiver methods (``registry.append(shm)``) and constructors
    (Uppercase initial: the new object owns it) adopt. A plain helper
    *using* the resource (``_validated_header(path, mapping, ...)``)
    does not, and its exceptions still leak.
    """
    func = call.func
    callee = astutil.call_name(call)
    adopts = isinstance(func, ast.Attribute) or (
        callee is not None and astutil.last_segment(callee)[:1].isupper()
    )
    if not adopts:
        return set()
    names: set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Starred):
            arg = arg.value
        if isinstance(arg, ast.Name):
            names.add(arg.id)
    return names


def _killed_names(stmt: ast.stmt, tracked: frozenset[str]) -> set[str]:
    """Variables whose facts die at this statement header."""
    killed: set[str] = set()

    def note(name: str) -> None:
        if name in tracked:
            killed.add(name)

    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                note(target.id)
        return killed
    if isinstance(stmt, (ast.Return, ast.Expr)):
        payload = stmt.value
        if isinstance(payload, (ast.Yield, ast.YieldFrom)):
            payload = payload.value
        if payload is not None:
            for node in ast.walk(payload):
                if isinstance(node, ast.Name):
                    note(node.id)
        if isinstance(stmt, ast.Return):
            return killed
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                note(target.id)  # rebind
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                for node in ast.walk(stmt.value):
                    if isinstance(node, ast.Name):
                        note(node.id)  # adopted by an owner object
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        note(elt.id)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            for node in ast.walk(item.context_expr):
                if isinstance(node, ast.Name):
                    note(node.id)  # managed by the context

    for root in _Builder._header_exprs(stmt):
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in RESOURCE_RELEASE_METHODS
                and isinstance(func.value, ast.Name)
            ):
                note(func.value.id)  # explicit release
            for name in _adopted_names(node):
                note(name)  # handed off to an adopting callee
    return killed


class ResourceLifecycle(Rule):
    code = "RPL008"
    name = "resource-lifecycle"
    summary = (
        "shm/mmap/pool/socket/store acquisitions must be released, "
        "stored, or handed off on every CFG path, exception edges "
        "included"
    )

    def check(
        self, module: "ModuleInfo", project: "Project"
    ) -> Iterator["Finding"]:
        if not in_scope(module.name, RESOURCE_PREFIXES):
            return
        for func in astutil.walk_functions(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: "ModuleInfo", func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator["Finding"]:
        cfg = build_cfg(func)
        acquisitions: dict[int, list[tuple[Fact, str]]] = {}
        all_facts: list[tuple[Fact, str]] = []
        for node in cfg.nodes:
            if node.stmt is None or node.label.startswith("WithExit"):
                continue
            acquired = _acquisition(node.stmt)
            if acquired is None:
                continue
            name, call = acquired
            fact = (name, node.stmt.lineno)
            entry = (fact, astutil.call_name(call) or "?")
            acquisitions.setdefault(node.index, []).append(entry)
            all_facts.append(entry)
        if not all_facts:
            return
        tracked = frozenset(fact[0] for fact, _ in all_facts)
        facts_by_name: dict[str, set[Fact]] = {}
        for fact, _ in all_facts:
            facts_by_name.setdefault(fact[0], set()).add(fact)

        def facts_for(names: set[str]) -> frozenset[Fact]:
            return frozenset(
                fact
                for name in names
                for fact in facts_by_name.get(name, ())
            )

        def transfer(index: int) -> tuple[frozenset[Fact], frozenset[Fact]]:
            node = cfg.nodes[index]
            if node.stmt is None:
                return frozenset(), frozenset()
            kill = facts_for(_killed_names(node.stmt, tracked))
            gen = frozenset(
                fact for fact, _ in acquisitions.get(index, ())
            )
            return gen, kill

        def exception_transfer(
            index: int,
        ) -> tuple[frozenset[Fact], frozenset[Fact]]:
            node = cfg.nodes[index]
            if node.stmt is None:
                return frozenset(), frozenset()
            return frozenset(), facts_for(
                _released_names(node.stmt, tracked)
            )

        in_facts, _out = solve_forward(
            cfg, transfer, exception_transfer=exception_transfer
        )
        leak_normal = in_facts[cfg.exit]
        leak_raise = in_facts[cfg.raise_exit]
        for fact, callname in all_facts:
            name, line = fact
            on_normal = fact in leak_normal
            on_raise = fact in leak_raise
            if not (on_normal or on_raise):
                continue
            if on_normal:
                paths = "on some paths to function exit"
            else:
                paths = "when an exception escapes"
            yield module.finding(
                self.code,
                f"'{name}' acquired from '{callname}()' in "
                f"'{func.name}' may leak {paths}; release it "
                "(close/unlink/shutdown), store it on an owner, or "
                "hand it off on every path — exception edges included",
                _anchor(func, line),
            )


def _anchor(func: ast.FunctionDef | ast.AsyncFunctionDef, line: int) -> ast.stmt:
    """The statement at ``line`` (for finding location/suppression)."""
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and getattr(node, "lineno", None) == line:
            return node
    return func
