"""RPL007 — shm-only index transport inside ``repro.parallel``.

The PR-5 worker pool shipped the succinct indexes to workers by
pickling them (directly, or implicitly via fork-less ``Pool`` initargs
carrying the database through ``__getstate__``), which made the
parallel executor *slower* than serial at every pool size. PR-6
replaced that transport with the shared-memory flatten/attach registry
(:mod:`repro.parallel.shm`): workers rebuild the structures zero-copy
over segments, and nothing per-dispatch scales with index size.

This rule keeps the pickling transport from creeping back. Inside the
``repro.parallel`` package (the shm registry module itself exempt),
it flags:

* imports of pickle-family modules (``pickle``, ``dill``, ...);
* calls to their ``dump``/``dumps``/``load``/``loads`` entry points;
* explicit ``__getstate__``/``__reduce__``-family calls; and
* (re)definitions of those state dunders.

Plain dataclasses of scalars still cross the pool pipe via the default
pickling — that is fine and unflagged; what is banned is *writing
serialization code* for the index structures in the parallel package.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    PARALLEL_TRANSPORT_EXEMPT_MODULES,
    PARALLEL_TRANSPORT_PREFIXES,
    PICKLE_MODULES,
    STATE_DUNDERS,
    in_scope,
)
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project

_PICKLE_ENTRY_POINTS = frozenset({"dump", "dumps", "load", "loads"})


class ShmOnlyTransport(Rule):
    code = "RPL007"
    name = "shm-only-transport"
    summary = (
        "repro.parallel must not pickle indexes: no pickle-family "
        "imports/calls or __getstate__-family dunders (the shm "
        "registry is the sanctioned transport)"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if not in_scope(module.name, PARALLEL_TRANSPORT_PREFIXES):
            return
        if module.name in PARALLEL_TRANSPORT_EXEMPT_MODULES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in PICKLE_MODULES:
                        yield module.finding(
                            self.code,
                            f"import of '{alias.name}' in the parallel "
                            "package; index transport must go through "
                            "the repro.parallel.shm registry",
                            node,
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in PICKLE_MODULES:
                    yield module.finding(
                        self.code,
                        f"import from '{node.module}' in the parallel "
                        "package; index transport must go through the "
                        "repro.parallel.shm registry",
                        node,
                    )
            elif isinstance(node, ast.Call):
                chain = astutil.call_name(node)
                if chain is None:
                    continue
                segments = chain.split(".")
                if (
                    len(segments) > 1
                    and segments[0] in PICKLE_MODULES
                    and segments[-1] in _PICKLE_ENTRY_POINTS
                ):
                    yield module.finding(
                        self.code,
                        f"'{chain}()' serializes an object graph in the "
                        "parallel package; flatten/attach it through "
                        "the repro.parallel.shm registry instead",
                        node,
                    )
                elif segments[-1] in STATE_DUNDERS:
                    yield module.finding(
                        self.code,
                        f"explicit '{segments[-1]}()' call in the "
                        "parallel package; pickle-based index transport "
                        "is banned (use the repro.parallel.shm registry)",
                        node,
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in STATE_DUNDERS:
                    yield module.finding(
                        self.code,
                        f"definition of '{node.name}' in the parallel "
                        "package re-introduces pickle-based transport; "
                        "add a flatten/attach pair to repro.parallel.shm "
                        "instead",
                        node,
                    )
