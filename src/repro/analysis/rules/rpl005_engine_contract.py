"""RPL005 — engine/relation contract.

Two halves, both protecting the seams the observability layer and the
memoization lifecycle hang off:

* every relation adapter in ``repro.ltj`` (a class implementing the
  ``leap`` protocol) must expose the ``wavelet_trees()`` hook — the
  engine uses it to attach per-query memo tables and the tracer uses it
  to find counter targets; a relation without it silently opts out of
  both, skewing traced op counts;
* every engine in ``repro.engines`` (a class implementing ``evaluate``)
  must route its solutions through ``repro.engines.result`` — each
  ``return`` in ``evaluate`` is a ``QueryResult(...)`` construction, a
  delegation to another engine's ``.evaluate(...)``, or a local name
  bound to one of those. Ad-hoc return shapes break the differential
  harness, which compares engines field by field.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis import astutil
from repro.analysis.config import (
    ENGINE_MODULE_PREFIXES,
    ENGINE_RESULT_FACTORIES,
    RELATION_EXEMPT_MODULES,
    RELATION_MODULE_PREFIXES,
    in_scope,
)
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import Finding, ModuleInfo, Project


def _methods(klass: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        stmt.name: stmt
        for stmt in klass.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _is_result_expr(expr: ast.expr, result_names: set[str]) -> bool:
    """Factory call (``QueryResult(...)``, ``.evaluate(...)``,
    ``cache.probe(...)`` — see ``ENGINE_RESULT_FACTORIES``) or name
    bound to one."""
    if isinstance(expr, ast.Call):
        chain = astutil.call_name(expr)
        if chain is None:
            return False
        last = chain.split(".")[-1]
        return last in ENGINE_RESULT_FACTORIES
    if isinstance(expr, ast.Name):
        return expr.id in result_names
    return False


class EngineContract(Rule):
    code = "RPL005"
    name = "engine-contract"
    summary = (
        "relations expose wavelet_trees(); engines return solutions "
        "through result.QueryResult"
    )

    def check(self, module: "ModuleInfo", project: "Project") -> Iterator["Finding"]:
        if (
            in_scope(module.name, RELATION_MODULE_PREFIXES)
            and module.name not in RELATION_EXEMPT_MODULES
        ):
            yield from self._check_relations(module)
        if in_scope(module.name, ENGINE_MODULE_PREFIXES):
            yield from self._check_engines(module)

    # ------------------------------------------------------------------
    def _check_relations(self, module: "ModuleInfo") -> Iterator["Finding"]:
        for klass in ast.walk(module.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            methods = _methods(klass)
            if "leap" not in methods:
                continue  # not a relation adapter
            if "wavelet_trees" not in methods:
                yield module.finding(
                    self.code,
                    f"relation '{klass.name}' implements leap() but not "
                    "wavelet_trees(); memo attachment and trace counter "
                    "discovery silently skip it (return () if it holds "
                    "no wavelet trees)",
                    klass,
                )

    def _check_engines(self, module: "ModuleInfo") -> Iterator["Finding"]:
        for klass in ast.walk(module.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            methods = _methods(klass)
            evaluate = methods.get("evaluate")
            if evaluate is None:
                continue
            # Names bound to QueryResult(...)/delegated evaluate calls
            # inside evaluate() are blessed return values.
            result_names: set[str] = set()
            for node in ast.walk(evaluate):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and _is_result_expr(
                        node.value, result_names
                    ):
                        result_names.add(target.id)
            for node in ast.walk(evaluate):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                if astutil.enclosing_function(node) is not evaluate:
                    continue  # return inside a nested helper
                if not _is_result_expr(node.value, result_names):
                    yield module.finding(
                        self.code,
                        f"'{klass.name}.evaluate' returns something other "
                        "than a repro.engines.result.QueryResult (or a "
                        "delegated .evaluate(...) call); the differential "
                        "harness compares engines through that one type",
                        node,
                    )
