"""Shared AST helpers for the reprolint rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def attach_parents(tree: ast.AST) -> ast.AST:
    """Annotate every node with a ``_rpl_parent`` backlink."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._rpl_parent = node  # type: ignore[attr-defined]
    return tree


def parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_rpl_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk from ``node``'s parent up to the module root."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def dotted(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``, else None.

    Subscripts and calls break the chain (``a.b().c`` is not a plain
    dotted expression).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def last_segment(chain: str) -> str:
    return chain.rsplit(".", 1)[-1]


def enclosing_function(node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def enclosing_loop(node: ast.AST, stop: ast.AST | None = None) -> ast.AST | None:
    """Innermost ``for``/``while``/comprehension around ``node``.

    Stops climbing at ``stop`` (typically the enclosing function), so a
    loop in an *outer* function does not count.
    """
    for anc in ancestors(node):
        if anc is stop:
            return None
        if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
            return anc
        if isinstance(anc, (ast.ListComp, ast.SetComp, ast.DictComp,
                            ast.GeneratorExp)):
            return anc
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda, ast.ClassDef)):
            return None
    return None


def terminates(stmts: list[ast.stmt]) -> bool:
    """Whether a statement block always leaves the enclosing block."""
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
        return True
    if isinstance(last, ast.If):
        return (
            bool(last.orelse)
            and terminates(last.body)
            and terminates(last.orelse)
        )
    return False


def is_none_check(test: ast.expr) -> tuple[str, bool] | None:
    """Decompose ``X is None`` / ``X is not None`` tests.

    Returns ``(dotted_chain, is_not_none)`` when ``test`` compares a
    plain dotted expression against ``None`` with ``is``/``is not``,
    else ``None``.
    """
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = test.ops[0]
    if not isinstance(op, (ast.Is, ast.IsNot)):
        return None
    left, right = test.left, test.comparators[0]
    none_side = None
    expr_side = None
    for a, b in ((left, right), (right, left)):
        if isinstance(b, ast.Constant) and b.value is None:
            none_side, expr_side = b, a
            break
    if none_side is None or expr_side is None:
        return None
    chain = dotted(expr_side)
    if chain is None:
        return None
    return chain, isinstance(op, ast.IsNot)


def call_name(node: ast.Call) -> str | None:
    """Dotted name of the called object, if it is a plain chain."""
    return dotted(node.func)


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def class_of(node: ast.AST) -> ast.ClassDef | None:
    for anc in ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Keep climbing: methods live inside the class body.
            continue
    return None
