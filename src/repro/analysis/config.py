"""Scope configuration of the reprolint rules.

Each constant names the part of the tree a rule patrols. Scopes are
dotted-module *prefixes*: ``"repro.ltj"`` covers ``repro.ltj`` and every
``repro.ltj.*`` module. Keeping them here (rather than inside each
rule) makes the protected surface reviewable in one place — widening a
scope is a deliberate, diffable act.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# RPL001 — hot-path purity.
#
# Modules on the succinct hot path (every query bottoms out here) must
# use the unchecked ``_*_u`` BitVector kernels: the public operations
# re-validate arguments that are in-range by construction, which the
# PR-3 kernel overhaul measured as a large constant-factor tax.
# ----------------------------------------------------------------------
HOT_PATH_PREFIXES: tuple[str, ...] = (
    "repro.ltj",
    "repro.ring",
    "repro.knn.succinct",
    "repro.knn.distance_index",
    "repro.succinct.wavelet_tree",
)

#: The validated public BitVector operations (each has a ``_*_u``
#: unchecked twin). ``access`` is deliberately absent: the name is
#: shared with :meth:`WaveletTree.access`, which *is* the counted
#: logical operation hot paths are expected to call.
VALIDATED_BITVECTOR_OPS: frozenset[str] = frozenset(
    {"rank1", "rank0", "select1", "select0", "next_one", "rank1_range"}
)

#: Canonical numpy arrays that carry a lazily-built plain-int mirror
#: (``<name>_i``). Hot-path code must index the mirror, never the
#: array: a raw element read yields a ``numpy.int64`` scalar whose
#: arithmetic re-enters numpy dispatch on every later use — the
#: scalar-leak tax the PR-3 plain-int caches eliminated. This matters
#: doubly for shm/mmap-attached structures (worker pools, ``repro
#: build`` indexes), where the canonical arrays are views over a shared
#: buffer and the mirrors are the coercion boundary that keeps numpy
#: scalars out of query evaluation. Slice reads are fine — they stay
#: arrays and feed vectorized code.
INT_MIRRORED_ARRAY_ATTRS: frozenset[str] = frozenset(
    {
        "_words",
        "_cum1",
        "_cum0",
        "_cum",
        "_counts",
        "_members",
        "_s_offsets",
        # Float-valued, but mirrored for the same reason: the distance
        # index binary-searches one region per leap, and searchsorted
        # over a slice of the attached array pays a view allocation
        # plus numpy dispatch per call (``_distances_i`` + bounded
        # bisect is the sanctioned form).
        "_distances",
    }
)

# ----------------------------------------------------------------------
# RPL002 — counter-before-memo.
#
# Modules holding memoized succinct wrappers: the logical op counter
# must be incremented before any memo lookup, so traced op counts are
# identical with and without memoization (the golden Figure-2 fixture
# depends on this).
# ----------------------------------------------------------------------
MEMOIZED_PREFIXES: tuple[str, ...] = ("repro.succinct.wavelet_tree",)

#: Attribute prefix marking a per-query memo container.
MEMO_ATTR_PREFIX = "_memo_"

#: Memo attributes that are bookkeeping, not caches (reading them is
#: not a lookup).
MEMO_BOOKKEEPING_ATTRS: frozenset[str] = frozenset({"_memo_users"})

# ----------------------------------------------------------------------
# RPL003 — obs guards.
#
# Engine and index code may only touch a trace/counter object behind an
# ``is not None`` guard (the zero-overhead-when-disabled pattern).
# ``repro.obs`` itself is exempt — it *is* the recorder.
# ----------------------------------------------------------------------
OBS_GUARD_PREFIXES: tuple[str, ...] = (
    "repro.engines",
    "repro.ltj",
    "repro.ring",
    "repro.knn",
    "repro.succinct",
    "repro.graph",
    "repro.parallel",
    # The query server's metrics/trace plumbing handles trace objects
    # the same way engines do: only ever behind an `is not None` guard.
    "repro.serve",
    # The cross-query cache replays traced stats into hit results and
    # annotates trace.meta on probe/fill; same guard discipline applies.
    "repro.cache",
)

OBS_EXEMPT_PREFIXES: tuple[str, ...] = ("repro.obs",)

#: A dotted expression whose final segment is one of these names is
#: treated as a trace/counter reference (``self.obs``, ``obs``,
#: ``self._state.obs``, ``trace``, ``self._trace``, ``vc`` — the
#: engine's per-variable counter alias).
OBS_SEGMENTS: frozenset[str] = frozenset(
    {"obs", "ops", "trace", "_trace", "tracer", "vc"}
)

# ----------------------------------------------------------------------
# RPL004 — determinism of the traced op-count pass.
#
# The bench harness re-runs every query under a trace and diffs the op
# counts *exactly* across machines, so code reachable from the traced
# pass must not consult wall-clock time or unseeded randomness, and
# must not let set iteration order leak into results.
# ----------------------------------------------------------------------
DETERMINISM_ROOTS: tuple[str, ...] = (
    "repro.bench.harness",
    "repro.engines",
)

#: Wall-clock reads banned in reachable code (``time.perf_counter`` is
#: allowed: it only ever feeds wall-time fields, never op counts, and
#: the bench diff normalizes wall times instead of comparing exactly).
WALL_CLOCK_CALLS: frozenset[str] = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
     "datetime.datetime.now", "datetime.datetime.utcnow"}
)

#: Legacy seedless numpy RNG entry points (the seeded
#: ``default_rng(seed)`` generator API is the only sanctioned one).
NUMPY_GLOBAL_RNG_FNS: frozenset[str] = frozenset(
    {"rand", "randn", "randint", "random", "choice", "shuffle",
     "permutation", "seed", "random_sample"}
)

# ----------------------------------------------------------------------
# RPL005 — engine/relation contract.
# ----------------------------------------------------------------------
RELATION_MODULE_PREFIXES: tuple[str, ...] = ("repro.ltj",)

#: Modules inside the relation scope that define the interface itself
#: (not adapters).
RELATION_EXEMPT_MODULES: frozenset[str] = frozenset(
    {"repro.ltj.relation", "repro.ltj.engine", "repro.ltj.ordering",
     "repro.ltj.stats"}
)

ENGINE_MODULE_PREFIXES: tuple[str, ...] = (
    "repro.engines",
    "repro.parallel",
    # The query server sits on top of engines; anything in it that
    # grows an `evaluate` method owes the same QueryResult contract.
    "repro.serve",
    # The cross-query cache sits between engines: anything in it that
    # grows an `evaluate` method owes the same QueryResult contract.
    "repro.cache",
)

#: Call-name last segments whose return value counts as a blessed
#: ``QueryResult`` inside an engine's ``evaluate``: the constructor
#: itself, a delegated ``.evaluate(...)``, and ``QueryCache.probe``,
#: which is typed ``QueryResult | None`` and only ever returned behind
#: an ``is not None`` guard (the cache-hit fast path in
#: ``AutoEngine.evaluate``).
ENGINE_RESULT_FACTORIES: frozenset[str] = frozenset(
    {"QueryResult", "evaluate", "probe"}
)

# ----------------------------------------------------------------------
# RPL007 — shm-only index transport in the parallel package.
#
# PR-6 replaced pickle-the-index dispatch with the shared-memory
# flatten/attach registry (``repro.parallel.shm``); the 0.66-0.84x
# scaling of the pickling transport must not creep back. Inside
# ``repro.parallel``, serializing an index — importing pickle-family
# modules, calling their dump/load entry points, or (re)defining the
# ``__getstate__``-family dunders — is banned; the shm registry is the
# only sanctioned path for index bytes.
# ----------------------------------------------------------------------
PARALLEL_TRANSPORT_PREFIXES: tuple[str, ...] = ("repro.parallel",)

#: The shm registry module itself is the sanctioned transport.
PARALLEL_TRANSPORT_EXEMPT_MODULES: frozenset[str] = frozenset(
    {"repro.parallel.shm"}
)

#: Pickle-family modules whose import (or use) marks a serialization
#: transport.
PICKLE_MODULES: frozenset[str] = frozenset(
    {"pickle", "cPickle", "dill", "cloudpickle", "marshal"}
)

#: State dunders that re-introduce object-graph serialization hooks.
STATE_DUNDERS: frozenset[str] = frozenset(
    {"__getstate__", "__setstate__", "__reduce__", "__reduce_ex__"}
)

# ----------------------------------------------------------------------
# RPL008 — resource lifecycle (flow-sensitive).
#
# The runtime machinery around the LTJ core acquires OS-visible
# resources: shm segments, mmap mappings, worker pools, server sockets,
# mmap-backed stores. RPL008 runs a may-leak dataflow over each
# function's CFG: a local variable bound to one of these constructors
# must be released, stored, or handed off on *every* path — including
# the exception edges, where leaks actually hide.
# ----------------------------------------------------------------------
RESOURCE_PREFIXES: tuple[str, ...] = (
    "repro.parallel",
    "repro.store",
    "repro.serve",
    # The cache stands up stores/engines in its CLI stats workload path
    # and may grow spill files; its acquisitions are leak-checked too.
    "repro.cache",
)

#: Call-name *last segments* whose return value is a leak-checked
#: resource when bound to a local name. ``mmap`` covers ``mmap.mmap``;
#: ``socket`` covers ``socket.socket``.
RESOURCE_CALLS: frozenset[str] = frozenset(
    {
        "SharedMemory",
        "mmap",
        "WorkerPool",
        "socket",
        "create_server",
        "IndexStore",
        "AttachedStore",
        "StructureShm",
        "AttachedShm",
        "ScratchBuffer",
        # Multi-value helper returning ``(mapping, size)``; resource-
        # returning helpers put the resource FIRST by convention (the
        # rule tracks the first name of a tuple target).
        "_map_file",
    }
)

#: Method calls on the bound name that release (or adopt) the resource.
RESOURCE_RELEASE_METHODS: frozenset[str] = frozenset(
    {"close", "unlink", "terminate", "shutdown", "join", "stop", "release"}
)

# ----------------------------------------------------------------------
# RPL009 — no blocking calls reachable from the asyncio loop.
#
# The server runs one asyncio loop; every blocking operation must cross
# the dispatch-thread boundary (a callable handed *by reference* to
# ``run_in_executor``/``asyncio.to_thread`` — reference-passing is the
# sanctioned hand-off and is invisible to the call graph by design).
# An ``async def`` in ``repro.serve`` that *calls* its way to a
# blocking primitive stalls every connected client.
# ----------------------------------------------------------------------
ASYNC_PREFIXES: tuple[str, ...] = ("repro.serve",)

#: Dotted call names that block the calling thread outright.
BLOCKING_CALLS: frozenset[str] = frozenset(
    {"time.sleep", "os.waitpid", "subprocess.run", "selectors.select"}
)

#: Call-name last segments that block regardless of receiver: scheduler
#: round trips, pool/future synchronisation, raw socket/file IO.
BLOCKING_METHODS: frozenset[str] = frozenset(
    {
        "run_batch",
        "result",
        "shutdown",
        "join",
        "acquire",
        "recv",
        "accept",
        "sendall",
        "readinto",
    }
)

# ----------------------------------------------------------------------
# RPL010 — thread/fork shared-state ownership.
#
# One asyncio loop thread + one dispatch thread + forked workers share
# module- and instance-level state. Mutable state written on one side
# and touched on the other must be lock-guarded, queue-mediated, or
# declared below with its safety argument.
# ----------------------------------------------------------------------
THREAD_STATE_PREFIXES: tuple[str, ...] = ("repro.serve", "repro.parallel")

#: Call-name last segments that move a callable onto another thread;
#: their callable arguments become dispatch-side roots.
THREAD_SPAWN_CALLS: frozenset[str] = frozenset(
    {"run_in_executor", "to_thread", "submit", "Thread"}
)

#: ``(class name, attribute)`` handoffs that are safe without a lock,
#: with the ownership argument reviewed here once instead of at every
#: use site. An entry of ``("*", attr)`` declares the attribute safe in
#: every class.
DECLARED_THREAD_SAFE: frozenset[tuple[str, str]] = frozenset(
    {
        # Frozen-after-start: ``start()`` binds the loop before any
        # work is handed to the dispatch thread, and nothing rebinds
        # it afterwards — the dispatch side (``_resolve``) only ever
        # reads it to call ``call_soon_threadsafe``, which is itself
        # the documented thread-safe entry point of asyncio.
        ("ReproServer", "_loop"),
    }
)

#: Worker-side modules: functions defined here run post-fork in pool
#: workers; module globals they write are per-process and must not be
#: written by parent-side code too.
FORK_SIDE_MODULES: tuple[str, ...] = ("repro.parallel.worker",)

# ----------------------------------------------------------------------
# RPL006 — strict-typing gate (in-repo approximation of the CI
# ``mypy --strict`` job: every def fully annotated).
# ----------------------------------------------------------------------
TYPED_PREFIXES: tuple[str, ...] = (
    "repro.succinct",
    "repro.ltj",
    "repro.ring",
    "repro.bounds",
)


def in_scope(module_name: str, prefixes: tuple[str, ...]) -> bool:
    """Whether ``module_name`` falls under one of the dotted prefixes."""
    for prefix in prefixes:
        if module_name == prefix or module_name.startswith(prefix + "."):
            return True
    return False
