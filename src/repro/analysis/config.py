"""Scope configuration of the reprolint rules.

Each constant names the part of the tree a rule patrols. Scopes are
dotted-module *prefixes*: ``"repro.ltj"`` covers ``repro.ltj`` and every
``repro.ltj.*`` module. Keeping them here (rather than inside each
rule) makes the protected surface reviewable in one place — widening a
scope is a deliberate, diffable act.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# RPL001 — hot-path purity.
#
# Modules on the succinct hot path (every query bottoms out here) must
# use the unchecked ``_*_u`` BitVector kernels: the public operations
# re-validate arguments that are in-range by construction, which the
# PR-3 kernel overhaul measured as a large constant-factor tax.
# ----------------------------------------------------------------------
HOT_PATH_PREFIXES: tuple[str, ...] = (
    "repro.ltj",
    "repro.ring",
    "repro.knn.succinct",
    "repro.knn.distance_index",
    "repro.succinct.wavelet_tree",
)

#: The validated public BitVector operations (each has a ``_*_u``
#: unchecked twin). ``access`` is deliberately absent: the name is
#: shared with :meth:`WaveletTree.access`, which *is* the counted
#: logical operation hot paths are expected to call.
VALIDATED_BITVECTOR_OPS: frozenset[str] = frozenset(
    {"rank1", "rank0", "select1", "select0", "next_one", "rank1_range"}
)

#: Canonical numpy arrays that carry a lazily-built plain-int mirror
#: (``<name>_i``). Hot-path code must index the mirror, never the
#: array: a raw element read yields a ``numpy.int64`` scalar whose
#: arithmetic re-enters numpy dispatch on every later use — the
#: scalar-leak tax the PR-3 plain-int caches eliminated. This matters
#: doubly for shm/mmap-attached structures (worker pools, ``repro
#: build`` indexes), where the canonical arrays are views over a shared
#: buffer and the mirrors are the coercion boundary that keeps numpy
#: scalars out of query evaluation. Slice reads are fine — they stay
#: arrays and feed vectorized code.
INT_MIRRORED_ARRAY_ATTRS: frozenset[str] = frozenset(
    {"_words", "_cum1", "_cum0", "_cum", "_counts", "_members", "_s_offsets"}
)

# ----------------------------------------------------------------------
# RPL002 — counter-before-memo.
#
# Modules holding memoized succinct wrappers: the logical op counter
# must be incremented before any memo lookup, so traced op counts are
# identical with and without memoization (the golden Figure-2 fixture
# depends on this).
# ----------------------------------------------------------------------
MEMOIZED_PREFIXES: tuple[str, ...] = ("repro.succinct.wavelet_tree",)

#: Attribute prefix marking a per-query memo container.
MEMO_ATTR_PREFIX = "_memo_"

#: Memo attributes that are bookkeeping, not caches (reading them is
#: not a lookup).
MEMO_BOOKKEEPING_ATTRS: frozenset[str] = frozenset({"_memo_users"})

# ----------------------------------------------------------------------
# RPL003 — obs guards.
#
# Engine and index code may only touch a trace/counter object behind an
# ``is not None`` guard (the zero-overhead-when-disabled pattern).
# ``repro.obs`` itself is exempt — it *is* the recorder.
# ----------------------------------------------------------------------
OBS_GUARD_PREFIXES: tuple[str, ...] = (
    "repro.engines",
    "repro.ltj",
    "repro.ring",
    "repro.knn",
    "repro.succinct",
    "repro.graph",
    "repro.parallel",
    # The query server's metrics/trace plumbing handles trace objects
    # the same way engines do: only ever behind an `is not None` guard.
    "repro.serve",
)

OBS_EXEMPT_PREFIXES: tuple[str, ...] = ("repro.obs",)

#: A dotted expression whose final segment is one of these names is
#: treated as a trace/counter reference (``self.obs``, ``obs``,
#: ``self._state.obs``, ``trace``, ``self._trace``, ``vc`` — the
#: engine's per-variable counter alias).
OBS_SEGMENTS: frozenset[str] = frozenset(
    {"obs", "ops", "trace", "_trace", "tracer", "vc"}
)

# ----------------------------------------------------------------------
# RPL004 — determinism of the traced op-count pass.
#
# The bench harness re-runs every query under a trace and diffs the op
# counts *exactly* across machines, so code reachable from the traced
# pass must not consult wall-clock time or unseeded randomness, and
# must not let set iteration order leak into results.
# ----------------------------------------------------------------------
DETERMINISM_ROOTS: tuple[str, ...] = (
    "repro.bench.harness",
    "repro.engines",
)

#: Wall-clock reads banned in reachable code (``time.perf_counter`` is
#: allowed: it only ever feeds wall-time fields, never op counts, and
#: the bench diff normalizes wall times instead of comparing exactly).
WALL_CLOCK_CALLS: frozenset[str] = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
     "datetime.datetime.now", "datetime.datetime.utcnow"}
)

#: Legacy seedless numpy RNG entry points (the seeded
#: ``default_rng(seed)`` generator API is the only sanctioned one).
NUMPY_GLOBAL_RNG_FNS: frozenset[str] = frozenset(
    {"rand", "randn", "randint", "random", "choice", "shuffle",
     "permutation", "seed", "random_sample"}
)

# ----------------------------------------------------------------------
# RPL005 — engine/relation contract.
# ----------------------------------------------------------------------
RELATION_MODULE_PREFIXES: tuple[str, ...] = ("repro.ltj",)

#: Modules inside the relation scope that define the interface itself
#: (not adapters).
RELATION_EXEMPT_MODULES: frozenset[str] = frozenset(
    {"repro.ltj.relation", "repro.ltj.engine", "repro.ltj.ordering",
     "repro.ltj.stats"}
)

ENGINE_MODULE_PREFIXES: tuple[str, ...] = (
    "repro.engines",
    "repro.parallel",
    # The query server sits on top of engines; anything in it that
    # grows an `evaluate` method owes the same QueryResult contract.
    "repro.serve",
)

# ----------------------------------------------------------------------
# RPL007 — shm-only index transport in the parallel package.
#
# PR-6 replaced pickle-the-index dispatch with the shared-memory
# flatten/attach registry (``repro.parallel.shm``); the 0.66-0.84x
# scaling of the pickling transport must not creep back. Inside
# ``repro.parallel``, serializing an index — importing pickle-family
# modules, calling their dump/load entry points, or (re)defining the
# ``__getstate__``-family dunders — is banned; the shm registry is the
# only sanctioned path for index bytes.
# ----------------------------------------------------------------------
PARALLEL_TRANSPORT_PREFIXES: tuple[str, ...] = ("repro.parallel",)

#: The shm registry module itself is the sanctioned transport.
PARALLEL_TRANSPORT_EXEMPT_MODULES: frozenset[str] = frozenset(
    {"repro.parallel.shm"}
)

#: Pickle-family modules whose import (or use) marks a serialization
#: transport.
PICKLE_MODULES: frozenset[str] = frozenset(
    {"pickle", "cPickle", "dill", "cloudpickle", "marshal"}
)

#: State dunders that re-introduce object-graph serialization hooks.
STATE_DUNDERS: frozenset[str] = frozenset(
    {"__getstate__", "__setstate__", "__reduce__", "__reduce_ex__"}
)

# ----------------------------------------------------------------------
# RPL006 — strict-typing gate (in-repo approximation of the CI
# ``mypy --strict`` job: every def fully annotated).
# ----------------------------------------------------------------------
TYPED_PREFIXES: tuple[str, ...] = (
    "repro.succinct",
    "repro.ltj",
    "repro.ring",
    "repro.bounds",
)


def in_scope(module_name: str, prefixes: tuple[str, ...]) -> bool:
    """Whether ``module_name`` falls under one of the dotted prefixes."""
    for prefix in prefixes:
        if module_name == prefix or module_name.startswith(prefix + "."):
            return True
    return False
