"""Call summaries: a conservative intra-project call graph.

RPL009 must answer "can this ``async def`` *transitively* reach a
blocking call?" — a whole-project question the per-function CFGs cannot
answer alone. This layer builds a syntactic function index over a set
of modules (normally the modules reachable from a root prefix via the
import graph), resolves call sites with three cheap, high-precision
strategies, and propagates rule-supplied predicates over the resulting
edges:

- ``self.m(...)`` / ``cls.m(...)`` resolves to method ``m`` of the
  *enclosing class* (no inheritance walk — subclass overrides in this
  codebase live in the same module and are indexed separately);
- a bare ``name(...)`` resolves to a module-level function of the same
  module;
- ``alias.name(...)`` resolves through the module's ``import``/
  ``from … import`` aliases to a function in another project module.

Anything else (builtins, stdlib, attribute chains on arbitrary
objects) stays unresolved; rules match those textually against their
own config. Callables that are merely *referenced* — e.g. a worker
function handed to ``run_in_executor`` — never become call edges,
which is precisely the sanctioned thread-boundary semantics RPL009
relies on: crossing into the dispatch thread ends the async caller's
blocking obligation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.astutil import call_name, class_of, walk_functions
from repro.analysis.imports import _resolve_from

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.core import ModuleInfo, Project

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class FunctionRef:
    """A uniquely named function: ``module:Class.name`` or ``module:name``."""

    module: str
    qualname: str

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    name: str  # dotted textual callee ("self._run", "time.sleep", …)
    target: FunctionRef | None  # resolved project-internal callee


@dataclass
class FunctionInfo:
    ref: FunctionRef
    node: FunctionNode
    module: "ModuleInfo"
    class_name: str | None
    calls: list[CallSite] = field(default_factory=list)

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


class CallIndex:
    """Function index + resolved call edges over a set of modules."""

    def __init__(self, modules: list["ModuleInfo"]) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self._aliases: dict[str, dict[str, str]] = {}
        for module in modules:
            self._aliases[module.name] = _import_aliases(module)
            for func in walk_functions(module.tree):
                cls = class_of(func)
                class_name = cls.name if cls is not None else None
                qualname = (
                    f"{class_name}.{func.name}" if class_name else func.name
                )
                ref = FunctionRef(module.name, qualname)
                self.functions[ref.key] = FunctionInfo(
                    ref, func, module, class_name
                )
        for info in self.functions.values():
            self._collect_calls(info)

    # ------------------------------------------------------------------
    # call-site resolution
    # ------------------------------------------------------------------
    def _collect_calls(self, info: FunctionInfo) -> None:
        own_body = set()
        for child in ast.walk(info.node):
            # Skip call sites belonging to *nested* defs — they execute
            # on the nested function's schedule, not the enclosing one.
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not info.node
            ):
                own_body.update(
                    id(n) for n in ast.walk(child) if isinstance(n, ast.Call)
                )
        for child in ast.walk(info.node):
            if not isinstance(child, ast.Call) or id(child) in own_body:
                continue
            name = call_name(child)
            if name is None:
                continue
            info.calls.append(
                CallSite(child, name, self._resolve(info, name))
            )

    def _resolve(self, info: FunctionInfo, name: str) -> FunctionRef | None:
        parts = name.split(".")
        module = info.module.name
        if parts[0] in ("self", "cls") and len(parts) == 2:
            if info.class_name is None:
                return None
            return self._lookup(module, f"{info.class_name}.{parts[1]}")
        if len(parts) == 1:
            return self._lookup(module, parts[0])
        # alias.func / alias.sub.func through the import table.
        aliases = self._aliases.get(module, {})
        head = aliases.get(parts[0])
        if head is None:
            return None
        dotted = ".".join([head] + parts[1:])
        target_module, _, func_name = dotted.rpartition(".")
        return self._lookup(target_module, func_name)

    def _lookup(self, module: str, qualname: str) -> FunctionRef | None:
        ref = FunctionRef(module, qualname)
        return ref if ref.key in self.functions else None

    # ------------------------------------------------------------------
    # predicate propagation
    # ------------------------------------------------------------------
    def propagate(
        self, seeds: dict[str, str]
    ) -> dict[str, tuple[str, ...]]:
        """Close a per-function property over call edges.

        Args:
            seeds: ``function key -> reason`` for functions that have
                the property *directly* (e.g. "calls time.sleep").

        Returns:
            ``function key -> witness chain`` for every function that
            has the property directly or through a callee; the chain
            lists the call path down to the direct reason.
        """
        tainted: dict[str, tuple[str, ...]] = {
            key: (reason,) for key, reason in sorted(seeds.items())
        }
        changed = True
        while changed:
            changed = False
            for key, info in self.functions.items():
                if key in tainted:
                    continue
                for site in info.calls:
                    if site.target is None:
                        continue
                    chain = tainted.get(site.target.key)
                    if chain is not None:
                        tainted[key] = (
                            f"{site.name}() [{site.target.key}]",
                        ) + chain
                        changed = True
                        break
        return tainted


def _import_aliases(module: "ModuleInfo") -> dict[str, str]:
    """local name -> absolute dotted target for the module's imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from(module.name, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


def modules_reachable_from(
    project: "Project", roots: tuple[str, ...]
) -> list["ModuleInfo"]:
    """Project modules reachable from the root prefixes (roots included).

    Falls back to *all* project modules when the import graph knows
    none of the roots — fixtures impersonating in-scope modules via
    ``# reprolint-module:`` are linted standalone, where the graph is
    just themselves.
    """
    from repro.analysis.imports import build_import_graph, reachable

    graph = build_import_graph(project)
    names = reachable(graph, roots)
    if not names:
        return list(project.modules)
    return [m for m in project.modules if m.name in names]
