"""A small forward-dataflow engine over the per-function CFGs.

The solver is a classic gen/kill worklist over :class:`~repro.analysis.
cfg.CFG` nodes with set-union join — a *may* analysis: a fact holds at
a program point if it holds along **some** path there. That is exactly
the right polarity for the leak rules built on top (RPL008: "this
resource *may* still be unreleased at function exit"), and it keeps the
conservative over-approximations in the CFG (shared finally regions,
always-present exception continuations) sound: extra paths can only add
facts, never hide one.

Facts are opaque hashables supplied by the rule; the rule provides one
``transfer(node) -> (gen, kill)`` callable evaluated once per node
(transfer functions must be pure). Termination is guaranteed because
the fact lattice is finite (facts are drawn from the function body) and
transfer is monotone: ``out = (in - kill) | gen`` only ever grows under
a growing ``in``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable

from repro.analysis.cfg import CFG

Fact = Hashable
Transfer = Callable[[int], tuple[frozenset[Fact], frozenset[Fact]]]


def solve_forward(
    cfg: CFG,
    transfer: Transfer,
    entry_facts: Iterable[Fact] = (),
    exception_transfer: Transfer | None = None,
) -> tuple[dict[int, frozenset[Fact]], dict[int, frozenset[Fact]]]:
    """Solve a forward may-analysis; returns ``(in_facts, out_facts)``.

    Args:
        cfg: the function CFG.
        transfer: ``node_index -> (gen, kill)``; evaluated once per
            node and cached.
        entry_facts: facts holding at the ENTRY node.
        exception_transfer: when given, ``except`` edges apply *this*
            gen/kill to the node's in facts instead of propagating its
            normal out facts. A statement that raises partway through
            has not completed its normal effect: ``shm =
            SharedMemory(...)`` raising acquires nothing (no gen), but
            ``shm.close()`` raising has still consumed the handle (the
            release kill applies). Leak-style analyses pass the
            release-only kills here.

    Returns:
        Per-node fact sets *entering* and *leaving* each node. Nodes
        unreachable from ENTRY keep empty sets.
    """
    succs: dict[int, list[tuple[int, bool]]] = {
        n.index: [] for n in cfg.nodes
    }
    for src, dst, kind in cfg.edges:
        succs[src].append((dst, kind == "except"))
    for targets in succs.values():
        targets.sort()

    gen_kill: dict[int, tuple[frozenset[Fact], frozenset[Fact]]] = {}
    exc_gen_kill: dict[int, tuple[frozenset[Fact], frozenset[Fact]]] = {}

    def node_transfer(index: int) -> tuple[frozenset[Fact], frozenset[Fact]]:
        if index not in gen_kill:
            gen_kill[index] = transfer(index)
        return gen_kill[index]

    def node_exc_transfer(index: int) -> tuple[frozenset[Fact], frozenset[Fact]]:
        assert exception_transfer is not None
        if index not in exc_gen_kill:
            exc_gen_kill[index] = exception_transfer(index)
        return exc_gen_kill[index]

    in_facts: dict[int, frozenset[Fact]] = {
        n.index: frozenset() for n in cfg.nodes
    }
    out_facts: dict[int, frozenset[Fact]] = dict(in_facts)
    in_facts[cfg.entry] = frozenset(entry_facts)

    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    visited: set[int] = set()
    last_in: dict[int, frozenset[Fact]] = {}
    while work:
        index = work.popleft()
        queued.discard(index)
        first_visit = index not in visited
        visited.add(index)
        gen, kill = node_transfer(index)
        out = (in_facts[index] - kill) | gen
        changed = (
            out != out_facts[index]
            or in_facts[index] != last_in.get(index)
        )
        out_facts[index] = out
        last_in[index] = in_facts[index]
        if not (changed or first_visit):
            continue
        for succ, is_except in succs[index]:
            if is_except and exception_transfer is not None:
                exc_gen, exc_kill = node_exc_transfer(index)
                flowing = (in_facts[index] - exc_kill) | exc_gen
            else:
                flowing = out
            merged = in_facts[succ] | flowing
            if merged != in_facts[succ] or succ not in visited:
                in_facts[succ] = merged
                if succ not in queued:
                    work.append(succ)
                    queued.add(succ)
    return in_facts, out_facts


def reachable_nodes(cfg: CFG) -> frozenset[int]:
    """Node indices reachable from ENTRY along any edge kind."""
    succs: dict[int, list[int]] = {n.index: [] for n in cfg.nodes}
    for src, dst, _kind in cfg.edges:
        succs[src].append(dst)
    seen = {cfg.entry}
    work = deque([cfg.entry])
    while work:
        for succ in succs[work.popleft()]:
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return frozenset(seen)
