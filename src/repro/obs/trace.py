"""The query-trace recorder: where an evaluation spends its work.

The paper's evaluation (Sec. 6) reasons about *operation counts*, not
just wall-clock time: how many leapfrog ``leap`` calls each variable
costs, how large the intersections are, how many ranges are opened on
the Ring versus the K-NN wavelet trees. :class:`QueryTrace` collects
exactly those quantities during one evaluation, grouped by

* **variable** — seek/leap calls, intersection members emitted,
  successful and failed bindings, how often the ordering picked it;
* **relation (atom)** — leaps/binds/unbinds plus backend-specific
  detail (which Ring primitive answered a leap, forward vs backward
  K-NN ranges, distance-prefix searches);
* **succinct structure** — wavelet-tree ``rank``/``select``/``access``/
  ``range_next_value`` operation counts per structure (the Ring
  columns, each K-NN relation's ``S``/``S'``, the distance sequence
  ``D``);
* **phase** — wall-clock per engine phase (compile/evaluate,
  bgp/postprocess, materialize/query).

Zero overhead when disabled: tracing is off unless a ``QueryTrace`` is
passed to an engine, and every producer guards its recording with a
single ``is not None`` test (there is no always-on recorder object in
any hot path). ``benchmarks/test_bench_trace_overhead.py`` verifies the
disabled-path cost on the Figure-2 workload.

The JSON form (:meth:`QueryTrace.to_dict`) follows the machine-readable
schema in :mod:`repro.obs.schema`; :func:`repro.obs.diff.diff_traces`
compares two such documents across runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.query.model import Var

TRACE_VERSION = 1

# Detailed ordering decisions recorded before aggregation-only mode
# kicks in (per-variable `times_chosen` keeps counting past the cap).
MAX_DECISIONS = 128


@dataclass
class OpCounters:
    """Operation counts of one succinct structure (a wavelet tree)."""

    rank: int = 0
    select: int = 0
    access: int = 0
    range_next: int = 0
    range_count: int = 0
    quantile: int = 0

    @property
    def total(self) -> int:
        return (
            self.rank + self.select + self.access
            + self.range_next + self.range_count + self.quantile
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "rank": self.rank,
            "select": self.select,
            "access": self.access,
            "range_next": self.range_next,
            "range_count": self.range_count,
            "quantile": self.quantile,
            "total": self.total,
        }


@dataclass
class VarCounters:
    """Leapfrog work attributed to one query variable."""

    leaps: int = 0
    """Seek (``leap``) calls issued while intersecting this variable."""

    candidates: int = 0
    """Intersection members emitted (candidate values tried)."""

    bindings: int = 0
    """Candidates that bound successfully in every atom."""

    failed_bindings: int = 0
    """Candidates rejected by some atom's ``bind``."""

    times_chosen: int = 0
    """How many times the ordering strategy picked this variable."""

    fanout: int = 0
    """Number of atoms intersected for this variable (candidate-stream
    fanout of the leapfrog intersection)."""

    def as_dict(self) -> dict[str, int]:
        return {
            "leaps": self.leaps,
            "candidates": self.candidates,
            "bindings": self.bindings,
            "failed_bindings": self.failed_bindings,
            "times_chosen": self.times_chosen,
            "fanout": self.fanout,
        }


@dataclass
class RelationCounters:
    """Work performed by one atom (triple pattern or clause)."""

    label: str
    kind: str
    """``triple`` | ``knn`` | ``dist``."""

    leaps: int = 0
    binds: int = 0
    unbinds: int = 0
    failed_binds: int = 0
    estimates: int = 0
    detail: dict[str, int] = field(default_factory=dict)
    """Backend-specific counters, e.g. ``leap_stored`` (Ring),
    ``leap_forward_S`` (K-NN), ``leap_within`` (distance)."""

    def bump(self, key: str, n: int = 1) -> None:
        self.detail[key] = self.detail.get(key, 0) + n

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "kind": self.kind,
            "leaps": self.leaps,
            "binds": self.binds,
            "unbinds": self.unbinds,
            "failed_binds": self.failed_binds,
            "estimates": self.estimates,
            "detail": dict(self.detail),
        }


@dataclass
class OrderingDecision:
    """One elimination-step choice made by the ordering strategy."""

    depth: int
    variable: str
    estimates: dict[str, int]
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "depth": self.depth,
            "variable": self.variable,
            "estimates": dict(self.estimates),
            "reason": self.reason,
        }


class QueryTrace:
    """Mutable recorder threaded through one query evaluation.

    Create one, pass it as ``trace=`` to any engine's ``evaluate``, then
    read the counters (or :meth:`to_dict` for the JSON form). A trace
    accumulates; use a fresh instance per evaluation you want isolated.
    """

    def __init__(self, query: str | None = None, engine: str | None = None) -> None:
        self.query = query
        self.engine = engine
        self.solutions = 0
        self.elapsed = 0.0
        self.timed_out = False
        self.stats: dict[str, int] = {}
        """Totals copied from :class:`~repro.ltj.stats.EvaluationStats`."""

        self.variables: dict[Var, VarCounters] = {}
        self.relations: list[RelationCounters] = []
        self.decisions: list[OrderingDecision] = []
        self.decisions_dropped = 0
        self.phases: dict[str, float] = {}
        self.wavelets: dict[str, OpCounters] = {}
        self.meta: dict[str, object] = {}
        """Free-form engine annotations (auto's selection, k* search...)."""

    # ------------------------------------------------------------------
    # recording API (called by engines/relations, always behind an
    # `is not None` guard on their side)
    # ------------------------------------------------------------------
    def var(self, v: Var) -> VarCounters:
        """Get-or-create the counters of one variable."""
        counters = self.variables.get(v)
        if counters is None:
            counters = self.variables[v] = VarCounters()
        return counters

    def relation(self, label: str, kind: str) -> RelationCounters:
        """Create (and register) counters for one atom."""
        counters = RelationCounters(label=label, kind=kind)
        self.relations.append(counters)
        return counters

    def wavelet(self, label: str) -> OpCounters:
        """Get-or-create the op counters of one succinct structure."""
        counters = self.wavelets.get(label)
        if counters is None:
            counters = self.wavelets[label] = OpCounters()
        return counters

    def record_decision(
        self,
        depth: int,
        variable: Var,
        estimates: dict[Var, int],
        reason: str,
    ) -> None:
        """Record one ordering choice (detailed up to ``MAX_DECISIONS``)."""
        self.var(variable).times_chosen += 1
        if len(self.decisions) >= MAX_DECISIONS:
            self.decisions_dropped += 1
            return
        self.decisions.append(
            OrderingDecision(
                depth=depth,
                variable=variable.name,
                estimates={v.name: e for v, e in estimates.items()},
                reason=reason,
            )
        )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time of a named phase."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - started
            )

    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def finish(self, stats) -> None:
        """Copy an :class:`EvaluationStats` snapshot into the trace."""
        self.solutions = stats.solutions
        self.elapsed = stats.elapsed
        self.timed_out = bool(stats.timed_out)
        self.stats = {
            "solutions": stats.solutions,
            "bindings": stats.bindings,
            "attempts": stats.attempts,
            "leap_calls": stats.leap_calls,
        }

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """The machine-readable form (see :mod:`repro.obs.schema`)."""
        return {
            "version": TRACE_VERSION,
            "engine": self.engine,
            "query": self.query,
            "solutions": self.solutions,
            "elapsed": self.elapsed,
            "timed_out": self.timed_out,
            "stats": dict(self.stats),
            "phases": dict(self.phases),
            "variables": {
                v.name: c.as_dict() for v, c in self.variables.items()
            },
            "ordering": [d.as_dict() for d in self.decisions],
            "ordering_dropped": self.decisions_dropped,
            "relations": [r.as_dict() for r in self.relations],
            "wavelets": {
                label: ops.as_dict() for label, ops in self.wavelets.items()
            },
            "meta": dict(self.meta),
        }


# ----------------------------------------------------------------------
# wiring helpers used by the engines
# ----------------------------------------------------------------------
def instrument_relations(trace: QueryTrace, relations) -> None:
    """Attach per-atom counters to compiled leapfrog relations.

    Every relation adapter exposes an ``obs`` attribute (``None`` by
    default); attaching replaces it with a :class:`RelationCounters`
    registered on the trace.
    """
    for rel in relations:
        clause = getattr(rel, "clause", None)
        if clause is None:
            kind = "triple"
            label = repr(getattr(rel, "pattern", rel))
        elif hasattr(clause, "k"):
            kind = "knn"
            label = repr(clause)
        else:
            kind = "dist"
            label = repr(clause)
        rel.obs = trace.relation(label, kind)


def wavelet_targets(
    trace: QueryTrace,
    db,
    query,
    include_ring: bool = True,
) -> list[tuple[object, OpCounters]]:
    """(wavelet tree, counters) pairs for the structures a query touches.

    The three Ring columns share one ``"ring"`` counter group; each K-NN
    relation used by the query contributes ``knn:<name>.S`` and
    ``knn:<name>.S'``; a distance index contributes ``dist.D``.
    """
    pairs: list[tuple[object, OpCounters]] = []
    if include_ring:
        ring_ops = trace.wavelet("ring")
        for coord in "spo":
            pairs.append((db.ring.column(coord), ring_ops))
    for name in sorted({c.relation for c in query.clauses}):
        knn_ring = db.knn_rings.get(name)
        if knn_ring is None:
            continue
        pairs.append((knn_ring.S, trace.wavelet(f"knn:{name}.S")))
        pairs.append((knn_ring.Sprime, trace.wavelet(f"knn:{name}.S'")))
    if query.dist_clauses and db.distance_index is not None:
        pairs.append((db.distance_index.D, trace.wavelet("dist.D")))
    return pairs


@contextmanager
def attach_wavelets(pairs: list[tuple[object, OpCounters]]) -> Iterator[None]:
    """Temporarily attach op counters to wavelet trees.

    Detaches in a ``finally`` so shared index structures never keep a
    recorder past the traced evaluation.
    """
    for tree, ops in pairs:
        tree.ops = ops
    try:
        yield
    finally:
        for tree, _ops in pairs:
            tree.ops = None
