"""Machine-readable schema of the JSON query trace.

``TRACE_SCHEMA`` is a JSON-Schema-style document describing the output
of :meth:`repro.obs.trace.QueryTrace.to_dict`; :func:`validate_trace`
checks a trace against it with a small self-contained validator (no
third-party dependency), raising :class:`TraceSchemaError` with the
offending path. The benchmarks and the CI smoke job validate every
emitted trace so the schema stays in sync with the recorder.

Run as a module to validate a trace file::

    python -m repro.obs.schema trace.json
"""

from __future__ import annotations

import json
import sys

_COUNTER = {"type": "integer", "minimum": 0}

_OPS_SCHEMA = {
    "type": "object",
    "required": ["rank", "select", "access", "range_next", "range_count",
                 "quantile", "total"],
    "properties": {
        "rank": _COUNTER,
        "select": _COUNTER,
        "access": _COUNTER,
        "range_next": _COUNTER,
        "range_count": _COUNTER,
        "quantile": _COUNTER,
        "total": _COUNTER,
    },
}

_VARIABLE_SCHEMA = {
    "type": "object",
    "required": ["leaps", "candidates", "bindings", "failed_bindings",
                 "times_chosen", "fanout"],
    "properties": {
        "leaps": _COUNTER,
        "candidates": _COUNTER,
        "bindings": _COUNTER,
        "failed_bindings": _COUNTER,
        "times_chosen": _COUNTER,
        "fanout": _COUNTER,
    },
}

_RELATION_SCHEMA = {
    "type": "object",
    "required": ["label", "kind", "leaps", "binds", "unbinds",
                 "failed_binds", "estimates", "detail"],
    "properties": {
        "label": {"type": "string"},
        "kind": {"type": "string", "enum": ["triple", "knn", "dist"]},
        "leaps": _COUNTER,
        "binds": _COUNTER,
        "unbinds": _COUNTER,
        "failed_binds": _COUNTER,
        "estimates": _COUNTER,
        "detail": {"type": "object", "values": _COUNTER},
    },
}

_DECISION_SCHEMA = {
    "type": "object",
    "required": ["depth", "variable", "estimates", "reason"],
    "properties": {
        "depth": _COUNTER,
        "variable": {"type": "string"},
        "estimates": {"type": "object", "values": _COUNTER},
        "reason": {"type": "string"},
    },
}

TRACE_SCHEMA = {
    "type": "object",
    "required": ["version", "engine", "query", "solutions", "elapsed",
                 "timed_out", "stats", "phases", "variables", "ordering",
                 "ordering_dropped", "relations", "wavelets", "meta"],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "engine": {"type": ["string", "null"]},
        "query": {"type": ["string", "null"]},
        "solutions": _COUNTER,
        "elapsed": {"type": "number", "minimum": 0},
        "timed_out": {"type": "boolean"},
        "stats": {"type": "object", "values": _COUNTER},
        "phases": {"type": "object", "values": {"type": "number", "minimum": 0}},
        "variables": {"type": "object", "values": _VARIABLE_SCHEMA},
        "ordering": {"type": "array", "items": _DECISION_SCHEMA},
        "ordering_dropped": _COUNTER,
        "relations": {"type": "array", "items": _RELATION_SCHEMA},
        "wavelets": {"type": "object", "values": _OPS_SCHEMA},
        "meta": {"type": "object"},
    },
}


class TraceSchemaError(ValueError):
    """A trace document violates :data:`TRACE_SCHEMA`."""


def _type_ok(value: object, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        )
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "null":
        return value is None
    raise ValueError(f"unknown schema type {expected!r}")


def _validate(value: object, schema: dict, path: str) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, t) for t in types):
            raise TraceSchemaError(
                f"{path}: expected {'/'.join(types)}, "
                f"got {type(value).__name__}"
            )
        if value is None:
            return
    if "enum" in schema and value not in schema["enum"]:
        raise TraceSchemaError(
            f"{path}: {value!r} not in {schema['enum']!r}"
        )
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        raise TraceSchemaError(
            f"{path}: {value!r} below minimum {schema['minimum']}"
        )
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise TraceSchemaError(f"{path}: missing key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                _validate(value[key], sub, f"{path}.{key}")
        # `values` constrains every entry of a map-like object (the
        # patternProperties-for-everything case).
        values_schema = schema.get("values")
        if values_schema is not None:
            for key, entry in value.items():
                if not isinstance(key, str):
                    raise TraceSchemaError(f"{path}: non-string key {key!r}")
                _validate(entry, values_schema, f"{path}[{key!r}]")
    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for index, entry in enumerate(value):
                _validate(entry, items, f"{path}[{index}]")


def validate_trace(trace: dict) -> None:
    """Raise :class:`TraceSchemaError` unless ``trace`` fits the schema."""
    _validate(trace, TRACE_SCHEMA, "$")


def validate_document(document: object, schema: dict, path: str = "$") -> None:
    """Validate any JSON document against a schema in this dialect.

    The serve wire protocol (:mod:`repro.serve.protocol`) defines its
    request/response schemas next to this trace schema and validates
    them through the same self-contained validator, so the whole JSON
    surface of the system shares one dialect and one error type
    (:class:`TraceSchemaError`).
    """
    _validate(document, schema, path)


def main(argv: list[str] | None = None) -> int:
    """Validate trace JSON files given as arguments (or stdin)."""
    args = sys.argv[1:] if argv is None else argv
    documents: list[tuple[str, dict]] = []
    if not args:
        documents.append(("<stdin>", json.load(sys.stdin)))
    else:
        for name in args:
            with open(name, "r", encoding="utf-8") as handle:
                documents.append((name, json.load(handle)))
    for name, doc in documents:
        try:
            validate_trace(doc)
        except TraceSchemaError as err:
            print(f"{name}: INVALID: {err}", file=sys.stderr)
            return 1
        print(f"{name}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
