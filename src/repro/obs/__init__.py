"""Query observability: tracing, trace schema, and trace diffing.

See :mod:`repro.obs.trace` for the recorder design (and its
zero-overhead-when-disabled contract), :mod:`repro.obs.schema` for the
machine-readable trace format, and :mod:`repro.obs.diff` for comparing
traces across runs.
"""

from repro.obs.diff import CounterDelta, diff_traces, flatten_counters, format_diff
from repro.obs.merge import merge_shard_traces
from repro.obs.schema import (
    TRACE_SCHEMA,
    TraceSchemaError,
    validate_document,
    validate_trace,
)
from repro.obs.trace import (
    OpCounters,
    OrderingDecision,
    QueryTrace,
    RelationCounters,
    VarCounters,
    attach_wavelets,
    instrument_relations,
    wavelet_targets,
)

__all__ = [
    "CounterDelta",
    "OpCounters",
    "OrderingDecision",
    "QueryTrace",
    "RelationCounters",
    "TRACE_SCHEMA",
    "TraceSchemaError",
    "VarCounters",
    "attach_wavelets",
    "diff_traces",
    "flatten_counters",
    "format_diff",
    "instrument_relations",
    "merge_shard_traces",
    "validate_document",
    "validate_trace",
    "wavelet_targets",
]
