"""Merging per-shard traces into one query-level trace.

A domain-sharded evaluation (:mod:`repro.parallel`) runs the depth-0
leapfrog enumeration in the parent process and the per-candidate
sub-searches in pool workers, each worker recording its own
:class:`~repro.obs.trace.QueryTrace`. This module folds the workers'
JSON trace documents back into the parent's recorder so that the merged
counters are *pool-size invariant*: for every pool size (including 1)
and every contiguous partition of the candidate list, the merged trace's
logical op counts equal the serial engine's trace exactly. Wall-clock
fields (``elapsed``, ``phases``) are the only aggregates that legitimately
differ between serial and sharded runs.

Why this works: ``leap`` is pure given the binding stack, the parent
replays the serial depth-0 enumeration verbatim (counting its attempts,
leaps and the depth-0 ordering decision), and each worker counts exactly
the depth >= 1 work of its candidate slice. Counter merging is therefore
plain summation — per variable by name, per atom by compile position
(all processes compile the same query in the same order), per wavelet
tree by label — plus two order-sensitive pieces handled here: the
ordering-decision list (concatenated in shard order, re-capped at
``MAX_DECISIONS``) and the max-merge of per-variable fanout.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.obs.trace import MAX_DECISIONS, OrderingDecision, QueryTrace
from repro.query.model import Var


def merge_shard_traces(
    trace: QueryTrace,
    shard_docs: Sequence[Mapping[str, Any]],
) -> None:
    """Fold worker trace documents into the parent recorder.

    Args:
        trace: the parent :class:`QueryTrace` holding the depth-0
            counters (the one the sharding driver passed to
            ``LTJEngine.first_level``).
        shard_docs: the workers' ``QueryTrace.to_dict()`` documents, in
            shard order. Order matters: decisions concatenate in
            candidate order — exactly the order the serial engine would
            have recorded them — before the global ``MAX_DECISIONS`` cap
            is re-applied, so both the detailed prefix and the dropped
            count match the serial trace.
    """
    for doc in shard_docs:
        for name, counters in doc["variables"].items():
            vc = trace.var(Var(name))
            vc.leaps += counters["leaps"]
            vc.candidates += counters["candidates"]
            vc.bindings += counters["bindings"]
            vc.failed_bindings += counters["failed_bindings"]
            vc.times_chosen += counters["times_chosen"]
            vc.fanout = max(vc.fanout, counters["fanout"])
        for index, rel in enumerate(doc["relations"]):
            if index < len(trace.relations):
                target = trace.relations[index]
            else:
                # A worker registered an atom the parent never touched;
                # cannot happen with identical compiles, but stay total.
                target = trace.relation(rel["label"], rel["kind"])
            target.leaps += rel["leaps"]
            target.binds += rel["binds"]
            target.unbinds += rel["unbinds"]
            target.failed_binds += rel["failed_binds"]
            target.estimates += rel["estimates"]
            for key, n in rel["detail"].items():
                target.bump(key, n)
        for label, ops in doc["wavelets"].items():
            target_ops = trace.wavelet(label)
            target_ops.rank += ops["rank"]
            target_ops.select += ops["select"]
            target_ops.access += ops["access"]
            target_ops.range_next += ops["range_next"]
            target_ops.range_count += ops["range_count"]
            target_ops.quantile += ops["quantile"]
        for decision in doc["ordering"]:
            if len(trace.decisions) >= MAX_DECISIONS:
                trace.decisions_dropped += 1
                continue
            trace.decisions.append(
                OrderingDecision(
                    depth=decision["depth"],
                    variable=decision["variable"],
                    estimates=dict(decision["estimates"]),
                    reason=decision["reason"],
                )
            )
        trace.decisions_dropped += doc["ordering_dropped"]
        for name, seconds in doc["phases"].items():
            trace.add_phase(f"shard:{name}", seconds)
