"""Diff two JSON query traces across runs.

The benchmark harness records one trace per (query, engine) pair; after
an optimization (or a regression) the interesting question is *which
counters moved* — did a new ordering cut the number of ``leap`` calls,
did the Ring open more ranges, did a phase get slower.``diff_traces``
flattens both documents to dotted counter paths and reports every
numeric leaf that changed beyond a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CounterDelta:
    """One numeric leaf that differs between two traces."""

    path: str
    before: float | None
    """Value in the first trace (None = the counter is new)."""

    after: float | None
    """Value in the second trace (None = the counter disappeared)."""

    @property
    def delta(self) -> float | None:
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def ratio(self) -> float | None:
        """``after / before`` (None when undefined)."""
        if not self.before or self.after is None:
            return None
        return self.after / self.before


def flatten_counters(trace: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a trace document, keyed by dotted path.

    Relations (a list) are keyed by their ``label`` so the paths stay
    stable across runs even if compilation order changes.
    """
    out: dict[str, float] = {}

    def walk(value: object, path: str) -> None:
        if isinstance(value, bool):
            out[path] = float(value)
        elif isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, dict):
            for key, sub in value.items():
                walk(sub, f"{path}.{key}" if path else str(key))
        elif isinstance(value, list):
            for index, sub in enumerate(value):
                key = index
                if isinstance(sub, dict) and "label" in sub:
                    key = sub["label"]
                walk(sub, f"{path}[{key}]")

    walk(trace, prefix)
    return out


def diff_traces(
    before: dict,
    after: dict,
    rel_tolerance: float = 0.0,
    ignore_timings: bool = False,
) -> list[CounterDelta]:
    """Changed counters between two trace documents.

    Args:
        before, after: trace dicts (``QueryTrace.to_dict()`` output).
        rel_tolerance: relative change below which a counter counts as
            unchanged (e.g. ``0.05`` to ignore 5% jitter — useful for
            the timing leaves).
        ignore_timings: drop ``elapsed``/``phases`` leaves entirely
            (operation counts are deterministic, timings are not).

    Returns:
        Deltas sorted by descending absolute change.
    """
    flat_before = flatten_counters(before)
    flat_after = flatten_counters(after)
    deltas: list[CounterDelta] = []
    for path in sorted(set(flat_before) | set(flat_after)):
        if ignore_timings and (
            path == "elapsed" or path.startswith("phases.")
        ):
            continue
        a = flat_before.get(path)
        b = flat_after.get(path)
        if a is None or b is None:
            deltas.append(CounterDelta(path, a, b))
            continue
        if a == b:
            continue
        if rel_tolerance > 0 and a != 0:
            if abs(b - a) / abs(a) <= rel_tolerance:
                continue
        deltas.append(CounterDelta(path, a, b))
    deltas.sort(
        key=lambda d: abs(d.delta) if d.delta is not None else float("inf"),
        reverse=True,
    )
    return deltas


def format_diff(deltas: list[CounterDelta], limit: int = 40) -> str:
    """Human-readable rendering of a trace diff."""
    if not deltas:
        return "traces identical"
    lines = [f"{len(deltas)} counters changed"]
    for d in deltas[:limit]:
        if d.before is None:
            lines.append(f"  + {d.path} = {d.after:g}")
        elif d.after is None:
            lines.append(f"  - {d.path} (was {d.before:g})")
        else:
            ratio = f" ({d.ratio:.3g}x)" if d.ratio is not None else ""
            lines.append(
                f"  {d.path}: {d.before:g} -> {d.after:g}{ratio}"
            )
    if len(deltas) > limit:
        lines.append(f"  ... ({len(deltas) - limit} more)")
    return "\n".join(lines)
