"""Cumulative-count arrays, the ``A_j`` structures of the Ring (Sec. 2.4).

For a column ``C_j`` over an alphabet ``[0, D)``, the paper defines
``A_j[c] = |{ i : C_j[i] < c }|``.  :class:`CumulativeCounts` stores that
array and answers the two questions the Ring needs:

* the row range of a value's block (``range_of``), and
* which block a given row belongs to (``block_of`` — the "locate the
  ``A_P`` block of a select position" step used when leaping a variable
  that is neither the stored column nor the backward neighbor).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable

import numpy as np

from repro.utils.errors import ValidationError


class CumulativeCounts:
    """Cumulative occurrence counts of symbols ``[0, D)`` in a column."""

    def __init__(self, column: Iterable[int] | np.ndarray, alphabet_size: int) -> None:
        col = np.asarray(
            list(column) if not isinstance(column, np.ndarray) else column,
            dtype=np.int64,
        )
        if alphabet_size <= 0:
            raise ValidationError("alphabet_size must be positive")
        if col.size and (col.min() < 0 or col.max() >= alphabet_size):
            raise ValidationError(
                f"column values must lie in [0, {alphabet_size}); "
                f"got range [{col.min()}, {col.max()}]"
            )
        counts = np.bincount(col, minlength=alphabet_size)
        # _cum[c] = number of entries with value < c; length D + 1.
        self._cum = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        # Plain-int cache so the hot lookups (block_of / next_nonempty in
        # every Ring leap) are a list subscript + bisect, not numpy calls.
        self._cum_i: list[int] = self._cum.tolist()
        self._n = int(col.size)
        self._sigma = alphabet_size

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "CumulativeCounts":
        """Build directly from a per-symbol count array."""
        obj = cls.__new__(cls)
        counts = np.asarray(counts, dtype=np.int64)
        obj._cum = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        obj._cum_i = obj._cum.tolist()
        obj._n = int(counts.sum())
        obj._sigma = int(counts.size)
        return obj

    def __getstate__(self) -> dict[str, object]:
        """Pickle without the plain-int mirror (rebuilt lazily)."""
        state = dict(self.__dict__)
        state.pop("_cum_i", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getattr__(self, name: str) -> list[int]:
        if name == "_cum_i":
            value: list[int] = self._cum.tolist()
            self.__dict__[name] = value
            return value
        raise AttributeError(name)

    def __len__(self) -> int:
        return self._n

    @property
    def alphabet_size(self) -> int:
        return self._sigma

    def size_in_bytes(self) -> int:
        return self._cum.nbytes

    def before(self, c: int) -> int:
        """``A[c]``: number of entries strictly smaller than ``c``."""
        if not 0 <= c <= self._sigma:
            raise ValidationError(f"symbol {c} out of range [0, {self._sigma}]")
        return self._cum_i[c]

    def count(self, c: int) -> int:
        """Number of occurrences of symbol ``c``."""
        if not 0 <= c < self._sigma:
            raise ValidationError(f"symbol {c} out of range [0, {self._sigma})")
        return self._cum_i[c + 1] - self._cum_i[c]

    def range_of(self, c: int) -> tuple[int, int]:
        """Closed 0-based row range ``[lo, hi]`` of symbol ``c``'s block.

        Empty blocks yield ``lo > hi``.
        """
        if not 0 <= c < self._sigma:
            raise ValidationError(f"symbol {c} out of range [0, {self._sigma})")
        return self._cum_i[c], self._cum_i[c + 1] - 1

    def block_of(self, row: int) -> int:
        """Symbol whose block contains sorted-table ``row`` (0-based)."""
        if not 0 <= row < self._n:
            raise ValidationError(f"row {row} out of range [0, {self._n})")
        # _cum is nondecreasing; find rightmost c with _cum[c] <= row.
        return bisect_right(self._cum_i, row) - 1

    def next_nonempty(self, c: int) -> int | None:
        """Smallest symbol ``>= c`` whose block is non-empty, or ``None``."""
        if c >= self._sigma:
            return None
        c = max(c, 0)
        base = self._cum_i[c]
        # First position > c where the cumulative count exceeds _cum[c];
        # the symbol just before it owns the first non-empty block >= c.
        sym = bisect_right(self._cum_i, base, c + 1) - 1
        if sym >= self._sigma:
            return None
        return sym
