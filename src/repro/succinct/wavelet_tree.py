"""Pointerless (level-wise) wavelet tree over an integer sequence.

Supports the operation set of Sec. 2.3 of the paper:

* ``access(i)``, ``rank(c, i)``, ``select(c, j)`` — the classic trio, each
  in ``O(log sigma)`` bitvector operations;
* ``range_next_value(lo, hi, c)`` — smallest symbol ``>= c`` occurring in
  ``S[lo..hi]`` (the primitive behind ``leap`` in LTJ);
* ``count_distinct(lo, hi)`` — the ``range_symbols`` operation used to
  bound the number of candidate bindings of a variable;
* ``distinct_values(lo, hi)`` — enumerate the distinct symbols of a range
  in increasing order (one ``O(log sigma)`` step per reported symbol).

The construction performs a stable radix partition level by level, so the
bits of level ``l`` are laid out exactly as in the textbook pointerless
wavelet tree: the children of a node occupy the node's own position span
on the next level, zeros before ones.

Hot-path notes (see ``docs/performance.md``): arguments are validated
once at this public boundary, after which every descent uses the
bitvectors' unchecked ``_*_u`` kernels; and an optional *per-query memo*
(:meth:`begin_query_memo` / :meth:`end_query_memo`, attached by
:class:`repro.ltj.engine.LTJEngine` for the duration of one evaluation)
caches ``rank`` and ``range_next_value`` traversals, which leapfrog
intersections repeat heavily while backtracking. The structure is
immutable, so cached answers can never go stale; the query scoping only
bounds the memo's memory. Op counters (``self.ops``) count *logical*
operations and are incremented before any memo lookup, so traced
operation counts are identical with and without memoization.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.succinct.bitvector import BitVector
from repro.utils.errors import StructureError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import OpCounters

# Per-memo entry cap: a query that somehow accumulates more distinct
# (rank / range_next_value) argument tuples than this simply restarts
# the dictionary, keeping worst-case memory bounded.
_MEMO_CAP = 1 << 15

_MISS = object()


class WaveletTree:
    """Immutable wavelet tree over a sequence of ints in ``[0, sigma)``."""

    def __init__(self, sequence: Iterable[int] | np.ndarray, alphabet_size: int) -> None:
        seq = np.asarray(
            list(sequence) if not isinstance(sequence, np.ndarray) else sequence,
            dtype=np.int64,
        )
        if seq.ndim != 1:
            raise ValidationError("sequence must be one-dimensional")
        if alphabet_size <= 0:
            raise ValidationError("alphabet_size must be positive")
        if seq.size and (seq.min() < 0 or seq.max() >= alphabet_size):
            raise ValidationError(
                f"sequence values must lie in [0, {alphabet_size})"
            )
        self._n = int(seq.size)
        self._sigma = int(alphabet_size)
        self._height = max(1, int(alphabet_size - 1).bit_length())
        self._levels: list[BitVector] = []
        current = seq
        for level in range(self._height):
            shift = self._height - 1 - level
            bits = (current >> shift) & 1
            self._levels.append(BitVector(bits.astype(np.uint8)))
            if level + 1 < self._height:
                # Stable partition by the top (level+1) bits keeps each
                # node's span contiguous on the next level.
                prefix = current >> shift
                order = np.argsort(prefix, kind="stable")
                current = current[order]
        # Per-symbol totals allow O(1) total-count queries and power select.
        counts = np.bincount(seq, minlength=alphabet_size) if seq.size else (
            np.zeros(alphabet_size, dtype=np.int64)
        )
        self._counts = counts.astype(np.int64)
        self._counts_i: list[int] = self._counts.tolist()
        self.ops: OpCounters | None = None
        """Optional :class:`repro.obs.trace.OpCounters`. ``None`` (the
        default) disables op counting entirely; a traced evaluation
        attaches counters for its duration (see
        :func:`repro.obs.trace.attach_wavelets`)."""
        self._memo_users = 0
        self._memo_rank: dict[tuple[int, int], int] | None = None
        self._memo_next: dict[tuple[int, int, int], int | None] | None = None

    # ------------------------------------------------------------------
    # pickling (worker-pool transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        """Pickle the levels and the numpy count table only.

        The plain-int count cache is rebuilt lazily after unpickling;
        the op-counter hook and the per-query memo are evaluation-scoped
        recorder state that must never travel to a worker process.
        """
        state = dict(self.__dict__)
        state.pop("_counts_i", None)
        state["ops"] = None
        state["_memo_users"] = 0
        state["_memo_rank"] = None
        state["_memo_next"] = None
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getattr__(self, name: str) -> list[int]:
        if name == "_counts_i":
            value: list[int] = self._counts.tolist()
            self.__dict__[name] = value
            return value
        raise AttributeError(name)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def alphabet_size(self) -> int:
        return self._sigma

    @property
    def height(self) -> int:
        return self._height

    def size_in_bytes(self) -> int:
        """Bytes used by the level bitvectors and the count table."""
        return sum(bv.size_in_bytes() for bv in self._levels) + self._counts.nbytes

    def total_count(self, c: int) -> int:
        """Total occurrences of symbol ``c`` in the whole sequence."""
        if not 0 <= c < self._sigma:
            raise ValidationError(f"symbol {c} out of range [0, {self._sigma})")
        return self._counts_i[c]

    # ------------------------------------------------------------------
    # per-query memoization (attached by the LTJ engine)
    # ------------------------------------------------------------------
    def begin_query_memo(self) -> None:
        """Enable (or share) the per-query rank/leap memo.

        Reference-counted so overlapping evaluations over shared index
        structures compose: the memo is dropped when the last evaluation
        ends. Cached entries are always valid (the tree is immutable);
        scoping them to a query merely bounds memory.
        """
        if self._memo_users == 0:
            self._memo_rank = {}
            self._memo_next = {}
        self._memo_users += 1

    def end_query_memo(self) -> None:
        """Release one memo user (see :meth:`begin_query_memo`)."""
        if self._memo_users > 0:
            self._memo_users -= 1
            if self._memo_users == 0:
                self._memo_rank = None
                self._memo_next = None

    # ------------------------------------------------------------------
    # classic operations
    # ------------------------------------------------------------------
    def access(self, i: int) -> int:
        """Return ``S[i]``."""
        if self.ops is not None:
            self.ops.access += 1
        if not 0 <= i < self._n:
            raise ValidationError(f"access index {i} out of range [0, {self._n})")
        lo, hi = 0, self._n
        value = 0
        for bv in self._levels:
            bit = bv._access_u(i)
            value = (value << 1) | bit
            ones_before_node = bv._rank1_u(lo)
            zeros_in_node = (hi - lo) - (bv._rank1_u(hi) - ones_before_node)
            if bit == 0:
                i = lo + (bv._rank0_u(i) - bv._rank0_u(lo))
                hi = lo + zeros_in_node
            else:
                i = lo + zeros_in_node + (bv._rank1_u(i) - ones_before_node)
                lo = lo + zeros_in_node
        return value

    def rank(self, c: int, i: int) -> int:
        """Occurrences of ``c`` in positions ``[0, i)``."""
        if self.ops is not None:
            self.ops.rank += 1
        if not 0 <= c < self._sigma:
            raise ValidationError(f"symbol {c} out of range [0, {self._sigma})")
        if not 0 <= i <= self._n:
            raise ValidationError(f"rank index {i} out of range [0, {self._n}]")
        memo = self._memo_rank
        if memo is not None:
            key = (c, i)
            hit = memo.get(key, _MISS)
            if hit is not _MISS:
                return hit
        result = self._rank_u(c, i)
        if memo is not None:
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            memo[key] = result
        return result

    def _rank_u(self, c: int, i: int) -> int:
        lo, hi = 0, self._n
        pos = i
        shift = self._height - 1
        for bv in self._levels:
            if pos <= lo:
                return 0
            ones_before_node = bv._rank1_u(lo)
            zeros_in_node = (hi - lo) - (bv._rank1_u(hi) - ones_before_node)
            if (c >> shift) & 1:
                pos = lo + zeros_in_node + (bv._rank1_u(pos) - ones_before_node)
                lo = lo + zeros_in_node
            else:
                pos = lo + (bv._rank0_u(pos) - bv._rank0_u(lo))
                hi = lo + zeros_in_node
            shift -= 1
        return pos - lo

    def rank_range(self, c: int, lo: int, hi: int) -> int:
        """Occurrences of ``c`` in the closed range ``[lo, hi]``."""
        if lo > hi:
            return 0
        return self.rank(c, hi + 1) - self.rank(c, lo)

    def select(self, c: int, j: int) -> int:
        """Position of the ``j``-th occurrence of ``c`` (``j`` from 1)."""
        if self.ops is not None:
            self.ops.select += 1
        if not 0 <= c < self._sigma:
            raise ValidationError(f"symbol {c} out of range [0, {self._sigma})")
        if not 1 <= j <= self._counts_i[c]:
            raise StructureError(
                f"select({c}, {j}) out of range: {self._counts_i[c]} occurrences"
            )
        # Descend to the leaf to collect node boundaries, then walk back up.
        nodes: list[tuple[int, int]] = []
        lo, hi = 0, self._n
        for level, bv in enumerate(self._levels):
            nodes.append((lo, hi))
            bit = (c >> (self._height - 1 - level)) & 1
            ones_before_node = bv._rank1_u(lo)
            zeros_in_node = (hi - lo) - (bv._rank1_u(hi) - ones_before_node)
            if bit == 0:
                hi = lo + zeros_in_node
            else:
                lo = lo + zeros_in_node
        offset = j - 1  # 0-based offset inside the leaf interval
        for level in range(self._height - 1, -1, -1):
            bv = self._levels[level]
            node_lo, _node_hi = nodes[level]
            bit = (c >> (self._height - 1 - level)) & 1
            if bit == 0:
                offset = bv._select0_u(bv._rank0_u(node_lo) + offset + 1) - node_lo
            else:
                offset = bv._select1_u(bv._rank1_u(node_lo) + offset + 1) - node_lo
        return nodes[0][0] + offset

    def select_next(self, c: int, start: int) -> int | None:
        """First position ``>= start`` holding symbol ``c``, or ``None``."""
        if start >= self._n:
            return None
        r = self.rank(c, max(start, 0))
        if r + 1 > self._counts_i[c]:
            return None
        return self.select(c, r + 1)

    # ------------------------------------------------------------------
    # range operations (Sec. 2.3 extended set)
    # ------------------------------------------------------------------
    def range_next_value(self, lo: int, hi: int, c: int) -> int | None:
        """Smallest symbol ``>= c`` occurring in ``S[lo..hi]`` (closed).

        Returns ``None`` when no such symbol exists. This is the paper's
        ``range_next_value`` primitive powering ``leap`` (Sec. 2.4).
        """
        if self.ops is not None:
            self.ops.range_next += 1
        if lo > hi or self._n == 0:
            return None
        if not (0 <= lo and hi < self._n):
            raise ValidationError(f"range [{lo}, {hi}] out of [0, {self._n})")
        if c >= self._sigma:
            return None
        return self._next_value_cached(lo, hi + 1, c if c > 0 else 0)

    def _next_value_cached(self, lo: int, hi_excl: int, c: int) -> int | None:
        """Memo wrapper over :meth:`_next_value` (args pre-validated)."""
        memo = self._memo_next
        if memo is not None:
            key = (lo, hi_excl, c)
            hit = memo.get(key, _MISS)
            if hit is not _MISS:
                return hit
        result = self._next_value(0, 0, self._n, lo, hi_excl, 0, c)
        if memo is not None:
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            memo[key] = result
        return result

    def _next_value(
        self,
        level: int,
        node_lo: int,
        node_hi: int,
        r_lo: int,
        r_hi: int,
        prefix: int,
        c: int,
    ) -> int | None:
        """Recursive helper over node (``[node_lo, node_hi)``, value prefix).

        ``[r_lo, r_hi)`` is the query range mapped into this node. Finds the
        minimum symbol >= c within the node's value span intersected with
        the mapped range.
        """
        if r_lo >= r_hi:
            return None
        span_bits = self._height - level
        node_min = prefix << span_bits
        if node_min + (1 << span_bits) - 1 < c:
            return None
        if level == self._height:
            return prefix
        bv = self._levels[level]
        ones_before_node = bv._rank1_u(node_lo)
        zeros_node = (node_hi - node_lo) - (bv._rank1_u(node_hi) - ones_before_node)
        zeros_before_node = bv._rank0_u(node_lo)
        zeros_before_rlo = bv._rank0_u(r_lo) - zeros_before_node
        zeros_before_rhi = bv._rank0_u(r_hi) - zeros_before_node
        ones_before_rlo = (r_lo - node_lo) - zeros_before_rlo
        ones_before_rhi = (r_hi - node_lo) - zeros_before_rhi
        left_lo = node_lo
        left_hi = node_lo + zeros_node
        right_lo = left_hi
        if node_min >= c:
            # Entire node qualifies: return its range minimum.
            if zeros_before_rhi > zeros_before_rlo:
                return self._next_value(
                    level + 1, left_lo, left_hi,
                    left_lo + zeros_before_rlo, left_lo + zeros_before_rhi,
                    prefix << 1, c,
                )
            return self._next_value(
                level + 1, right_lo, node_hi,
                right_lo + ones_before_rlo, right_lo + ones_before_rhi,
                (prefix << 1) | 1, c,
            )
        # Node straddles c: try the left child first, then the right one.
        found = self._next_value(
            level + 1, left_lo, left_hi,
            left_lo + zeros_before_rlo, left_lo + zeros_before_rhi,
            prefix << 1, c,
        )
        if found is not None:
            return found
        return self._next_value(
            level + 1, right_lo, node_hi,
            right_lo + ones_before_rlo, right_lo + ones_before_rhi,
            (prefix << 1) | 1, c,
        )

    def range_count(self, lo: int, hi: int, a: int, b: int) -> int:
        """Occurrences of symbols in ``[a, b]`` within ``S[lo..hi]``.

        The classic 2-D dominance counting on a wavelet tree, in
        ``O(log sigma)``: descend splitting the symbol interval.
        """
        if self.ops is not None:
            self.ops.range_count += 1
        if lo > hi or a > b or self._n == 0:
            return 0
        if not (0 <= lo and hi < self._n):
            raise ValidationError(f"range [{lo}, {hi}] out of [0, {self._n})")
        a = max(a, 0)
        b = min(b, self._sigma - 1)
        if a > b:
            return 0
        return self._range_count(0, 0, self._n, lo, hi + 1, 0, a, b)

    def _range_count(
        self,
        level: int,
        node_lo: int,
        node_hi: int,
        r_lo: int,
        r_hi: int,
        prefix: int,
        a: int,
        b: int,
    ) -> int:
        if r_lo >= r_hi:
            return 0
        span_bits = self._height - level
        node_min = prefix << span_bits
        node_max = node_min + (1 << span_bits) - 1
        if node_max < a or node_min > b:
            return 0
        if a <= node_min and node_max <= b:
            return r_hi - r_lo
        bv = self._levels[level]
        ones_before_node = bv._rank1_u(node_lo)
        zeros_node = (node_hi - node_lo) - (bv._rank1_u(node_hi) - ones_before_node)
        zeros_before_node = bv._rank0_u(node_lo)
        zeros_before_rlo = bv._rank0_u(r_lo) - zeros_before_node
        zeros_before_rhi = bv._rank0_u(r_hi) - zeros_before_node
        ones_before_rlo = (r_lo - node_lo) - zeros_before_rlo
        ones_before_rhi = (r_hi - node_lo) - zeros_before_rhi
        left_lo = node_lo
        right_lo = node_lo + zeros_node
        return self._range_count(
            level + 1, left_lo, left_lo + zeros_node,
            left_lo + zeros_before_rlo, left_lo + zeros_before_rhi,
            prefix << 1, a, b,
        ) + self._range_count(
            level + 1, right_lo, node_hi,
            right_lo + ones_before_rlo, right_lo + ones_before_rhi,
            (prefix << 1) | 1, a, b,
        )

    def quantile(self, lo: int, hi: int, j: int) -> int:
        """The ``j``-th smallest symbol of ``S[lo..hi]`` (``j`` from 1,
        counting multiplicity) — the classic wavelet-tree quantile query
        in ``O(log sigma)``."""
        if self.ops is not None:
            self.ops.quantile += 1
        if lo > hi or self._n == 0:
            raise ValidationError("quantile on an empty range")
        if not (0 <= lo and hi < self._n):
            raise ValidationError(f"range [{lo}, {hi}] out of [0, {self._n})")
        if not 1 <= j <= hi - lo + 1:
            raise ValidationError(
                f"quantile index {j} outside [1, {hi - lo + 1}]"
            )
        node_lo, node_hi = 0, self._n
        r_lo, r_hi = lo, hi + 1
        value = 0
        for bv in self._levels:
            ones_before_node = bv._rank1_u(node_lo)
            zeros_node = (node_hi - node_lo) - (
                bv._rank1_u(node_hi) - ones_before_node
            )
            zeros_before_node = bv._rank0_u(node_lo)
            zeros_before_rlo = bv._rank0_u(r_lo) - zeros_before_node
            zeros_before_rhi = bv._rank0_u(r_hi) - zeros_before_node
            zeros_in_range = zeros_before_rhi - zeros_before_rlo
            ones_before_rlo = (r_lo - node_lo) - zeros_before_rlo
            ones_before_rhi = (r_hi - node_lo) - zeros_before_rhi
            if j <= zeros_in_range:
                value <<= 1
                node_hi = node_lo + zeros_node
                r_lo = node_lo + zeros_before_rlo
                r_hi = node_lo + zeros_before_rhi
            else:
                j -= zeros_in_range
                value = (value << 1) | 1
                right_lo = node_lo + zeros_node
                r_lo = right_lo + ones_before_rlo
                r_hi = right_lo + ones_before_rhi
                node_lo = right_lo
        return value

    def count_distinct(self, lo: int, hi: int, cap: int | None = None) -> int:
        """Number of distinct symbols in ``S[lo..hi]`` (closed range).

        With ``cap`` set, counting stops early once the count reaches
        ``cap`` (useful for cardinality estimation where only "at least
        this many" matters).
        """
        count = 0
        for _ in self.distinct_values(lo, hi):
            count += 1
            if cap is not None and count >= cap:
                break
        return count

    def distinct_values(self, lo: int, hi: int) -> Iterator[int]:
        """Yield the distinct symbols of ``S[lo..hi]`` in increasing order."""
        if lo > hi or self._n == 0:
            return
        if not (0 <= lo and hi < self._n):
            raise ValidationError(f"range [{lo}, {hi}] out of [0, {self._n})")
        c = 0
        while True:
            if self.ops is not None:
                self.ops.range_next += 1
            value = self._next_value_cached(lo, hi + 1, c)
            if value is None:
                return
            yield value
            c = value + 1
            if c >= self._sigma:
                return

    def to_array(self) -> np.ndarray:
        """Reconstruct the full sequence (testing aid, O(n log sigma))."""
        return np.array([self.access(i) for i in range(self._n)], dtype=np.int64)
