"""Precomputed 16-bit popcount/select lookup tables for the hot kernel.

Built once at import (vectorized, a few milliseconds) and stored as
plain Python lists so the per-call cost in :mod:`repro.succinct.bitvector`
is a single ``list`` subscript — no numpy scalar boxing on the hot path.

* ``POPCOUNT16[w]`` — number of set bits of the 16-bit word ``w``.
* ``SELECT16[w]`` — the 16 select answers of ``w`` packed into one
  integer, 4 bits per answer: nibble ``j`` (0-based) holds the position
  of the ``(j+1)``-th set bit. Unset nibbles (``j >= popcount``) are 0
  and must never be consulted; callers reduce ``need`` below 16 first.

With these, ``select`` inside a 64-bit word is at most four popcount
table probes plus one packed-select probe, replacing the former
byte-at-a-time loop with an inner per-bit scan.
"""

from __future__ import annotations

import numpy as np


def _build_tables() -> tuple[list[int], list[int]]:
    codes = np.arange(1 << 16, dtype=np.uint32)
    bits = ((codes[:, None] >> np.arange(16, dtype=np.uint32)[None, :]) & 1).astype(
        np.uint8
    )
    popcount = bits.sum(axis=1).astype(np.int64)
    # ranks[w, p] = number of set bits of w among positions [0, p].
    ranks = bits.cumsum(axis=1).astype(np.uint64)
    packed = np.zeros(1 << 16, dtype=np.uint64)
    # Pack position p into nibble j = rank-1 of every word whose bit p is
    # set; 16 fully-vectorized passes beat a half-million-element scatter.
    for p in range(16):
        mask = bits[:, p].astype(bool)
        nibble = (ranks[mask, p] - 1) << np.uint64(2)
        packed[mask] |= np.uint64(p) << nibble
    return popcount.tolist(), packed.tolist()


POPCOUNT16, SELECT16 = _build_tables()


def select_in_word(word: int, need: int) -> int:
    """0-based position of the ``need``-th (1-based) set bit of ``word``.

    ``word`` is a non-negative int of at most 64 bits; callers guarantee
    ``1 <= need <= popcount(word)``.
    """
    chunk = word & 0xFFFF
    count = POPCOUNT16[chunk]
    offset = 0
    while need > count:
        need -= count
        word >>= 16
        offset += 16
        chunk = word & 0xFFFF
        count = POPCOUNT16[chunk]
    return offset + ((SELECT16[chunk] >> ((need - 1) << 2)) & 0xF)
