"""Succinct data structures: bitvectors, cumulative counts, wavelet trees.

These are Python/numpy equivalents of the SDSL structures used by the
paper's C++ implementation (Sec. 5): ``bit_vector`` + ``select_support_mcl``
becomes :class:`BitVector`, and the wavelet trees over the Ring columns and
the K-NN sequences become :class:`WaveletTree`. The operation set follows
Sec. 2.3 of the paper: ``rank``, ``select``, ``access``,
``range_next_value`` and distinct-symbol counting.
"""

from repro.succinct.arrays import CumulativeCounts
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree

__all__ = ["BitVector", "CumulativeCounts", "WaveletTree"]
