"""Static bitvector with O(1) rank and near-O(1) select.

The representation mirrors SDSL's plain ``bit_vector`` with rank/select
supports (the structures the paper's implementation uses, Sec. 5): bits
are packed into 64-bit words, and cumulative popcounts per word give
``rank`` in constant time and ``select`` by binary search over the
cumulative array plus an in-word bit scan. Total overhead is ~2 bits per
bit — keeping the whole index within a small constant of the
information-theoretic size, which the space experiment (Sec. 6.2)
depends on.

Hot-path layout (see ``docs/performance.md``): alongside the canonical
numpy buffers the constructor materializes *word caches* — plain Python
``list``\\ s of the words and cumulative counts — so the per-call kernel
never unboxes a numpy scalar; in-word select uses the precomputed 16-bit
popcount/select tables of :mod:`repro.succinct.tables`; and every public
operation validates once, then delegates to an unchecked ``_*_u``
variant that internal callers (:class:`~repro.succinct.wavelet_tree.
WaveletTree`, the Ring, the K-NN structures) may invoke directly when
their arguments are in-range by construction.

Conventions (0-based, half-open):

* ``rank1(i)``  = number of set bits among positions ``[0, i)``.
* ``select1(j)`` = position of the ``j``-th set bit, ``j`` in ``[1, ones]``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator

import numpy as np

from repro.succinct.tables import select_in_word
from repro.utils.errors import StructureError, ValidationError

_FULL_WORD = (1 << 64) - 1

# Kept as a module-level alias for callers that imported the historical
# helper; the table-backed implementation lives in repro.succinct.tables.
_select_in_word = select_in_word


class BitVector:
    """Immutable bit sequence supporting access, rank and select."""

    def __init__(self, bits: Iterable[int] | np.ndarray) -> None:
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        if arr.ndim != 1:
            raise ValidationError("bits must be one-dimensional")
        arr = arr.astype(np.uint8)
        if arr.size and arr.max() > 1:
            raise ValidationError("bits must contain only 0s and 1s")
        self._n = int(arr.size)
        n_words = (self._n + 63) // 64
        padded = np.zeros(n_words * 64, dtype=np.uint8)
        padded[: self._n] = arr
        words = padded.reshape(n_words, 64)
        weights = np.uint64(1) << np.arange(64, dtype=np.uint64)
        self._words = (words.astype(np.uint64) * weights).sum(
            axis=1, dtype=np.uint64
        )
        per_word = words.sum(axis=1, dtype=np.int64)
        # _cum1[w] = set bits before word w; _cum0 analogous for clear
        # bits (padding past n is excluded).
        self._cum1 = np.concatenate(([0], np.cumsum(per_word)))
        boundaries = np.minimum(
            64 * np.arange(n_words + 1, dtype=np.int64), self._n
        )
        self._cum0 = boundaries - self._cum1
        # Hot-path word caches: plain Python ints, so rank/select avoid
        # numpy scalar boxing entirely (the numpy buffers above remain
        # the canonical representation and what size_in_bytes reports).
        self._words_i: list[int] = self._words.tolist()
        self._cum1_i: list[int] = self._cum1.tolist()
        self._cum0_i: list[int] = self._cum0.tolist()

    # ------------------------------------------------------------------
    # pickling (worker-pool transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        """Pickle only the canonical numpy buffers.

        The plain-int word caches several-fold the pickled payload
        (boxed ints serialize one object each, the numpy words as one
        contiguous buffer) while being derivable in one ``tolist()``
        pass; dropping them keeps worker-pool spawn cheap. They are
        rebuilt lazily on first touch after unpickling (see
        :meth:`__getattr__`).
        """
        state = dict(self.__dict__)
        for name in ("_words_i", "_cum1_i", "_cum0_i"):
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getattr__(self, name: str) -> list[int]:
        # Lazily rebuild a cache dropped by __getstate__. Any other miss
        # must raise AttributeError (pickle/copy protocols probe for
        # optional dunders and rely on the exception).
        if name == "_words_i":
            value: list[int] = self._words.tolist()
        elif name == "_cum1_i":
            value = self._cum1.tolist()
        elif name == "_cum0_i":
            value = self._cum0.tolist()
        else:
            raise AttributeError(name)
        self.__dict__[name] = value
        return value

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        # One vectorized expansion instead of n validated access() calls.
        return iter(self.to_array().tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = "".join(str(self.access(i)) for i in range(min(self._n, 32)))
        suffix = "..." if self._n > 32 else ""
        return f"BitVector({head}{suffix}, n={self._n})"

    @property
    def n_ones(self) -> int:
        """Total number of set bits."""
        return self._cum1_i[-1]

    @property
    def n_zeros(self) -> int:
        """Total number of clear bits."""
        return self._n - self._cum1_i[-1]

    def size_in_bytes(self) -> int:
        """Bytes used by the underlying numpy buffers."""
        return self._words.nbytes + self._cum1.nbytes + self._cum0.nbytes

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def access(self, i: int) -> int:
        """Return bit ``i``."""
        if not 0 <= i < self._n:
            raise ValidationError(f"access index {i} out of range [0, {self._n})")
        return (self._words_i[i >> 6] >> (i & 63)) & 1

    def _access_u(self, i: int) -> int:
        """Unchecked :meth:`access` (``0 <= i < n`` is the caller's bond)."""
        return (self._words_i[i >> 6] >> (i & 63)) & 1

    def rank1(self, i: int) -> int:
        """Number of 1-bits in positions ``[0, i)``; ``i`` in ``[0, n]``."""
        if not 0 <= i <= self._n:
            raise ValidationError(f"rank index {i} out of range [0, {self._n}]")
        rem = i & 63
        if rem:
            w = i >> 6
            return self._cum1_i[w] + (
                self._words_i[w] & ((1 << rem) - 1)
            ).bit_count()
        return self._cum1_i[i >> 6]

    def _rank1_u(self, i: int) -> int:
        """Unchecked :meth:`rank1` (``0 <= i <= n`` is the caller's bond)."""
        rem = i & 63
        if rem:
            w = i >> 6
            return self._cum1_i[w] + (
                self._words_i[w] & ((1 << rem) - 1)
            ).bit_count()
        return self._cum1_i[i >> 6]

    def rank0(self, i: int) -> int:
        """Number of 0-bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def _rank0_u(self, i: int) -> int:
        return i - self._rank1_u(i)

    def select1(self, j: int) -> int:
        """Position of the ``j``-th 1-bit (``j`` counted from 1)."""
        if not 1 <= j <= self.n_ones:
            raise StructureError(
                f"select1({j}) out of range: vector has {self.n_ones} ones"
            )
        return self._select1_u(j)

    def _select1_u(self, j: int) -> int:
        """Unchecked :meth:`select1` (``1 <= j <= n_ones``)."""
        # First word whose cumulative count reaches j.
        w = bisect_left(self._cum1_i, j) - 1
        return (w << 6) + select_in_word(
            self._words_i[w], j - self._cum1_i[w]
        )

    def select0(self, j: int) -> int:
        """Position of the ``j``-th 0-bit (``j`` counted from 1)."""
        if not 1 <= j <= self.n_zeros:
            raise StructureError(
                f"select0({j}) out of range: vector has {self.n_zeros} zeros"
            )
        return self._select0_u(j)

    def _select0_u(self, j: int) -> int:
        """Unchecked :meth:`select0` (``1 <= j <= n_zeros``)."""
        w = bisect_left(self._cum0_i, j) - 1
        valid = self._n - (w << 6)
        if valid > 64:
            valid = 64
        inverted = ~self._words_i[w] & ((1 << valid) - 1)
        return (w << 6) + select_in_word(inverted, j - self._cum0_i[w])

    # ------------------------------------------------------------------
    # derived conveniences
    # ------------------------------------------------------------------
    def next_one(self, i: int) -> int | None:
        """Position of the first 1-bit at position >= ``i``, or ``None``."""
        if i >= self._n:
            return None
        r = self._rank1_u(i if i > 0 else 0)
        if r + 1 > self._cum1_i[-1]:
            return None
        return self._select1_u(r + 1)

    def rank1_range(self, lo: int, hi: int) -> int:
        """Number of 1-bits in the closed range ``[lo, hi]``."""
        if lo > hi:
            return 0
        return self.rank1(hi + 1) - self.rank1(lo)

    def to_array(self) -> np.ndarray:
        """Materialize the bits as a ``uint8`` numpy array (testing aid)."""
        if not self._n:
            return np.empty(0, dtype=np.uint8)
        weights = np.uint64(1) << np.arange(64, dtype=np.uint64)
        expanded = (
            (self._words[:, None] & weights[None, :]) > 0
        ).astype(np.uint8)
        return expanded.reshape(-1)[: self._n]
