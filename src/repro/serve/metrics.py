"""Server metrics built directly on the ``repro.obs`` counters.

:class:`ServerMetrics` is the cumulative, process-lifetime counterpart
of a per-query :class:`~repro.obs.trace.QueryTrace`: request/outcome
counters for the HTTP surface, evaluation-stat totals, and — for every
traced query — the per-structure wavelet-tree operation counts merged
into the *same* :class:`~repro.obs.trace.OpCounters` dataclass the
trace recorder uses. ``/metrics`` renders them in the Prometheus text
exposition format (the shape of openGauss-DBMind's exporters), and
``as_dict`` returns the identical numbers as JSON for programmatic
scrapes.

Thread safety: query outcomes are observed from the dispatcher's
executor thread while scrapes run on the event loop, so every mutation
and snapshot holds one lock. Metrics never touch a live trace object —
only finished trace *documents* — so the zero-overhead-when-disabled
contract of the recorder is untouched.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from repro.obs.trace import OpCounters

#: OpCounters fields accumulated from trace documents ("total" is
#: derived, never stored).
_OP_FIELDS = ("rank", "select", "access", "range_next", "range_count",
              "quantile")

#: Evaluation-stat totals accumulated from query results.
_STAT_FIELDS = ("solutions", "bindings", "attempts", "leap_calls")

#: Lifetime-event fields of a :meth:`repro.cache.QueryCache.stats`
#: snapshot (rendered as Prometheus counters).
_CACHE_EVENT_FIELDS = (
    "hits", "misses", "fills", "evictions", "invalidations",
    "inadmissible", "first_level_hits", "first_level_misses",
)

#: Occupancy fields of the same snapshot (rendered as gauges).
_CACHE_GAUGE_FIELDS = (
    "entries", "first_level_entries", "bytes", "max_bytes",
)


def _escape_label(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


class ServerMetrics:
    """Cumulative counters of one server process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        #: (endpoint, status code) -> count.
        self._requests: dict[tuple[str, int], int] = {}
        #: route ("batched" | "direct" | ...) -> completed queries.
        self._queries_by_route: dict[str, int] = {}
        self._queries_ok = 0
        self._queries_timeout = 0
        self._queries_error = 0
        self._queries_shed = 0
        self._queries_cached = 0
        self._stat_totals: dict[str, int] = {f: 0 for f in _STAT_FIELDS}
        self._query_seconds_total = 0.0
        self._query_seconds_max = 0.0
        self._traced_queries = 0
        #: structure label -> merged OpCounters (the repro.obs dataclass).
        self._wavelets: dict[str, OpCounters] = {}

    # ------------------------------------------------------------------
    # observation (called by the app / dispatcher)
    # ------------------------------------------------------------------
    def observe_request(self, endpoint: str, code: int) -> None:
        key = (endpoint, int(code))
        with self._lock:
            self._requests[key] = self._requests.get(key, 0) + 1

    def observe_shed(self) -> None:
        with self._lock:
            self._queries_shed += 1

    def observe_error(self) -> None:
        with self._lock:
            self._queries_error += 1

    def observe_query(
        self,
        route: str,
        elapsed: float,
        stats: Mapping[str, int],
        timed_out: bool,
        cached: bool = False,
    ) -> None:
        """Fold one completed evaluation into the totals."""
        elapsed = max(0.0, float(elapsed))
        with self._lock:
            self._queries_by_route[route] = (
                self._queries_by_route.get(route, 0) + 1
            )
            if timed_out:
                self._queries_timeout += 1
            else:
                self._queries_ok += 1
            if cached:
                self._queries_cached += 1
            for field in _STAT_FIELDS:
                self._stat_totals[field] += int(stats.get(field, 0))
            self._query_seconds_total += elapsed
            if elapsed > self._query_seconds_max:
                self._query_seconds_max = elapsed

    def observe_trace_document(self, document: Mapping[str, Any]) -> None:
        """Merge a finished trace document's wavelet op counts.

        Accepts the JSON form (:meth:`QueryTrace.to_dict`) so it works
        identically for serial traces and the merged documents the
        parallel executor produces.
        """
        wavelets = document.get("wavelets") or {}
        with self._lock:
            self._traced_queries += 1
            for label, op_counts in wavelets.items():
                counters = self._wavelets.get(label)
                if counters is None:
                    counters = self._wavelets[label] = OpCounters()
                for field in _OP_FIELDS:
                    setattr(
                        counters,
                        field,
                        getattr(counters, field) + int(op_counts.get(field, 0)),
                    )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def as_dict(
        self,
        gauges: Mapping[str, float] | None = None,
        cache: Mapping[str, int] | None = None,
    ) -> dict:
        """JSON snapshot (the same numbers the text exposition renders).

        ``cache`` is a :meth:`repro.cache.QueryCache.stats` snapshot;
        None means the server runs without a cache and the section is
        omitted entirely.
        """
        with self._lock:
            document: dict[str, Any] = {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": {
                    f"{endpoint} {code}": count
                    for (endpoint, code), count in sorted(
                        self._requests.items()
                    )
                },
                "queries": {
                    "ok": self._queries_ok,
                    "timeout": self._queries_timeout,
                    "error": self._queries_error,
                    "shed": self._queries_shed,
                    "cached": self._queries_cached,
                    "by_route": dict(sorted(self._queries_by_route.items())),
                    "traced": self._traced_queries,
                },
                "engine_stats": dict(self._stat_totals),
                "query_seconds": {
                    "total": self._query_seconds_total,
                    "max": self._query_seconds_max,
                },
                "wavelet_ops": {
                    label: counters.as_dict()
                    for label, counters in sorted(self._wavelets.items())
                },
            }
        if gauges:
            document["gauges"] = {k: gauges[k] for k in sorted(gauges)}
        if cache is not None:
            document["cache"] = {k: int(cache[k]) for k in sorted(cache)}
        return document

    def render_text(
        self,
        gauges: Mapping[str, float] | None = None,
        cache: Mapping[str, int] | None = None,
    ) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        lines: list[str] = []

        def metric(name: str, help_text: str, kind: str,
                   samples: list[tuple[str, float]]) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                rendered = (
                    value if value % 1 else int(value)
                )
                lines.append(f"{name}{labels} {rendered}")

        with self._lock:
            metric(
                "repro_requests_total",
                "HTTP requests served, by endpoint and status code.",
                "counter",
                [
                    (
                        f'{{endpoint="{_escape_label(endpoint)}",'
                        f'code="{code}"}}',
                        float(count),
                    )
                    for (endpoint, code), count in sorted(
                        self._requests.items()
                    )
                ],
            )
            metric(
                "repro_queries_total",
                "Completed query evaluations by outcome.",
                "counter",
                [
                    ('{outcome="ok"}', float(self._queries_ok)),
                    ('{outcome="timeout"}', float(self._queries_timeout)),
                    ('{outcome="error"}', float(self._queries_error)),
                    ('{outcome="shed"}', float(self._queries_shed)),
                ],
            )
            metric(
                "repro_queries_cached_total",
                "Completed query evaluations answered from the "
                "cross-query cache.",
                "counter",
                [("", float(self._queries_cached))],
            )
            metric(
                "repro_queries_by_route_total",
                "Completed query evaluations by scheduler route.",
                "counter",
                [
                    (f'{{route="{_escape_label(route)}"}}', float(count))
                    for route, count in sorted(
                        self._queries_by_route.items()
                    )
                ],
            )
            metric(
                "repro_engine_stat_total",
                "Evaluation-stat totals (repro.ltj.stats fields).",
                "counter",
                [
                    (f'{{stat="{field}"}}', float(self._stat_totals[field]))
                    for field in _STAT_FIELDS
                ],
            )
            metric(
                "repro_query_seconds_total",
                "Total evaluation wall seconds.",
                "counter",
                [("", self._query_seconds_total)],
            )
            metric(
                "repro_query_seconds_max",
                "Largest single evaluation wall time.",
                "gauge",
                [("", self._query_seconds_max)],
            )
            metric(
                "repro_traced_queries_total",
                "Queries evaluated under a repro.obs trace.",
                "counter",
                [("", float(self._traced_queries))],
            )
            wavelet_samples: list[tuple[str, float]] = []
            for label, counters in sorted(self._wavelets.items()):
                for field in _OP_FIELDS:
                    wavelet_samples.append(
                        (
                            f'{{structure="{_escape_label(label)}",'
                            f'op="{field}"}}',
                            float(getattr(counters, field)),
                        )
                    )
            metric(
                "repro_wavelet_ops_total",
                "Succinct-structure operation counts merged from traced "
                "queries (repro.obs OpCounters).",
                "counter",
                wavelet_samples,
            )
            uptime = time.monotonic() - self._started
        metric(
            "repro_uptime_seconds",
            "Seconds since the server process started.",
            "gauge",
            [("", uptime)],
        )
        for name in sorted(gauges or {}):
            metric(
                f"repro_{name}",
                f"Server gauge: {name.replace('_', ' ')}.",
                "gauge",
                [("", float(gauges[name]))],  # type: ignore[index]
            )
        if cache is not None:
            metric(
                "repro_cache_events_total",
                "Cross-query cache lifetime events "
                "(repro.cache.QueryCache.stats).",
                "counter",
                [
                    (f'{{event="{field}"}}', float(cache.get(field, 0)))
                    for field in _CACHE_EVENT_FIELDS
                ],
            )
            for field in _CACHE_GAUGE_FIELDS:
                metric(
                    f"repro_cache_{field}",
                    f"Cross-query cache occupancy: "
                    f"{field.replace('_', ' ')}.",
                    "gauge",
                    [("", float(cache.get(field, 0)))],
                )
        return "\n".join(lines) + "\n"
