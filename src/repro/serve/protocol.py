"""The JSON wire protocol of the ``repro serve`` query server.

Requests and responses are JSON documents validated against the
schemas below — defined in the same self-contained dialect as the
query-trace schema (:mod:`repro.obs.schema`) and checked through the
same validator (:func:`repro.obs.schema.validate_document`), so the
server's whole JSON surface shares one schema language.

The contract mirrors the CLI: a ``/query`` request carries the query
text plus the knobs ``repro query`` exposes (engine pin, per-query
deadline, solution limit, optional tracing); a ``/query`` response
carries the solutions in the exact order the serial engine would emit
them (the byte-identical contract the test battery pins), the selected
engine, timing, the evaluation stats, and — when tracing was requested
— the full schema-validated trace document. Errors are typed: the
``error.type`` field names the library exception class
(``QueryError``, ``StoreFormatError``, ``TimeoutExceeded``,
``AdmissionRejected``...), never a bare traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.obs.schema import TRACE_SCHEMA, TraceSchemaError, validate_document
from repro.query.model import Var
from repro.utils.errors import ValidationError

#: Engine names a request may pin. ``auto`` (the default) routes through
#: the scheduler's strategy selection; the two Ring engines force one
#: serial strategy for that request.
SERVE_ENGINES: tuple[str, ...] = ("auto", "ring-knn", "ring-knn-s")

_COUNTER = {"type": "integer", "minimum": 0}

#: ``POST /query`` request body.
QUERY_REQUEST_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["query"],
    "properties": {
        "query": {"type": "string"},
        "engine": {"type": "string", "enum": list(SERVE_ENGINES)},
        "timeout": {"type": ["number", "null"], "minimum": 0},
        "limit": {"type": ["integer", "null"], "minimum": 0},
        "trace": {"type": "boolean"},
        "debug": {"type": ["string", "null"]},
    },
}

#: ``POST /explain`` request body.
EXPLAIN_REQUEST_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["query"],
    "properties": {
        "query": {"type": "string"},
        "engine": {
            "type": "string",
            "enum": ["ring-knn", "ring-knn-s", "parallel-knn"],
        },
        "analyze": {"type": "boolean"},
        "timeout": {"type": ["number", "null"], "minimum": 0},
    },
}

#: One solution: variable name -> bound constant.
_SOLUTION_SCHEMA = {"type": "object", "values": {"type": "integer"}}

#: Successful ``POST /query`` response body.
QUERY_RESPONSE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["status", "engine", "route", "solutions", "elapsed",
                 "timed_out", "cached", "stats"],
    "properties": {
        "status": {"type": "string", "enum": ["ok"]},
        "engine": {"type": "string"},
        "route": {"type": "string"},
        "solutions": {"type": "array", "items": _SOLUTION_SCHEMA},
        "elapsed": {"type": "number", "minimum": 0},
        "timed_out": {"type": "boolean"},
        "cached": {"type": "boolean"},
        "stats": {"type": "object", "values": _COUNTER},
        "trace": dict(TRACE_SCHEMA, type=["object", "null"]),
    },
}

#: Successful ``POST /explain`` response body.
EXPLAIN_RESPONSE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["status", "engine", "report"],
    "properties": {
        "status": {"type": "string", "enum": ["ok"]},
        "engine": {"type": "string"},
        "report": {"type": "string"},
        "trace": dict(TRACE_SCHEMA, type=["object", "null"]),
    },
}

#: Error response body (any endpoint, any non-2xx status).
ERROR_RESPONSE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["status", "error"],
    "properties": {
        "status": {"type": "string", "enum": ["error"]},
        "error": {
            "type": "object",
            "required": ["type", "message"],
            "properties": {
                "type": {"type": "string"},
                "message": {"type": "string"},
                "retry_after": {"type": "integer", "minimum": 1},
                "elapsed": {"type": "number", "minimum": 0},
            },
        },
    },
}


@dataclass(frozen=True)
class QueryRequest:
    """Parsed, validated ``/query`` request."""

    query: str
    engine: str = "auto"
    timeout: float | None = None
    limit: int | None = None
    trace: bool = False
    debug: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (every field present, defaults included)."""
        return {
            "query": self.query,
            "engine": self.engine,
            "timeout": self.timeout,
            "limit": self.limit,
            "trace": self.trace,
            "debug": self.debug,
        }


@dataclass(frozen=True)
class ExplainRequest:
    """Parsed, validated ``/explain`` request."""

    query: str
    engine: str = "ring-knn"
    analyze: bool = False
    timeout: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "engine": self.engine,
            "analyze": self.analyze,
            "timeout": self.timeout,
        }


def _decode_body(body: bytes | str) -> dict[str, Any]:
    if isinstance(body, bytes):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"request body is not UTF-8: {exc}") from exc
    try:
        document = json.loads(body or "null")
    except json.JSONDecodeError as exc:
        raise ValidationError(f"request body is not JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ValidationError(
            f"request body must be a JSON object, got "
            f"{type(document).__name__}"
        )
    return document


def _checked(document: Mapping[str, Any], schema: dict[str, Any]) -> None:
    """Schema-validate and reject unknown top-level keys."""
    unknown = sorted(set(document) - set(schema["properties"]))
    if unknown:
        raise ValidationError(
            f"unknown request field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(schema['properties']))})"
        )
    try:
        validate_document(dict(document), schema, "$")
    except TraceSchemaError as exc:
        raise ValidationError(f"malformed request: {exc}") from exc


def parse_query_request(body: bytes | str | Mapping[str, Any]) -> QueryRequest:
    """Decode + validate a ``/query`` body; raises ValidationError."""
    document = body if isinstance(body, Mapping) else _decode_body(body)
    _checked(document, QUERY_REQUEST_SCHEMA)
    timeout = document.get("timeout")
    return QueryRequest(
        query=document["query"],
        engine=document.get("engine", "auto"),
        timeout=None if timeout is None else float(timeout),
        limit=document.get("limit"),
        trace=bool(document.get("trace", False)),
        debug=document.get("debug"),
    )


def parse_explain_request(
    body: bytes | str | Mapping[str, Any],
) -> ExplainRequest:
    """Decode + validate an ``/explain`` body; raises ValidationError."""
    document = body if isinstance(body, Mapping) else _decode_body(body)
    _checked(document, EXPLAIN_REQUEST_SCHEMA)
    timeout = document.get("timeout")
    return ExplainRequest(
        query=document["query"],
        engine=document.get("engine", "ring-knn"),
        analyze=bool(document.get("analyze", False)),
        timeout=None if timeout is None else float(timeout),
    )


def encode_solutions(
    solutions: Sequence[Mapping[Var, int]],
) -> list[dict[str, int]]:
    """Solutions as JSON rows, variable names sorted within each row.

    The *list* order is preserved exactly — it is the serial engine's
    enumeration order, which the byte-identical contract compares.
    """
    return [
        {
            var.name: int(constant)
            for var, constant in sorted(
                solution.items(), key=lambda item: item[0].name
            )
        }
        for solution in solutions
    ]


def query_response(
    result: Any,
    route: str,
    trace: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the ``/query`` success body from a ``QueryResult``."""
    stats = result.stats
    document: dict[str, Any] = {
        "status": "ok",
        "engine": result.engine,
        "route": route,
        "solutions": encode_solutions(result.solutions),
        "elapsed": max(0.0, float(result.elapsed)),
        "timed_out": bool(result.timed_out),
        "cached": bool(getattr(result, "cached", False)),
        "stats": {
            "solutions": int(stats.solutions),
            "bindings": int(stats.bindings),
            "attempts": int(stats.attempts),
            "leap_calls": int(stats.leap_calls),
        },
    }
    if trace is not None:
        document["trace"] = dict(trace)
    return document


def explain_response(
    engine: str, report: str, trace: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Build the ``/explain`` success body."""
    document: dict[str, Any] = {
        "status": "ok",
        "engine": engine,
        "report": report,
    }
    if trace is not None:
        document["trace"] = dict(trace)
    return document


def error_response(
    error_type: str, message: str, **extra: int | float
) -> dict[str, Any]:
    """Build a typed error body (``error.type`` names the exception)."""
    error: dict[str, Any] = {"type": error_type, "message": message}
    error.update(extra)
    return {"status": "error", "error": error}


def validate_query_response(document: Mapping[str, Any]) -> None:
    """Schema-check a ``/query`` success body (tests, smoke clients)."""
    validate_document(dict(document), QUERY_RESPONSE_SCHEMA, "$")


def validate_explain_response(document: Mapping[str, Any]) -> None:
    """Schema-check an ``/explain`` success body."""
    validate_document(dict(document), EXPLAIN_RESPONSE_SCHEMA, "$")


def validate_error_response(document: Mapping[str, Any]) -> None:
    """Schema-check an error body."""
    validate_document(dict(document), ERROR_RESPONSE_SCHEMA, "$")
