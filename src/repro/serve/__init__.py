"""Long-running query server: ``repro serve``.

One warm worker pool, many concurrent HTTP clients:

* :mod:`repro.serve.app` — the asyncio server (admission → deadline →
  single-threaded dispatch through the batched
  :class:`~repro.parallel.scheduler.QueryScheduler` → typed responses),
  plus the CLI entry point :func:`run_server` and the in-process
  :class:`ServerThread` the tests drive.
* :mod:`repro.serve.protocol` — the JSON wire protocol and its schemas
  (same dialect and validator as the trace schema).
* :mod:`repro.serve.admission` — the bounded admission window (429 +
  ``Retry-After`` shedding, drain support).
* :mod:`repro.serve.metrics` — process-lifetime counters built on the
  ``repro.obs`` :class:`~repro.obs.trace.OpCounters`, exported at
  ``/metrics`` as Prometheus text or JSON.
* :mod:`repro.serve.smoke` — a stdlib HTTP client smoke battery
  (``python -m repro.serve.smoke``) the CI serve job runs against a
  freshly booted server.

See ``docs/serving.md`` for endpoint and semantics documentation.
"""

from repro.serve.admission import AdmissionController
from repro.serve.app import ReproServer, ServeConfig, ServerThread, run_server
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    ERROR_RESPONSE_SCHEMA,
    EXPLAIN_REQUEST_SCHEMA,
    EXPLAIN_RESPONSE_SCHEMA,
    QUERY_REQUEST_SCHEMA,
    QUERY_RESPONSE_SCHEMA,
    ExplainRequest,
    QueryRequest,
    parse_explain_request,
    parse_query_request,
)

__all__ = [
    "AdmissionController",
    "ERROR_RESPONSE_SCHEMA",
    "EXPLAIN_REQUEST_SCHEMA",
    "EXPLAIN_RESPONSE_SCHEMA",
    "ExplainRequest",
    "QUERY_REQUEST_SCHEMA",
    "QUERY_RESPONSE_SCHEMA",
    "QueryRequest",
    "ReproServer",
    "ServeConfig",
    "ServerMetrics",
    "ServerThread",
    "parse_explain_request",
    "parse_query_request",
    "run_server",
]
