"""Client-side smoke battery for a running ``repro serve`` instance.

Stdlib-only HTTP client (``http.client``) so the CI serve job can run
it in any environment the server runs in. Exercises the whole surface:

1. ``GET /healthz`` — server is up, reports its store and pool shape;
2. ``POST /query`` — solutions come back, response body validates
   against :data:`repro.serve.protocol.QUERY_RESPONSE_SCHEMA`;
3. ``POST /query`` with ``trace`` — the embedded trace document
   validates against the trace schema;
4. ``POST /explain`` with ``analyze`` — plan text plus validated trace;
5. malformed request — typed 400, never a traceback;
6. ``GET /metrics`` — Prometheus text scrape (optionally written to
   ``--out`` as the CI artifact) and the JSON form agree on the query
   counter.

Exit code 0 when every step passes::

    python -m repro.serve.smoke --port 8080 [--out metrics.txt]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from typing import Any

from repro.obs import validate_trace
from repro.serve.protocol import (
    validate_error_response,
    validate_explain_response,
    validate_query_response,
)

DEFAULT_QUERY = "(?e, 0, ?img) . knn(?img, ?other, 5)"


class SmokeFailure(AssertionError):
    """One smoke step did not behave as required."""


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
    timeout: float = 120.0,
) -> tuple[int, dict[str, str], bytes]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {} if body is None else {"Content-Type": "application/json"}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            raw,
        )
    finally:
        connection.close()


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def run_smoke(
    host: str,
    port: int,
    query: str = DEFAULT_QUERY,
    out: str | None = None,
    log=print,
) -> None:
    """Run every smoke step against ``host:port``; raises on failure."""
    # 1. health
    code, _headers, raw = _request(host, port, "GET", "/healthz")
    _check(code == 200, f"/healthz returned {code}")
    health = json.loads(raw)
    _check(health["status"] == "ok", f"health status {health['status']!r}")
    log(f"healthz ok: workers={health['workers']}, store={health['store']}")

    # 2. plain query
    code, _headers, raw = _request(
        host, port, "POST", "/query", {"query": query}
    )
    _check(code == 200, f"/query returned {code}: {raw[:200]!r}")
    plain = json.loads(raw)
    validate_query_response(plain)
    log(
        f"query ok: {len(plain['solutions'])} solutions via "
        f"{plain['engine']} [{plain['route']}]"
    )

    # 3. traced query: identical solutions plus a schema-valid trace
    code, _headers, raw = _request(
        host, port, "POST", "/query", {"query": query, "trace": True}
    )
    _check(code == 200, f"traced /query returned {code}: {raw[:200]!r}")
    traced = json.loads(raw)
    validate_query_response(traced)
    _check(
        traced["solutions"] == plain["solutions"],
        "traced run returned different solutions",
    )
    _check(traced.get("trace") is not None, "trace requested but absent")
    validate_trace(traced["trace"])
    log(f"traced query ok: {sum(w['total'] for w in traced['trace']['wavelets'].values())} wavelet ops")

    # 4. explain analyze
    code, _headers, raw = _request(
        host, port, "POST", "/explain", {"query": query, "analyze": True}
    )
    _check(code == 200, f"/explain returned {code}: {raw[:200]!r}")
    explained = json.loads(raw)
    validate_explain_response(explained)
    _check(explained.get("trace") is not None, "analyze trace absent")
    validate_trace(explained["trace"])
    log(f"explain ok: engine {explained['engine']}")

    # 5. malformed request: typed error, not a traceback
    code, _headers, raw = _request(
        host, port, "POST", "/query", {"query": "(?x"}
    )
    _check(code == 400, f"malformed query returned {code}, wanted 400")
    error = json.loads(raw)
    validate_error_response(error)
    log(f"malformed query rejected: {error['error']['type']}")

    # 6. metrics: text scrape (the CI artifact) + JSON agreement
    code, _headers, raw = _request(host, port, "GET", "/metrics")
    _check(code == 200, f"/metrics returned {code}")
    text = raw.decode("utf-8")
    _check(
        "repro_queries_total" in text and "repro_wavelet_ops_total" in text,
        "metrics exposition is missing expected families",
    )
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        log(f"wrote metrics scrape to {out}")
    code, _headers, raw = _request(
        host, port, "GET", "/metrics?format=json"
    )
    _check(code == 200, f"/metrics?format=json returned {code}")
    doc = json.loads(raw)
    _check(
        doc["queries"]["ok"] >= 2,
        f"expected >= 2 completed queries, metrics say {doc['queries']}",
    )
    log(f"metrics ok: {doc['queries']['ok']} queries served")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="smoke-test a running repro serve instance"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--query", default=DEFAULT_QUERY)
    parser.add_argument(
        "--out", default=None, help="write the /metrics text scrape here"
    )
    args = parser.parse_args(argv)
    try:
        run_smoke(args.host, args.port, query=args.query, out=args.out)
    except (SmokeFailure, OSError, json.JSONDecodeError) as exc:
        print(f"smoke FAILED: {exc}", file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI job
    sys.exit(main())
