"""Admission control for the query server: a bounded in-flight window.

The server admits at most ``capacity`` queries at a time — queued for
the dispatcher plus currently evaluating. Beyond that it *sheds*
immediately (HTTP 429) instead of queueing unboundedly: under overload
a bounded queue keeps tail latency flat and tells clients when to come
back, which is the behaviour the ROADMAP's "heavy traffic" north star
needs (and what the openGauss-DBMind exporter apps model).

The ``Retry-After`` hint is derived from observed service times: an
exponential moving average of per-query seconds (the same smoothing
the scheduler's cost feedback uses) times the number of queries ahead
of the rejected one, divided by the effective parallelism. Before any
query completes the hint falls back to one second.

Everything here runs on the asyncio event loop thread — admission is a
control-plane decision — so no locking is needed; completions arriving
from executor threads are marshalled back via
``loop.call_soon_threadsafe`` by the caller (:mod:`repro.serve.app`).
"""

from __future__ import annotations

import math

from repro.utils.errors import AdmissionRejected, ServerDraining

#: Smoothing factor of the service-time EWMA (matches the scheduler's
#: cost-feedback alpha).
EWMA_ALPHA = 0.3


class AdmissionController:
    """Bounded admission window with load-shedding and drain support."""

    def __init__(self, capacity: int, parallelism: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"admission capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.parallelism = max(1, int(parallelism))
        self.inflight = 0
        self.draining = False
        #: Monotonically increasing counters for /metrics.
        self.admitted_total = 0
        self.shed_total = 0
        self.rejected_draining_total = 0
        self._service_ewma: float | None = None

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self) -> None:
        """Claim one admission slot or raise a typed rejection.

        Raises :class:`ServerDraining` once a shutdown has begun (the
        caller maps it to 503) and :class:`AdmissionRejected` when the
        window is full (mapped to 429 with ``Retry-After``).
        """
        if self.draining:
            self.rejected_draining_total += 1
            raise ServerDraining(
                "server is draining: in-flight queries finish, new "
                "queries are not admitted"
            )
        if self.inflight >= self.capacity:
            self.shed_total += 1
            raise AdmissionRejected(
                f"admission queue full ({self.inflight} in flight, "
                f"capacity {self.capacity}); retry later",
                retry_after=self.retry_after(),
            )
        self.inflight += 1
        self.admitted_total += 1

    def release(self, elapsed: float | None = None) -> None:
        """Return one slot, optionally folding the observed service time
        into the Retry-After estimate."""
        if self.inflight <= 0:
            raise RuntimeError("admission release without a matching admit")
        self.inflight -= 1
        if elapsed is not None and elapsed > 0.0:
            previous = self._service_ewma
            self._service_ewma = (
                elapsed
                if previous is None
                else previous + EWMA_ALPHA * (elapsed - previous)
            )

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; already-admitted queries keep their slots."""
        self.draining = True

    @property
    def drained(self) -> bool:
        """True once draining has begun and nothing is in flight."""
        return self.draining and self.inflight == 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def retry_after(self) -> int:
        """Suggested client back-off in whole seconds, >= 1.

        ``EWMA service seconds x queries ahead / parallelism``, rounded
        up and clamped to [1, 60] so a misbehaving estimate can never
        tell clients to wait arbitrarily long.
        """
        if self._service_ewma is None:
            return 1
        estimate = self._service_ewma * self.inflight / self.parallelism
        return max(1, min(60, math.ceil(estimate)))

    def service_seconds(self) -> float | None:
        """The observed service-time EWMA (None before first release)."""
        return self._service_ewma
