"""The long-running query server behind ``repro serve``.

Architecture — one asyncio event loop, one dispatch thread, one worker
pool:

* The **event loop** (stdlib ``asyncio`` streams, no third-party HTTP
  stack) accepts connections, parses requests, and makes the
  control-plane decisions: admission (:mod:`repro.serve.admission`),
  deadline assignment, shedding, drain. It never evaluates a query.
* Admitted queries go onto an in-loop queue that a single **dispatcher**
  consumes. Each wakeup it drains whatever is queued, micro-batches the
  compatible requests (``auto`` engine, no trace) and hands each batch
  to :meth:`repro.parallel.scheduler.QueryScheduler.run_batch` — the
  LPT-grouped, feedback-costed batched executor — on a one-thread
  executor. Traced, engine-pinned, or ``/explain`` requests run on the
  same thread individually. The scheduler and the shared
  :class:`~repro.parallel.executor.WorkerPool` are not thread-safe;
  funnelling every evaluation through this one thread is what makes the
  warm pool shareable across concurrent HTTP clients.
* **Deadlines are end-to-end**: a request's budget starts at admission,
  so time spent queued counts against it. At dispatch the remaining
  budget becomes the engine ``timeout``, which the existing timeout
  machinery honours cooperatively — the engine returns a
  ``timed_out``-flagged result instead of raising, the server maps it
  to a typed 504, and the pool is never poisoned by a cancelled query.
* **Drain** (SIGTERM/SIGINT or :meth:`ReproServer.request_shutdown`):
  stop accepting, reject new queries with a typed 503, let in-flight
  queries finish (bounded by ``drain_grace``), then tear down the
  dispatcher, the pool, and — when the database was ``--from-index``
  loaded — the mmap store, and exit 0.

Fault injection (``debug_faults=True`` only) drives the test battery:
``{"debug": "raise"}`` raises in the dispatch thread, ``"worker-raise"``
raises inside a real pool worker
(:meth:`~repro.parallel.executor.WorkerPool.run_fault_probe`), and
``"sleep:<seconds>"`` stalls dispatch to force deadline/drain overlap.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.cache import CacheConfig, DEFAULT_MAX_BYTES, QueryCache
from repro.engines.auto import AutoEngine
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.explain import explain as explain_plan
from repro.obs import QueryTrace, validate_trace
from repro.parallel.executor import close_pools_for, pool_for
from repro.parallel.scheduler import QueryScheduler
from repro.query.model import ExtendedBGP
from repro.query.parser import parse_query
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.metrics import ServerMetrics
from repro.utils.errors import (
    AdmissionRejected,
    ReproError,
    ServerDraining,
    TimeoutExceeded,
    ValidationError,
)

#: Longest ``sleep:<s>`` fault a debug request may inject.
MAX_DEBUG_SLEEP = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server process (all have CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 = ephemeral: the kernel picks, :attr:`ReproServer.port` tells."""

    workers: int = 2
    """Worker-pool size; 1 disables the pool (serial evaluation)."""

    capacity: int = 16
    """Admission window: queued-plus-evaluating queries beyond this shed
    with 429."""

    parallel_threshold: int = 256
    default_timeout: float | None = 60.0
    """Per-query deadline when the request does not set one."""

    max_timeout: float = 600.0
    """Hard ceiling on any requested deadline."""

    drain_grace: float = 30.0
    """Seconds a drain waits for in-flight queries before giving up."""

    microbatch: int = 8
    """Most queries per scheduler round trip (one dispatcher wakeup may
    issue several)."""

    max_body: int = 1 << 20
    debug_faults: bool = False
    """Allow the ``debug`` request field (fault-injection battery)."""

    cache: bool = True
    """Share a cross-query result cache (:mod:`repro.cache`) between
    the scheduler's batched route and the direct route; ``repro serve
    --no-cache`` disables it."""

    cache_bytes: int = DEFAULT_MAX_BYTES
    """Byte budget of the shared cache's packed solution matrices."""


@dataclass(frozen=True)
class _HttpResponse:
    code: int
    body: Any
    """dict → JSON; str → preformatted text."""

    content_type: str = "application/json"
    headers: Mapping[str, str] = field(default_factory=dict)


@dataclass
class _Pending:
    """One admitted request travelling loop → dispatcher → loop."""

    kind: str
    """``"query"`` or ``"explain"``."""

    request: Any
    query: ExtendedBGP
    admitted_at: float
    deadline_at: float | None
    future: "asyncio.Future[_HttpResponse]"


#: Queue sentinel ending the dispatcher loop.
_STOP = object()


class ReproServer:
    """One server instance bound to one database."""

    def __init__(self, db: GraphDatabase, config: ServeConfig) -> None:
        self._db = db
        self.config = config
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(
            config.capacity, parallelism=max(1, config.workers)
        )
        # One cache for every route: the batched scheduler path, the
        # direct (traced / pinned) path, and /explain --analyze all
        # probe and fill the same table. QueryCache is internally
        # locked, so the /metrics scrape from the event loop is safe
        # against fills on the dispatch thread.
        self.cache: QueryCache | None = (
            QueryCache(CacheConfig(max_bytes=config.cache_bytes))
            if config.cache
            else None
        )
        self._scheduler = QueryScheduler(
            db,
            workers=config.workers,
            parallel_threshold=config.parallel_threshold,
            cache=self.cache,
        )
        # Direct route: `auto` inherits the scheduler's pool (same
        # (db, workers) cache key) so traced requests reuse the warm
        # workers; pinned engines are the serial strategies themselves.
        self._auto = AutoEngine(db, workers=config.workers, cache=self.cache)
        self._serial = {
            engine.name: engine
            for engine in (RingKnnEngine(db), RingKnnSEngine(db))
        }
        self._dispatch_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher_task: asyncio.Task | None = None
        self._shutdown_task: asyncio.Task | None = None
        self._closed_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.host = config.host
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm the pool, start the dispatcher, bind the socket."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._closed_event = asyncio.Event()
        if self.config.workers >= 2:
            # Ready means *warm*: flatten/attach happens before the
            # first client can connect, not under it.
            await self._loop.run_in_executor(
                self._dispatch_pool, self._scheduler.warmup
            )
        self._dispatcher_task = self._loop.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe from signal handlers and other
        threads, idempotent."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._begin_shutdown)

    def _begin_shutdown(self) -> None:
        if self._shutdown_task is None and self._loop is not None:
            self._shutdown_task = self._loop.create_task(self.shutdown())

    async def shutdown(self) -> None:
        """Drain then tear down: the SIGTERM path."""
        assert self._queue is not None and self._closed_event is not None
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace
        while self.admission.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        # Let just-resolved responses flush before connections close.
        await asyncio.sleep(0.05)
        await self._queue.put(_STOP)
        clean = True
        if self._dispatcher_task is not None:
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._dispatcher_task),
                    timeout=self.config.drain_grace,
                )
            except (asyncio.TimeoutError, Exception):
                clean = False
                self._dispatcher_task.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if clean:
            # reprolint: disable=RPL009 -- post-drain the dispatcher task has exited and the queue is empty, so the single dispatch worker is idle: shutdown(wait=True) returns without blocking on query work
            self._dispatch_pool.shutdown(wait=True)
        else:  # pragma: no cover - a query outlived the drain grace
            # reprolint: disable=RPL009 -- wait=False never joins the worker thread; cancel_futures only flips pending futures, a bounded O(queue) loop-safe operation
            self._dispatch_pool.shutdown(wait=False, cancel_futures=True)
        self._scheduler.close()
        self._closed_event.set()

    async def wait_closed(self) -> None:
        """Block until a drain has fully completed."""
        assert self._closed_event is not None
        await self._closed_event.wait()

    # ------------------------------------------------------------------
    # dispatcher (the only code that touches the scheduler / pool)
    # ------------------------------------------------------------------
    @staticmethod
    def _batchable(item: _Pending) -> bool:
        return (
            item.kind == "query"
            and item.request.engine == "auto"
            and not item.request.trace
            and item.request.debug is None
        )

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None and self._queue is not None
        while True:
            first = await self._queue.get()
            entries = [first]
            while True:
                try:
                    entries.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            stop = any(entry is _STOP for entry in entries)
            work = [entry for entry in entries if entry is not _STOP]
            groups: dict[Any, list[_Pending]] = {}
            direct: list[_Pending] = []
            for entry in work:
                if self._batchable(entry):
                    # Micro-batches share one `limit`: run_batch applies
                    # a single limit to the whole batch.
                    groups.setdefault(entry.request.limit, []).append(entry)
                else:
                    direct.append(entry)
            size = max(1, self.config.microbatch)
            for group in groups.values():
                for start in range(0, len(group), size):
                    await self._loop.run_in_executor(
                        self._dispatch_pool,
                        self._run_batched,
                        group[start:start + size],
                    )
            for entry in direct:
                await self._loop.run_in_executor(
                    self._dispatch_pool, self._run_direct, entry
                )
            if stop:
                return

    def _resolve(self, item: _Pending, response: _HttpResponse) -> None:
        """Deliver a response back to the waiting handler (thread-safe)."""
        assert self._loop is not None

        def _set() -> None:
            if not item.future.done():
                item.future.set_result(response)

        self._loop.call_soon_threadsafe(_set)

    def _recycle_pools(self) -> None:
        """Drop the cached worker pools after an unexpected failure.

        Pools are created lazily, so the next request transparently gets
        a fresh one — a crashed worker costs one 500, not the server.
        """
        close_pools_for(self._db)

    def _deadline_response(
        self, item: _Pending, route: str, now: float
    ) -> _HttpResponse:
        elapsed = max(0.0, now - item.admitted_at)
        self.metrics.observe_query(route, elapsed, {}, timed_out=True)
        return _HttpResponse(
            504,
            protocol.error_response(
                "TimeoutExceeded",
                f"query deadline expired after {elapsed:.3f}s "
                "(before evaluation finished starting)",
                elapsed=elapsed,
            ),
        )

    def _failure_response(self, exc: BaseException) -> _HttpResponse:
        self.metrics.observe_error()
        return _HttpResponse(
            500,
            protocol.error_response(
                type(exc).__name__, f"internal error: {exc}"
            ),
        )

    def _finish_result(
        self,
        item: _Pending,
        result: Any,
        route: str,
        trace_document: Mapping[str, Any] | None,
    ) -> None:
        """Map a QueryResult to HTTP: flagged timeout → typed 504."""
        body = protocol.query_response(result, route, trace=trace_document)
        self.metrics.observe_query(
            route,
            result.elapsed,
            body["stats"],
            timed_out=result.timed_out,
            cached=bool(getattr(result, "cached", False)),
        )
        if result.timed_out:
            reason = TimeoutExceeded(result.elapsed, len(result.solutions))
            self._resolve(
                item,
                _HttpResponse(
                    504,
                    protocol.error_response(
                        "TimeoutExceeded",
                        str(reason),
                        elapsed=max(0.0, float(result.elapsed)),
                    ),
                ),
            )
            return
        self._resolve(item, _HttpResponse(200, body))

    def _run_batched(self, chunk: list[_Pending]) -> None:
        """Evaluate one micro-batch through the scheduler (dispatch
        thread)."""
        now = time.monotonic()
        live: list[_Pending] = []
        budgets: list[float | None] = []
        for item in chunk:
            if item.deadline_at is not None and item.deadline_at <= now:
                self._resolve(item, self._deadline_response(item, "batched", now))
            else:
                live.append(item)
                budgets.append(
                    None
                    if item.deadline_at is None
                    else max(1e-3, item.deadline_at - now)
                )
        if not live:
            return
        try:
            results = self._scheduler.run_batch(
                [item.query for item in live],
                limit=live[0].request.limit,
                timeouts=budgets,
            )
        except Exception as exc:
            self._recycle_pools()
            for item in live:
                self._resolve(item, self._failure_response(exc))
            return
        for item, result in zip(live, results):
            self._finish_result(item, result, "batched", None)

    def _run_direct(self, item: _Pending) -> None:
        """Evaluate one traced / pinned / debug / explain request
        (dispatch thread)."""
        route = "explain" if item.kind == "explain" else "direct"
        now = time.monotonic()
        if item.deadline_at is not None and item.deadline_at <= now:
            self._resolve(item, self._deadline_response(item, route, now))
            return
        try:
            if item.kind == "explain":
                self._resolve(item, self._run_explain(item, now))
                return
            request = item.request
            if request.debug is not None:
                self._apply_debug(request.debug)
                now = time.monotonic()
                if item.deadline_at is not None and item.deadline_at <= now:
                    self._resolve(
                        item, self._deadline_response(item, route, now)
                    )
                    return
            remaining = (
                None
                if item.deadline_at is None
                else max(1e-3, item.deadline_at - now)
            )
            query_trace = (
                QueryTrace(query=request.query) if request.trace else None
            )
            engine = (
                self._auto
                if request.engine == "auto"
                else self._serial[request.engine]
            )
            result = engine.evaluate(
                item.query,
                timeout=remaining,
                limit=request.limit,
                trace=query_trace,
            )
            trace_document = None
            if query_trace is not None:
                trace_document = query_trace.to_dict()
                validate_trace(trace_document)
                self.metrics.observe_trace_document(trace_document)
            self._finish_result(item, result, route, trace_document)
        except Exception as exc:
            self._recycle_pools()
            self._resolve(item, self._failure_response(exc))

    def _run_explain(self, item: _Pending, now: float) -> _HttpResponse:
        request = item.request
        remaining = (
            None
            if item.deadline_at is None
            else max(1e-3, item.deadline_at - now)
        )
        report = explain_plan(
            self._db,
            item.query,
            engine=request.engine,
            analyze=request.analyze,
            timeout=remaining,
            workers=self.config.workers,
            cache=self.cache,
        )
        trace_document = None
        analysis = report.analysis
        if analysis is not None:
            trace_document = analysis.to_dict()
            validate_trace(trace_document)
            self.metrics.observe_trace_document(trace_document)
        body = protocol.explain_response(
            report.engine, report.format(), trace=trace_document
        )
        return _HttpResponse(200, body)

    def _apply_debug(self, directive: str) -> None:
        """Execute a fault-injection directive (``debug_faults`` only)."""
        if directive == "raise":
            raise RuntimeError("injected inline fault (debug=raise)")
        if directive == "worker-raise":
            if self.config.workers >= 2:
                pool_for(self._db, self.config.workers).run_fault_probe()
                raise AssertionError(  # pragma: no cover - probe raises
                    "fault probe returned without raising"
                )
            raise RuntimeError(
                "injected worker fault (serial mode, no pool to probe)"
            )
        if directive.startswith("sleep:"):
            try:
                seconds = float(directive.partition(":")[2])
            except ValueError as exc:
                raise ValidationError(
                    f"malformed debug directive {directive!r}"
                ) from exc
            time.sleep(max(0.0, min(seconds, MAX_DEBUG_SLEEP)))
            return
        raise ValidationError(
            f"unknown debug directive {directive!r} "
            "(known: raise, worker-raise, sleep:<seconds>)"
        )

    # ------------------------------------------------------------------
    # endpoints (event loop)
    # ------------------------------------------------------------------
    def _gauges(self) -> dict[str, float]:
        assert self._queue is not None
        gauges = {
            "inflight": float(self.admission.inflight),
            "admission_capacity": float(self.admission.capacity),
            "admitted_total": float(self.admission.admitted_total),
            "shed_total": float(self.admission.shed_total),
            "rejected_draining_total": float(
                self.admission.rejected_draining_total
            ),
            "draining": 1.0 if self.admission.draining else 0.0,
            "queue_depth": float(self._queue.qsize()),
            "pool_workers": float(self.config.workers),
        }
        ewma = self.admission.service_seconds()
        if ewma is not None:
            gauges["service_seconds_ewma"] = float(ewma)
        return gauges

    def _health_doc(self) -> dict[str, Any]:
        backing = self._db.store
        return {
            "status": "draining" if self.admission.draining else "ok",
            "inflight": self.admission.inflight,
            "capacity": self.admission.capacity,
            "workers": self.config.workers,
            "engines": ["auto", *sorted(self._serial)],
            "store": None if backing is None else backing.describe(),
            "cache": self.cache is not None,
        }

    async def _handle_query(self, body: bytes) -> _HttpResponse:
        t0 = time.monotonic()
        try:
            request = protocol.parse_query_request(body)
            if request.debug is not None and not self.config.debug_faults:
                raise ValidationError(
                    "debug directives require --debug-faults"
                )
            query = parse_query(request.query)
        except ReproError as exc:
            return _HttpResponse(
                400, protocol.error_response(type(exc).__name__, str(exc))
            )
        try:
            self.admission.admit()
        except AdmissionRejected as exc:
            self.metrics.observe_shed()
            return _HttpResponse(
                429,
                protocol.error_response(
                    "AdmissionRejected", str(exc), retry_after=exc.retry_after
                ),
                headers={"Retry-After": str(exc.retry_after)},
            )
        except ServerDraining as exc:
            return _HttpResponse(
                503, protocol.error_response("ServerDraining", str(exc))
            )
        budget = (
            request.timeout
            if request.timeout is not None
            else self.config.default_timeout
        )
        if budget is not None:
            budget = min(float(budget), self.config.max_timeout)
        assert self._loop is not None and self._queue is not None
        item = _Pending(
            kind="query",
            request=request,
            query=query,
            admitted_at=t0,
            deadline_at=None if budget is None else t0 + budget,
            future=self._loop.create_future(),
        )
        try:
            await self._queue.put(item)
            return await item.future
        finally:
            self.admission.release(time.monotonic() - t0)

    async def _handle_explain(self, body: bytes) -> _HttpResponse:
        t0 = time.monotonic()
        try:
            request = protocol.parse_explain_request(body)
            query = parse_query(request.query)
        except ReproError as exc:
            return _HttpResponse(
                400, protocol.error_response(type(exc).__name__, str(exc))
            )
        try:
            self.admission.admit()
        except AdmissionRejected as exc:
            self.metrics.observe_shed()
            return _HttpResponse(
                429,
                protocol.error_response(
                    "AdmissionRejected", str(exc), retry_after=exc.retry_after
                ),
                headers={"Retry-After": str(exc.retry_after)},
            )
        except ServerDraining as exc:
            return _HttpResponse(
                503, protocol.error_response("ServerDraining", str(exc))
            )
        budget = (
            request.timeout
            if request.timeout is not None
            else self.config.default_timeout
        )
        if budget is not None:
            budget = min(float(budget), self.config.max_timeout)
        assert self._loop is not None and self._queue is not None
        item = _Pending(
            kind="explain",
            request=request,
            query=query,
            admitted_at=t0,
            deadline_at=None if budget is None else t0 + budget,
            future=self._loop.create_future(),
        )
        try:
            await self._queue.put(item)
            return await item.future
        finally:
            self.admission.release(time.monotonic() - t0)

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> _HttpResponse:
        path, _, query_string = target.partition("?")
        if path == "/query":
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._handle_query(body)
        if path == "/explain":
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._handle_explain(body)
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return _HttpResponse(200, self._health_doc())
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            gauges = self._gauges()
            cache_stats = None if self.cache is None else self.cache.stats()
            if "format=json" in query_string:
                return _HttpResponse(
                    200, self.metrics.as_dict(gauges, cache=cache_stats)
                )
            return _HttpResponse(
                200,
                self.metrics.render_text(gauges, cache=cache_stats),
                content_type="text/plain; version=0.0.4",
            )
        return _HttpResponse(
            404,
            protocol.error_response(
                "NotFound",
                f"no endpoint {path!r} "
                "(have: /query, /explain, /metrics, /healthz)",
            ),
        )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader, self.config.max_body)
                except ValidationError as exc:
                    await _write_response(
                        writer,
                        _HttpResponse(
                            400,
                            protocol.error_response(
                                "ValidationError", str(exc)
                            ),
                        ),
                        close=True,
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    ValueError,
                ):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                response = await self._route(method, target, body)
                self.metrics.observe_request(target.partition("?")[0],
                                             response.code)
                close = (
                    headers.get("connection", "").lower() == "close"
                    or self.admission.draining
                )
                try:
                    await _write_response(writer, response, close=close)
                except ConnectionError:
                    break
                if close:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


def _method_not_allowed(allowed: str) -> _HttpResponse:
    return _HttpResponse(
        405,
        protocol.error_response(
            "MethodNotAllowed", f"method not allowed (use {allowed})"
        ),
        headers={"Allow": allowed},
    )


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; None at clean EOF.

    Raises :class:`ValidationError` on malformed framing (mapped to a
    400 and connection close by the caller).
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValidationError(f"malformed request line {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ValidationError(f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise ValidationError("malformed Content-Length") from exc
    if length < 0 or length > max_body:
        raise ValidationError(
            f"request body of {length} bytes exceeds the {max_body} limit"
        )
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _write_response(
    writer: asyncio.StreamWriter, response: _HttpResponse, close: bool
) -> None:
    if isinstance(response.body, str):
        payload = response.body.encode("utf-8")
    else:
        payload = (
            json.dumps(response.body, sort_keys=True) + "\n"
        ).encode("utf-8")
    reason = _REASONS.get(response.code, "Unknown")
    head = [
        f"HTTP/1.1 {response.code} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_server(
    db: GraphDatabase,
    config: ServeConfig,
    announce: Callable[[str], None] | None = None,
) -> int:
    """Blocking entry point of ``repro serve``.

    Installs SIGTERM/SIGINT handlers (main thread only) that trigger a
    graceful drain, prints the bound address (``serving on http://...``,
    which scripts parse to learn an ephemeral port), and returns 0 once
    the drain completes.
    """

    def _announce(message: str) -> None:
        if announce is not None:
            announce(message)
        else:
            print(message, flush=True)

    async def _amain() -> None:
        server = ReproServer(db, config)
        await server.start()
        loop = asyncio.get_running_loop()
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        signum, server.request_shutdown
                    )
                except (NotImplementedError, RuntimeError):
                    break  # pragma: no cover - non-unix event loop
        _announce(
            f"serving on http://{server.host}:{server.port} "
            f"(workers={config.workers}, capacity={config.capacity}, "
            f"pid={os.getpid()})"
        )
        await server.wait_closed()
        _announce("drained, exiting")

    asyncio.run(_amain())
    return 0


class ServerThread:
    """A :class:`ReproServer` on a background thread (tests, embedding).

    ``start()`` blocks until the socket is bound (and the pool warm) and
    returns ``self``; ``shutdown()`` runs the same graceful drain the
    SIGTERM path uses and joins the thread.
    """

    def __init__(self, db: GraphDatabase, config: ServeConfig) -> None:
        self._db = db
        self._config = config
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self.server: ReproServer | None = None
        self.host = config.host
        self.port: int | None = None

    def start(self, timeout: float = 180.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not become ready in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        try:
            server = ReproServer(self._db, self._config)
            await server.start()
        except BaseException as exc:  # startup failed: surface in start()
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        await server.wait_closed()

    def shutdown(self, timeout: float = 120.0) -> None:
        server = self.server
        if server is not None:
            server.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - wedged drain
            raise RuntimeError("server thread did not drain in time")
