"""The benchmark-regression harness behind ``repro bench``.

A bench run produces one JSON document (``BENCH_<date>.json``) with
three measurement groups:

* **figure2** — per ``(family, engine)`` wall-clock times over the
  Figure-2 workload (an untraced, timed pass);
* **opcounts** — per ``(family, engine)`` operation counts from a
  second, traced pass: engine stats (leap calls, attempts, bindings,
  solutions) and the per-structure wavelet-tree op counters of
  :mod:`repro.obs`. These are deterministic — same code, same seeds,
  same counts on any machine — so the diff compares them *exactly*;
* **micro** — fixed-iteration loops over the succinct primitives
  (bitvector rank/select, wavelet-tree rank/select/``range_next_value``
  /``distinct_values``), the operations every query bottoms out in;
* **parallel** — the Figure-2 workload served as a batch through
  :class:`repro.parallel.scheduler.QueryScheduler` at each pool size
  in ``BenchConfig.parallel_workers``, over the warm shared-memory
  worker pool. Pool warm-up (fork + flatten the indexes into shm) is
  reported separately from the steady-state batch time — a server pays
  it once per database — and speedups compare steady state against the
  serial ``auto`` loop. Diffs against documents that predate the group
  simply skip it (wall diffs walk shared keys only), and its solution
  counts are cross-checked against the serial pass at record time;
* **cache** — the cross-query result cache (:mod:`repro.cache`):
  three serial ``auto`` passes over the same workload — **cold** (no
  cache), **fill** (first contact with a fresh cache: evaluation plus
  admission), **warm** (the repeat-traffic pass a server pays once the
  cache is populated). Warm solutions are asserted byte-identical to
  cold at record time; the warm entry records the hit rate and the
  headline ``speedup_vs_cold``;
* **store** — the persistent-index cold-start comparison
  (:mod:`repro.store`): serializing the built indexes to disk,
  **build-to-first-query** (index the raw tables, then answer one
  query) versus **load-to-first-query** (mmap the index file, then
  answer the same query), and a steady-state parity check that runs the
  whole workload over both the built and the mapped database — the
  mmap views must neither change solutions (asserted at record time)
  nor meaningfully change throughput.

Wall-clock numbers are environment-sensitive, so every run also records
a **calibration** time (a fixed pure-Python loop). When diffing two
documents from different machines, wall times are normalized by the
calibration ratio before the tolerance test; op counts need no such
treatment.

``diff_bench`` is the regression gate: op-count or solution-count
mismatches always fail; a wall-time entry fails when the (normalized)
``after`` time exceeds ``before * (1 + tolerance)``. Timed-out figure2
entries are handled specially — their timed-pass solution counts are
never compared (the cap truncates work at a wall-clock-dependent point;
the untimed ``opcounts`` pass still guards those queries' correctness),
and entries saturated at the cap on *both* sides are dropped from the
wall comparison. The ``figure2-completed-in-both:TOTAL`` line is the
headline speedup over identical work.

The traced pass runs without a timeout so its op counts stay
deterministic (a timeout truncates work at a wall-clock-dependent
point); the timed pass honours ``BenchConfig.timeout``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.datasets.wikimedia import WikimediaConfig, generate_benchmark
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.engines.baseline import BaselineEngine
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.obs import QueryTrace
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree
from repro.utils.errors import ValidationError

BENCH_VERSION = 1

_ENGINES = {
    "baseline": BaselineEngine,
    "ring-knn": RingKnnEngine,
    "ring-knn-s": RingKnnSEngine,
}

_STAT_KEYS = ("solutions", "bindings", "attempts", "leap_calls")


@dataclass(frozen=True)
class BenchConfig:
    """Scale and scope of one bench run (defaults match the benchmark
    suite's laptop-scale Figure-2 setup, see ``benchmarks/conftest.py``)."""

    entities: int = 600
    images: int = 250
    misc_triples: int = 4000
    big_k: int = 16
    seed: int = 7
    k: int = 10
    queries: int = 4
    workload_seed: int = 2
    timeout: float | None = 60.0
    engines: tuple[str, ...] = ("baseline", "ring-knn", "ring-knn-s")
    micro: bool = True
    parallel_workers: tuple[int, ...] = (1, 2, 4)
    """Pool sizes of the parallel scaling curve (empty tuple disables)."""

    store: bool = True
    """Run the persistent-index build-vs-load cold-start section."""

    cache: bool = True
    """Run the cross-query cache cold/fill/warm section."""

    label: str = ""

    def __post_init__(self) -> None:
        unknown = [e for e in self.engines if e not in _ENGINES]
        if unknown:
            raise ValidationError(
                f"unknown bench engines {unknown}; choose from "
                f"{sorted(_ENGINES)}"
            )


def default_filename(date: str) -> str:
    return f"BENCH_{date}.json"


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def calibrate(rounds: int = 3) -> float:
    """Fixed pure-Python work unit; returns its best-of-``rounds`` time.

    Diffs use the ratio of two calibration times to normalize wall-clock
    measurements taken on different machines (or differently loaded
    ones). The loop exercises interpreter dispatch and integer
    arithmetic — the same substrate the succinct kernel runs on — and is
    untouched by kernel optimizations.
    """
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        acc = 0
        for i in range(150_000):
            acc += (i * 2654435761) & 0xFFFFFFFF
            acc ^= acc >> 7
        best = min(best, time.perf_counter() - started)
    return best


def _best_of(fn, rounds: int = 2) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_micro() -> dict[str, dict[str, float | int]]:
    """Fixed-seed, fixed-iteration timings of the succinct primitives."""
    rng = np.random.default_rng(42)
    bv = BitVector(rng.integers(0, 2, 200_000))
    wt = WaveletTree(rng.integers(0, 5_000, 100_000), 5_000)

    rank_pos = [int(p) for p in np.linspace(0, len(bv), 5_000, dtype=np.int64)]
    sel1 = [int(j) for j in np.linspace(1, bv.n_ones, 5_000, dtype=np.int64)]
    sel0 = [int(j) for j in np.linspace(1, bv.n_zeros, 5_000, dtype=np.int64)]
    wt_pairs = [
        (int(c), int(i))
        for c, i in zip(
            rng.integers(0, 5_000, 2_000), rng.integers(0, 100_001, 2_000)
        )
    ]
    wt_sel = [(int(c), 1) for c in rng.integers(0, 5_000, 1_000)]
    ranges = [
        (lo, lo + 40_000) for lo in [int(x) for x in rng.integers(0, 60_000, 50)]
    ]

    def bv_rank1() -> None:
        r = bv.rank1
        for _ in range(4):
            for p in rank_pos:
                r(p)

    def bv_select1() -> None:
        s = bv.select1
        for _ in range(4):
            for j in sel1:
                s(j)

    def bv_select0() -> None:
        s = bv.select0
        for _ in range(4):
            for j in sel0:
                s(j)

    def wt_rank() -> None:
        r = wt.rank
        for c, i in wt_pairs:
            r(c, i)

    def wt_select() -> None:
        s = wt.select
        t = wt.total_count
        for c, _j in wt_sel:
            if t(c):
                s(c, 1)

    def wt_range_next() -> None:
        f = wt.range_next_value
        for c, _i in wt_pairs:
            f(10_000, 60_000, c)

    def wt_distinct() -> None:
        for lo, hi in ranges:
            it = wt.distinct_values(lo, hi)
            for _ in range(64):
                if next(it, None) is None:
                    break

    cases = {
        "bv_rank1": (len(rank_pos) * 4, bv_rank1),
        "bv_select1": (len(sel1) * 4, bv_select1),
        "bv_select0": (len(sel0) * 4, bv_select0),
        "wt_rank": (len(wt_pairs), wt_rank),
        "wt_select": (len(wt_sel), wt_select),
        "wt_range_next_value": (len(wt_pairs), wt_range_next),
        "wt_distinct_values": (len(ranges) * 64, wt_distinct),
    }
    out: dict[str, dict[str, float | int]] = {}
    for name, (ops, fn) in cases.items():
        seconds = _best_of(fn)
        out[name] = {
            "ops": ops,
            "total_s": seconds,
            "ops_per_s": (ops / seconds) if seconds > 0 else 0.0,
        }
    return out


def _build_full(config: BenchConfig):
    """Generate the benchmark, index it, and derive the workload.

    Returns ``(bench, db, workload)`` — the raw benchmark is kept so the
    store pass can re-index it when timing build-to-first-query.
    """
    bench = generate_benchmark(
        WikimediaConfig(
            n_entities=config.entities,
            n_images=config.images,
            n_misc_triples=config.misc_triples,
            K=config.big_k,
            seed=config.seed,
        )
    )
    db = GraphDatabase(bench.graph, bench.knn_graph)
    workload = generate_workload(
        bench,
        WorkloadConfig(
            k=config.k,
            n_q1=config.queries,
            n_q2=max(1, config.queries // 2),
            n_q3=config.queries,
            n_q4=max(1, config.queries // 2),
            n_q5=config.queries,
            seed=config.workload_seed,
        ),
    )
    return bench, db, workload


def _build(config: BenchConfig):
    _bench, db, workload = _build_full(config)
    return db, workload


def _timed_pass(db, workload, config: BenchConfig) -> dict[str, dict]:
    """Untraced wall-clock measurement, one entry per family/engine."""
    out: dict[str, dict] = {}
    for family, queries in sorted(workload.items()):
        for name in config.engines:
            engine = _ENGINES[name](db)
            times: list[float] = []
            solutions = 0
            timeouts = 0
            for query in queries:
                started = time.perf_counter()
                result = engine.evaluate(query, timeout=config.timeout)
                times.append(time.perf_counter() - started)
                solutions += len(result.solutions)
                timeouts += int(result.timed_out)
            out[f"{family}/{name}"] = {
                "queries": len(times),
                "total_s": float(sum(times)),
                "mean_s": float(sum(times) / len(times)) if times else 0.0,
                "max_s": float(max(times)) if times else 0.0,
                "solutions": solutions,
                "timeouts": timeouts,
            }
    return out


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware).

    Recorded next to every parallel measurement: wall-clock speedup is
    bounded by the core count, so a scaling curve is only interpretable
    against the hardware that produced it (workers time-slicing one
    core can at best break even).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _parallel_pass(db, workload, config: BenchConfig) -> dict[str, dict]:
    """Batch-serving scaling curve over the warm shared-memory pool.

    The serial reference serves the workload one query at a time with
    the serial ``auto`` loop (a pool of size 1). Each multi-worker
    entry separates **pool warm-up** — forking the workers and
    flattening the database into shared-memory segments, paid once per
    database — from the **steady-state** time a warm server pays per
    ``run_batch`` call; ``speedup_vs_serial`` compares steady state
    only. Solution totals are asserted identical to serial at every
    pool size (the shm transport must never change results), and each
    entry records :func:`usable_cores` — the ceiling on any honest
    wall-clock speedup.
    """
    from repro.parallel.scheduler import QueryScheduler

    queries = [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]

    def serve(workers: int) -> dict:
        scheduler = QueryScheduler(db, workers=workers)
        try:
            started = time.perf_counter()
            scheduler.warmup()
            warmup_s = time.perf_counter() - started
            started = time.perf_counter()
            results = scheduler.run_batch(queries, timeout=config.timeout)
            steady_s = time.perf_counter() - started
        finally:
            scheduler.close()
        return {
            "queries": len(queries),
            "cpu_cores": usable_cores(),
            "warmup_s": warmup_s,
            "total_s": steady_s,
            "solutions": sum(len(r.solutions) for r in results),
            "timeouts": sum(int(r.timed_out) for r in results),
        }

    serial = serve(1)
    out: dict[str, dict] = {"serial": serial}
    for workers in config.parallel_workers:
        entry = serve(workers)
        if entry["solutions"] != serial["solutions"] and not (
            entry["timeouts"] or serial["timeouts"]
        ):
            raise ValidationError(
                f"batch serving (workers={workers}) found "
                f"{entry['solutions']} solutions, serial found "
                f"{serial['solutions']}"
            )
        entry["speedup_vs_serial"] = (
            serial["total_s"] / entry["total_s"]
            if entry["total_s"] > 0
            else 0.0
        )
        out[f"workers={workers}"] = entry
    return out


def _cache_pass(db, workload, config: BenchConfig) -> dict[str, dict]:
    """Cross-query cache cold/fill/warm comparison over the workload.

    Three serial ``auto`` passes over the flattened Figure-2 workload:
    **cold** runs without a cache (the reference), **fill** runs the
    same batch against a fresh :class:`repro.cache.QueryCache` (every
    admissible query pays its evaluation plus the admission copy), and
    **warm** repeats the batch against the now-populated cache — the
    pass a server's repeat traffic pays. Warm solutions must be
    byte-identical to the cold pass (asserted at record time, skipping
    only queries that timed out on either side); the warm entry
    records the observed hit rate and ``speedup_vs_cold``, the
    headline warm-hit payoff the cache benchmark gates.
    """
    from repro.cache import QueryCache
    from repro.engines.auto import AutoEngine

    queries = [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]

    def sweep(engine) -> tuple[dict, list]:
        started = time.perf_counter()
        results = [
            engine.evaluate(query, timeout=config.timeout)
            for query in queries
        ]
        total_s = time.perf_counter() - started
        return {
            "queries": len(queries),
            "total_s": total_s,
            "solutions": sum(len(r.solutions) for r in results),
            "timeouts": sum(int(r.timed_out) for r in results),
        }, results

    cold_entry, cold_results = sweep(AutoEngine(db))
    cache = QueryCache()
    cached_engine = AutoEngine(db, cache=cache)
    fill_entry, _fill_results = sweep(cached_engine)
    warm_entry, warm_results = sweep(cached_engine)

    for query, cold, warm in zip(queries, cold_results, warm_results):
        if cold.timed_out or warm.timed_out:
            continue
        if warm.solutions != cold.solutions:
            raise ValidationError(
                f"cached evaluation changed the solutions of {query}"
            )

    stats = cache.stats()
    probes = stats["hits"] + stats["misses"]
    warm_entry["hits"] = sum(int(r.cached) for r in warm_results)
    warm_entry["hit_rate"] = (
        stats["hits"] / probes if probes else 0.0
    )
    warm_entry["speedup_vs_cold"] = (
        cold_entry["total_s"] / warm_entry["total_s"]
        if warm_entry["total_s"] > 0
        else 0.0
    )
    return {
        "cold": cold_entry,
        "fill": fill_entry,
        "warm": warm_entry,
        "stats": {key: int(stats[key]) for key in sorted(stats)},
    }


def _store_pass(bench, db, workload, config: BenchConfig) -> dict[str, dict]:
    """Persistent-index cold start versus the bundle-parse-and-build path.

    The two cold-start paths answer the same minimal single-triple
    probe (``limit=1`` — time to first solution): **build_first_query**
    is exactly what ``repro query --data`` pays (parse the ``.npz``
    bundle, build the indexes, answer the probe) while
    **load_first_query** is what ``--from-index`` pays (mmap the file
    written by ``save``, verify the payload checksum, answer the same
    probe). Both are millisecond-scale, so each is best-of-3 like the
    micro loops. The steady-state pair runs the full workload over the
    built and the mapped database with the same engine; their solutions
    are asserted identical at record time — the mmap views must be
    invisible to query results — and the wall-time ratio lands in
    ``mapped_steady["parity_vs_built"]``.
    """
    import tempfile

    from repro.graph.io import load_bundle, save_bundle
    from repro.query.parser import parse_query
    from repro.store import load, save

    queries = [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]
    probe = parse_query("(?x, 0, ?y)")

    def steady(database) -> tuple[float, int, int]:
        engine = RingKnnEngine(database)
        started = time.perf_counter()
        solutions = 0
        timeouts = 0
        for query in queries:
            result = engine.evaluate(query, timeout=config.timeout)
            solutions += len(result.solutions)
            timeouts += int(result.timed_out)
        return time.perf_counter() - started, solutions, timeouts

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmpdir:
        bundle_path = os.path.join(tmpdir, "bench.npz")
        save_bundle(bundle_path, bench.graph, bench.knn_graph, bench.points)
        path = os.path.join(tmpdir, "bench.idx")
        started = time.perf_counter()
        nbytes = save(db, path)
        save_s = time.perf_counter() - started

        def build_first() -> None:
            graph, knn_graph, _points = load_bundle(bundle_path)
            fresh = GraphDatabase(graph, knn_graph)
            RingKnnEngine(fresh).evaluate(probe, timeout=None, limit=1)

        def load_first() -> None:
            mapped = load(path)
            RingKnnEngine(mapped.database).evaluate(
                probe, timeout=None, limit=1
            )
            mapped.close()

        build_first_s = _best_of(build_first, rounds=3)
        load_first_s = _best_of(load_first, rounds=3)

        store = load(path)
        built_s, built_solutions, built_timeouts = steady(db)
        mapped_s, mapped_solutions, mapped_timeouts = steady(store.database)
        store.close()

    if mapped_solutions != built_solutions and not (
        built_timeouts or mapped_timeouts
    ):
        raise ValidationError(
            f"mmap-loaded index found {mapped_solutions} solutions, "
            f"in-memory build found {built_solutions}"
        )
    return {
        "save": {"total_s": save_s, "bytes": nbytes},
        "build_first_query": {"total_s": build_first_s},
        "load_first_query": {
            "total_s": load_first_s,
            "speedup_vs_build": (
                build_first_s / load_first_s if load_first_s > 0 else 0.0
            ),
        },
        "built_steady": {
            "total_s": built_s,
            "solutions": built_solutions,
            "timeouts": built_timeouts,
        },
        "mapped_steady": {
            "total_s": mapped_s,
            "solutions": mapped_solutions,
            "timeouts": mapped_timeouts,
            "parity_vs_built": (mapped_s / built_s) if built_s > 0 else 0.0,
        },
    }


def collect_opcounts(
    db, workload, engines: tuple[str, ...]
) -> dict[str, dict]:
    """Deterministic op-count measurement (no timeout, traced).

    One entry per ``family/engine``: summed engine stats plus the
    per-structure wavelet op counters. Also used by the golden
    regression tests (``tests/test_golden_opcounts.py``) — the counts
    depend only on code and seeds, never on the machine.
    """
    out: dict[str, dict] = {}
    for family, queries in sorted(workload.items()):
        for name in engines:
            engine = _ENGINES[name](db)
            stats = {key: 0 for key in _STAT_KEYS}
            wavelets: dict[str, dict[str, int]] = {}
            for query in queries:
                trace = QueryTrace(query=repr(query), engine=name)
                engine.evaluate(query, timeout=None, trace=trace)
                for key in _STAT_KEYS:
                    stats[key] += int(trace.stats.get(key, 0))
                for label, ops in trace.wavelets.items():
                    bucket = wavelets.setdefault(label, {})
                    for op, count in ops.as_dict().items():
                        bucket[op] = bucket.get(op, 0) + int(count)
            out[f"{family}/{name}"] = {
                "stats": stats,
                "wavelets": {k: wavelets[k] for k in sorted(wavelets)},
            }
    return out


def run_bench(config: BenchConfig, date: str | None = None) -> dict:
    """Run the full harness, returning the ``BENCH`` document."""
    if date is None:
        date = time.strftime("%Y-%m-%d")
    calibration = calibrate()
    bench, db, workload = _build_full(config)
    figure2 = _timed_pass(db, workload, config)
    opcounts = collect_opcounts(db, workload, config.engines)
    micro = run_micro() if config.micro else {}
    parallel = (
        _parallel_pass(db, workload, config)
        if config.parallel_workers
        else {}
    )
    store = _store_pass(bench, db, workload, config) if config.store else {}
    cache = _cache_pass(db, workload, config) if config.cache else {}
    doc = {
        "version": BENCH_VERSION,
        "date": date,
        "label": config.label,
        "config": asdict(config),
        "calibration_s": calibration,
        "figure2": figure2,
        "opcounts": opcounts,
        "micro": micro,
        "parallel": parallel,
        "store": store,
        "cache": cache,
        "totals": {
            "figure2_wall_s": float(
                sum(entry["total_s"] for entry in figure2.values())
            ),
            "micro_wall_s": float(
                sum(entry["total_s"] for entry in micro.values())
            ),
            "wavelet_ops": int(
                sum(
                    bucket.get("total", 0)
                    for entry in opcounts.values()
                    for bucket in entry["wavelets"].values()
                )
            ),
        },
    }
    return doc


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def write_bench(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("version") != BENCH_VERSION:
        raise ValidationError(
            f"{path}: bench document version {doc.get('version')!r} "
            f"!= {BENCH_VERSION}"
        )
    return doc


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
@dataclass
class BenchDiff:
    """Outcome of comparing two bench documents."""

    regressions: list[str] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)
    scale: float = 1.0

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.mismatches


def _timeouts(doc: dict, key: str) -> int:
    return int(doc.get("figure2", {}).get(key, {}).get("timeouts", 0))


def _walk_wall(doc: dict, saturated: set[str]) -> dict[str, float]:
    """Flatten every wall-clock entry of a document to ``key -> seconds``.

    ``saturated`` names the figure2 entries that hit the timeout in
    *both* documents being diffed: their recorded time is the cap, not a
    measurement, so they are excluded (an entry that times out on only
    one side stays in — that asymmetry is a real signal).
    """
    out: dict[str, float] = {}
    for group in ("figure2", "micro", "store", "cache"):
        for key, entry in doc.get(group, {}).items():
            if group == "figure2" and key in saturated:
                continue
            if "total_s" not in entry:  # e.g. the cache stats snapshot
                continue
            out[f"{group}:{key}"] = float(entry["total_s"])
    for key, value in doc.get("totals", {}).items():
        if key.endswith("_s"):
            out[f"totals:{key}"] = float(value)
    return out


def _walk_counts(doc: dict, incomparable: set[str]) -> dict[str, int]:
    """Flatten every deterministic counter to ``key -> count``.

    The ``opcounts`` section comes from the untimed traced pass and is
    always comparable. Timed-pass solution counts are only deterministic
    for queries that ran to completion, so figure2 entries named in
    ``incomparable`` (a timeout on either side of the diff) are skipped —
    their op-count counterparts still guard correctness.
    """
    out: dict[str, int] = {}
    for key, entry in doc.get("opcounts", {}).items():
        for stat, value in entry.get("stats", {}).items():
            out[f"opcounts:{key}:stats:{stat}"] = int(value)
        for label, bucket in entry.get("wavelets", {}).items():
            for op, value in bucket.items():
                out[f"opcounts:{key}:wavelets:{label}:{op}"] = int(value)
    for key, entry in doc.get("figure2", {}).items():
        if key in incomparable:
            continue
        out[f"figure2:{key}:solutions"] = int(entry.get("solutions", 0))
    return out


def diff_bench(
    before: dict,
    after: dict,
    tolerance: float = 0.2,
    use_calibration: bool = True,
    min_seconds: float = 0.05,
) -> BenchDiff:
    """Compare two bench documents.

    Deterministic counters (op counts, solution counts) must match
    exactly; wall times — normalized by the calibration ratio when
    ``use_calibration`` — fail on a relative regression beyond
    ``tolerance`` *and* an absolute excess beyond ``min_seconds``
    (millisecond-scale entries jitter by far more than any tolerance;
    the floor keeps them informational without letting a genuinely slow
    entry — which blows past the floor — escape).
    """
    diff = BenchDiff()
    if use_calibration:
        b_cal = float(before.get("calibration_s") or 0.0)
        a_cal = float(after.get("calibration_s") or 0.0)
        if b_cal > 0 and a_cal > 0:
            diff.scale = a_cal / b_cal
    diff.lines.append(
        f"calibration scale (after/before machine): {diff.scale:.3f}"
    )

    shared_fig2 = set(before.get("figure2", {})) & set(after.get("figure2", {}))
    # Timed out on either side: the solution count (and, if both sides
    # saturated, the wall time) reflects the cap, not the query.
    timed_out = {
        key
        for key in shared_fig2
        if _timeouts(before, key) > 0 or _timeouts(after, key) > 0
    }
    saturated = {
        key
        for key in shared_fig2
        if _timeouts(before, key) > 0 and _timeouts(after, key) > 0
    }
    if timed_out:
        diff.lines.append(
            "timed-out figure2 entries (solutions not compared): "
            + ", ".join(sorted(timed_out))
        )

    b_counts = _walk_counts(before, timed_out)
    a_counts = _walk_counts(after, timed_out)
    for key in sorted(set(b_counts) | set(a_counts)):
        b = b_counts.get(key)
        a = a_counts.get(key)
        if b != a:
            diff.mismatches.append(f"{key}: {b} -> {a}")
    diff.lines.append(
        f"deterministic counters: {len(b_counts)} compared, "
        f"{len(diff.mismatches)} mismatched"
    )

    b_wall = _walk_wall(before, saturated)
    a_wall = _walk_wall(after, saturated)
    # Headline aggregate over queries that completed in BOTH runs: the
    # only figure2 sum where the two sides measure identical work.
    completed = sorted(shared_fig2 - timed_out)
    if completed:
        b_wall["figure2-completed-in-both:TOTAL"] = sum(
            float(before["figure2"][k]["total_s"]) for k in completed
        )
        a_wall["figure2-completed-in-both:TOTAL"] = sum(
            float(after["figure2"][k]["total_s"]) for k in completed
        )
    for key in sorted(set(b_wall) & set(a_wall)):
        b = b_wall[key] * diff.scale
        a = a_wall[key]
        speedup = (b / a) if a > 0 else float("inf")
        status = "ok"
        if a > b * (1.0 + tolerance) and a - b > min_seconds:
            status = "REGRESSION"
            diff.regressions.append(
                f"{key}: {b_wall[key]:.4f}s -> {a_wall[key]:.4f}s "
                f"({1 / speedup:.2f}x slower, normalized)"
            )
        diff.lines.append(
            f"{key}: {b_wall[key]:.4f}s -> {a_wall[key]:.4f}s "
            f"(speedup {speedup:.2f}x, {status})"
        )
    return diff


def format_diff(diff: BenchDiff, tolerance: float) -> str:
    parts = [f"bench diff (wall-time tolerance {tolerance:.0%})"]
    parts.extend("  " + line for line in diff.lines)
    if diff.mismatches:
        parts.append("COUNTER MISMATCHES (deterministic — must be equal):")
        parts.extend("  " + line for line in diff.mismatches)
    if diff.regressions:
        parts.append("WALL-TIME REGRESSIONS:")
        parts.extend("  " + line for line in diff.regressions)
    parts.append("PASS" if diff.ok else "FAIL")
    return "\n".join(parts)
