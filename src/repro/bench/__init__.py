"""Benchmark-regression harness (the backend of ``repro bench``)."""

from repro.bench.harness import (
    BENCH_VERSION,
    BenchConfig,
    default_filename,
    diff_bench,
    format_diff,
    load_bench,
    run_bench,
    write_bench,
)

__all__ = [
    "BENCH_VERSION",
    "BenchConfig",
    "default_filename",
    "diff_bench",
    "format_diff",
    "load_bench",
    "run_bench",
    "write_bench",
]
