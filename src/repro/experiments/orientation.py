"""Experiment E11 (Sec. 7 discussion): direction-free similarity.

The paper's closing proposal: let the system pick the direction of
similarity clauses so the constraint graph becomes acyclic, trading a
slightly different (approximate) answer set for wco evaluation. This
harness quantifies that trade on symmetric (Q1b-style) queries:

* speed: evaluation time of the symmetric query vs its directed rewrite;
* fidelity: precision (all rewritten answers that satisfy the symmetric
  semantics) and recall (always 1.0 — the rewrite only drops
  conditions, so exact answers survive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.ring_knn import RingKnnEngine
from repro.engines.database import GraphDatabase
from repro.query.model import ExtendedBGP
from repro.query.rewrite import symmetric_to_directed


@dataclass
class OrientationReport:
    """Aggregates of the symmetric-vs-directed comparison.

    The directed rewrite returns a *superset* of the symmetric answers
    (one of the two k-NN conditions is dropped), so raw times are not
    comparable — the meaningful efficiency metric is seconds per
    delivered tuple, where the acyclic plans should not be worse.
    """

    queries: int
    symmetric_seconds: list[float]
    directed_seconds: list[float]
    symmetric_solutions: list[int]
    directed_solutions: list[int]
    precisions: list[float]
    """|exact ∩ approx| / |approx| per query (1.0 when approx empty)."""

    @property
    def mean_symmetric(self) -> float:
        return float(np.mean(self.symmetric_seconds))

    @property
    def mean_directed(self) -> float:
        return float(np.mean(self.directed_seconds))

    @property
    def symmetric_ms_per_tuple(self) -> float:
        total = sum(self.symmetric_solutions)
        return 1000.0 * sum(self.symmetric_seconds) / max(total, 1)

    @property
    def directed_ms_per_tuple(self) -> float:
        total = sum(self.directed_solutions)
        return 1000.0 * sum(self.directed_seconds) / max(total, 1)

    @property
    def per_tuple_speedup(self) -> float:
        if self.directed_ms_per_tuple == 0:
            return float("inf")
        return self.symmetric_ms_per_tuple / self.directed_ms_per_tuple

    @property
    def mean_precision(self) -> float:
        return float(np.mean(self.precisions)) if self.precisions else 1.0

    def rows(self) -> list[list[object]]:
        return [
            ["symmetric: seconds (total)", round(sum(self.symmetric_seconds), 3)],
            ["symmetric: solutions", sum(self.symmetric_solutions)],
            ["symmetric: ms/tuple", round(self.symmetric_ms_per_tuple, 3)],
            ["directed: seconds (total)", round(sum(self.directed_seconds), 3)],
            ["directed: solutions", sum(self.directed_solutions)],
            ["directed: ms/tuple", round(self.directed_ms_per_tuple, 3)],
            ["per-tuple speedup of rewrite", round(self.per_tuple_speedup, 2)],
            ["answer precision of rewrite", round(self.mean_precision, 3)],
        ]


ORIENTATION_HEADERS = ["variant", "value"]


def run_orientation_comparison(
    db: GraphDatabase,
    queries: list[ExtendedBGP],
    timeout: float | None = 30.0,
) -> OrientationReport:
    """Compare symmetric queries against their directed rewrites."""
    engine = RingKnnEngine(db)
    sym_times: list[float] = []
    dir_times: list[float] = []
    sym_counts: list[int] = []
    dir_counts: list[int] = []
    precisions: list[float] = []
    for query in queries:
        exact_result = engine.evaluate(query, timeout=timeout)
        rewritten = symmetric_to_directed(query)
        approx_result = engine.evaluate(rewritten, timeout=timeout)
        sym_times.append(exact_result.elapsed)
        dir_times.append(approx_result.elapsed)
        sym_counts.append(len(exact_result.solutions))
        dir_counts.append(len(approx_result.solutions))
        exact = set(exact_result.sorted_solutions())
        approx = set(approx_result.sorted_solutions())
        if approx:
            precisions.append(len(exact & approx) / len(approx))
        else:
            precisions.append(1.0)
    return OrientationReport(
        queries=len(queries),
        symmetric_seconds=sym_times,
        directed_seconds=dir_times,
        symmetric_solutions=sym_counts,
        directed_solutions=dir_counts,
        precisions=precisions,
    )
