"""Experiment E13: cost per delivered tuple, asymmetric vs symmetric.

Sec. 7 of the paper reports: "the cost per delivered tuple is 2-5 times
higher with the symmetric operator with all Ring strategies". This
harness measures milliseconds per delivered solution on the Q1 family
(one ``x <|_k y`` clause) against Q1b (the symmetric ``x ~_k y``), for
both Ring engines, and reports the symmetric/asymmetric ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.database import GraphDatabase
from repro.query.model import ExtendedBGP


@dataclass
class TupleCostRow:
    """Per-engine per-family tuple-cost measurement."""

    engine: str
    family: str
    total_seconds: float
    solutions: int

    @property
    def ms_per_tuple(self) -> float:
        return 1000.0 * self.total_seconds / max(self.solutions, 1)


@dataclass
class TupleCostReport:
    rows: list[TupleCostRow]

    def ratio(self, engine: str) -> float:
        """Symmetric / asymmetric ms-per-tuple for one engine."""
        by_family = {
            row.family: row for row in self.rows if row.engine == engine
        }
        asym = by_family["Q1"].ms_per_tuple
        sym = by_family["Q1b"].ms_per_tuple
        return sym / asym if asym else float("inf")

    def table_rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for row in self.rows:
            out.append(
                [
                    row.engine,
                    row.family,
                    round(row.total_seconds, 3),
                    row.solutions,
                    round(row.ms_per_tuple, 4),
                ]
            )
        engines = sorted({row.engine for row in self.rows})
        for engine in engines:
            out.append(
                [engine, "sym/asym ratio", "", "", round(self.ratio(engine), 2)]
            )
        return out


TUPLE_COST_HEADERS = ["engine", "family", "seconds", "solutions", "ms/tuple"]


def run_tuple_cost(
    db: GraphDatabase,
    q1: list[ExtendedBGP],
    q1b: list[ExtendedBGP],
    engines: list[object],
    timeout: float | None = 30.0,
) -> TupleCostReport:
    """Measure per-tuple cost of the two Q1 flavors per engine."""
    del db
    rows: list[TupleCostRow] = []
    for engine in engines:
        for family, queries in (("Q1", q1), ("Q1b", q1b)):
            total = 0.0
            solutions = 0
            for query in queries:
                result = engine.evaluate(query, timeout=timeout)
                total += result.elapsed
                solutions += len(result.solutions)
            rows.append(TupleCostRow(engine.name, family, total, solutions))
    return TupleCostReport(rows)
