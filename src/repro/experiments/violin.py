"""Textual distribution sketches — the ASCII stand-in for Figure 2's
violin plots.

The paper presents per-family query-time distributions as violin plots
with mean and median markers. Without a plotting stack, we render each
engine's distribution as a log-scaled density bar built from deciles,
with ``o`` marking the median and ``x`` the mean — enough to read the
same comparisons (stability, tail behavior) off a terminal.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.figure2 import FamilyResult

_DENSITY_GLYPHS = " .:-=+*#%@"


def _log_positions(values: np.ndarray, lo: float, hi: float, width: int):
    """Map values into [0, width) on a log scale."""
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    span = log_hi - log_lo or 1.0
    pos = (np.log10(values) - log_lo) / span * (width - 1)
    return np.clip(pos.astype(int), 0, width - 1)


def render_violin(
    values: list[float], lo: float, hi: float, width: int = 50
) -> str:
    """One engine's time distribution as a density bar.

    ``o`` marks the median, ``x`` the mean (as in the paper's violins,
    which carry both segments).
    """
    if not values:
        return " " * width
    arr = np.maximum(np.asarray(values, dtype=np.float64), 1e-6)
    positions = _log_positions(arr, lo, hi, width)
    counts = np.bincount(positions, minlength=width)
    peak = counts.max() or 1
    bar = [
        _DENSITY_GLYPHS[
            min(int(c / peak * (len(_DENSITY_GLYPHS) - 1)), len(_DENSITY_GLYPHS) - 1)
        ]
        for c in counts
    ]
    median_pos = int(
        _log_positions(np.array([max(float(np.median(arr)), 1e-6)]), lo, hi, width)[0]
    )
    mean_pos = int(
        _log_positions(np.array([max(float(np.mean(arr)), 1e-6)]), lo, hi, width)[0]
    )
    bar[median_pos] = "o"
    bar[mean_pos] = "x" if mean_pos != median_pos else "8"
    return "".join(bar)


def render_family_violins(
    results: dict[str, FamilyResult], width: int = 50
) -> str:
    """Render every (family, engine) distribution on a shared log axis.

    Returns a text block comparable to Figure 2: one row per engine per
    family, axis bounds printed in the header.
    """
    all_times = [
        t
        for fr in results.values()
        for s in fr.series.values()
        for t in s.times
    ]
    if not all_times:
        return "(no measurements)"
    lo = max(min(all_times), 1e-6)
    hi = max(max(all_times), lo * 10)
    header = (
        f"time axis (log scale): {lo:.4g}s {'-' * (width - 20)} {hi:.4g}s\n"
        "o = median, x = mean\n"
    )
    lines = [header]
    for family, fr in results.items():
        for engine, series in fr.series.items():
            bar = render_violin(series.times, lo, hi, width)
            lines.append(f"{family:>4} {engine:<11} |{bar}|")
        lines.append("")
    return "\n".join(lines)
