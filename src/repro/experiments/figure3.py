"""Experiment E8: the Precision@k curves of Figure 3 (Sec. 6.3).

Build the K-NN graph (paper: K = 100) of a labeled vector dataset, then
for each query object ``x`` and each ``k`` evaluate four retrieval
strategies:

* ``kNN``          — the first ``k`` neighbors of ``x`` (``x <|_k y``);
* ``reverse``      — all ``y`` listing ``x`` among their first ``k``
  (``y <|_k x``);
* ``intersection`` — both directions (``x ~_k y``);
* ``union``        — either direction (the symmetric alternative the
  paper disregards).

Precision is the fraction of returned objects sharing the query's class,
averaged over all query objects. The paper also replots the two
symmetric strategies against their *average result size* instead of
``k`` (since the intersection returns at most ``k`` and the union at
least ``k``); :func:`run_figure3` reports the average result size per
strategy so that comparison can be read off the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knn.builders import build_knn_graph
from repro.knn.graph import KnnGraph
from repro.utils.errors import ValidationError


@dataclass
class PrecisionPoint:
    """One (strategy, k) measurement."""

    strategy: str
    k: int
    precision: float
    avg_result_size: float


def _precision_for(
    neighbor_table: np.ndarray,
    reverse_sets: list[set[int]],
    labels: np.ndarray,
    k: int,
    strategy: str,
) -> tuple[float, float]:
    """Average precision and result size of one strategy at one ``k``."""
    n = neighbor_table.shape[0]
    precisions = []
    sizes = []
    for i in range(n):
        forward = neighbor_table[i, :k]
        if strategy == "knn":
            returned = forward
        else:
            reverse = np.fromiter(reverse_sets[i], dtype=np.int64) if reverse_sets[i] else np.empty(0, dtype=np.int64)
            if strategy == "reverse":
                returned = reverse
            elif strategy == "intersection":
                returned = np.intersect1d(forward, reverse)
            elif strategy == "union":
                returned = np.union1d(forward, reverse)
            else:
                raise ValidationError(f"unknown strategy {strategy!r}")
        sizes.append(returned.size)
        if returned.size:
            precisions.append(
                float(np.mean(labels[returned] == labels[i]))
            )
    precision = float(np.mean(precisions)) if precisions else 0.0
    return precision, float(np.mean(sizes))


def run_figure3(
    points: np.ndarray,
    labels: np.ndarray,
    K: int = 100,
    ks: list[int] | None = None,
    knn_graph: KnnGraph | None = None,
) -> list[PrecisionPoint]:
    """Compute Precision@k for the four strategies over one dataset.

    Args:
        points: ``(n, dim)`` vectors.
        labels: class label per vector (the ground truth).
        K: construction-time K of the K-NN graph (paper: 100).
        ks: the query ``k`` values (paper: 5, 10, ..., 100).
        knn_graph: optionally a prebuilt graph (must have ``K`` >= max k).

    Returns:
        One :class:`PrecisionPoint` per (strategy, k).
    """
    if ks is None:
        ks = list(range(5, K + 1, 5))
    if max(ks) > K:
        raise ValidationError(f"ks go up to {max(ks)} > K={K}")
    if knn_graph is None:
        knn_graph = build_knn_graph(points, K)
    if not np.array_equal(
        knn_graph.members, np.arange(knn_graph.num_members)
    ):
        raise ValidationError(
            "figure-3 harness requires member ids 0..n-1 (labels are "
            "indexed by member id)"
        )
    table = knn_graph.neighbor_table
    labels = np.asarray(labels)

    results: list[PrecisionPoint] = []
    for k in ks:
        # Reverse k-NN sets: who lists i within their first k.
        n = table.shape[0]
        reverse_sets: list[set[int]] = [set() for _ in range(n)]
        prefix = table[:, :k]
        for src in range(n):
            for dst in prefix[src]:
                reverse_sets[int(dst)].add(src)
        for strategy in ("knn", "reverse", "intersection", "union"):
            precision, avg_size = _precision_for(
                table, reverse_sets, labels, k, strategy
            )
            results.append(PrecisionPoint(strategy, k, precision, avg_size))
    return results


def figure3_rows(points: list[PrecisionPoint]) -> list[list[object]]:
    return [
        [p.k, p.strategy, round(p.precision, 4), round(p.avg_result_size, 2)]
        for p in points
    ]


FIGURE3_HEADERS = ["k", "strategy", "precision", "avg_result_size"]
