"""Experiment E7: the materialization-cost comparison of Sec. 3.2.

The paper's motivating numbers: materializing + sorting the kNN
relation (k = 50) takes 260 s *before query processing even starts*,
while the integrated index answers whole queries in 1.3-103 s. The shape
to reproduce: the :class:`MaterializeEngine`'s setup phase alone
dominates — and typically exceeds — the *total* time of the integrated
Ring-KNN engine on the same queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.database import GraphDatabase
from repro.engines.materialize import MaterializeEngine
from repro.engines.ring_knn import RingKnnEngine
from repro.query.model import ExtendedBGP


@dataclass
class MaterializationReport:
    """Aggregated phase timings across the measured queries."""

    queries: int
    materialize_seconds: list[float]
    materialize_query_seconds: list[float]
    integrated_seconds: list[float]

    @property
    def mean_materialize(self) -> float:
        return float(np.mean(self.materialize_seconds))

    @property
    def mean_materialize_total(self) -> float:
        return float(
            np.mean(
                np.array(self.materialize_seconds)
                + np.array(self.materialize_query_seconds)
            )
        )

    @property
    def mean_integrated(self) -> float:
        return float(np.mean(self.integrated_seconds))

    @property
    def setup_vs_integrated(self) -> float:
        """How many integrated *full queries* one materialization costs."""
        if self.mean_integrated == 0:
            return float("inf")
        return self.mean_materialize / self.mean_integrated

    def rows(self) -> list[list[object]]:
        return [
            ["materialize: setup (extract+sort+index)", self.mean_materialize],
            ["materialize: total (setup + LTJ)", self.mean_materialize_total],
            ["integrated Ring-KNN: total", self.mean_integrated],
            ["setup cost / integrated total", round(self.setup_vs_integrated, 2)],
        ]


MATERIALIZATION_HEADERS = ["phase", "mean_seconds"]


def run_materialization_comparison(
    db: GraphDatabase,
    queries: list[ExtendedBGP],
    timeout: float | None = 60.0,
) -> MaterializationReport:
    """Time the strawman's phases against the integrated engine."""
    strawman = MaterializeEngine(db)
    integrated = RingKnnEngine(db)
    mat_setup: list[float] = []
    mat_query: list[float] = []
    integrated_total: list[float] = []
    for query in queries:
        outcome = strawman.evaluate(query, timeout=timeout)
        mat_setup.append(outcome.phase_seconds["materialize"])
        mat_query.append(outcome.phase_seconds["query"])
        reference = integrated.evaluate(query, timeout=timeout)
        integrated_total.append(reference.elapsed)
        assert reference.sorted_solutions() == outcome.sorted_solutions() or (
            outcome.timed_out or reference.timed_out
        ), "engines disagree outside of timeouts"
    return MaterializationReport(
        queries=len(queries),
        materialize_seconds=mat_setup,
        materialize_query_seconds=mat_query,
        integrated_seconds=integrated_total,
    )
