"""Plain-text table formatting for the benchmark harnesses."""

from __future__ import annotations

from collections.abc import Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 100000:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (floats get compact formatting)."""
    rendered = [[_render_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
