"""Experiment harnesses regenerating every figure and measurement of
Sec. 6 (and the Sec. 3.2 motivation numbers). See DESIGN.md's
per-experiment index (E1-E10) for the mapping to paper artifacts.

Each harness is a plain function returning structured rows; the
``benchmarks/`` suite calls them and prints paper-style tables, so the
same code path serves tests (small scale) and benchmark runs.
"""

from repro.experiments.bounds_ablation import run_bounds_ablation
from repro.experiments.figure2 import FamilyResult, run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.materialization import run_materialization_comparison
from repro.experiments.orientation import run_orientation_comparison
from repro.experiments.report import format_table
from repro.experiments.space import run_space_comparison
from repro.experiments.tuple_cost import run_tuple_cost
from repro.experiments.violin import render_family_violins

__all__ = [
    "run_figure2",
    "FamilyResult",
    "run_figure3",
    "run_space_comparison",
    "run_materialization_comparison",
    "run_orientation_comparison",
    "run_bounds_ablation",
    "format_table",
    "run_tuple_cost",
    "render_family_violins",
]
