"""Experiment E1-E5 + E9: the query-time distributions of Figure 2.

Runs every query of every family on the three engines (Baseline,
Ring-KNN, Ring-KNN-S), recording per-query wall-clock times, timeout
flags, result counts, and — for the Q1b discussion's statistic — the
position in the elimination order at which the first similarity-involved
variable is bound. The paper reports these as violin plots with mean and
median markers; we report the same distributions numerically
(mean / median / percentiles), which carries the comparisons the paper
draws from the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.database import GraphDatabase
from repro.query.model import ExtendedBGP


@dataclass
class EngineSeries:
    """Per-engine measurement series for one family."""

    times: list[float] = field(default_factory=list)
    solutions: list[int] = field(default_factory=list)
    timeouts: int = 0
    sim_bind_fractions: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.times)) if self.times else 0.0

    @property
    def median(self) -> float:
        return float(np.median(self.times)) if self.times else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.times, q)) if self.times else 0.0

    @property
    def mean_sim_bind_fraction(self) -> float | None:
        if not self.sim_bind_fractions:
            return None
        return float(np.mean(self.sim_bind_fractions))


@dataclass
class FamilyResult:
    """All engine series for one query family (one violin-plot panel)."""

    family: str
    series: dict[str, EngineSeries]

    def speedup(self, engine: str, over: str = "baseline") -> float:
        """Mean-time ratio ``over / engine`` (>1 means ``engine`` wins)."""
        denom = self.series[engine].mean
        if denom == 0:
            return float("inf")
        return self.series[over].mean / denom


def run_figure2(
    db: GraphDatabase,
    workload: dict[str, list[ExtendedBGP]],
    engines: list[object],
    timeout: float | None = 30.0,
) -> dict[str, FamilyResult]:
    """Run the Figure-2 measurement.

    Args:
        db: the indexed database (unused directly; engines carry it, but
            kept for signature clarity in harness code).
        workload: family name -> list of queries (from
            :func:`repro.datasets.workload.generate_workload`).
        engines: engine instances exposing ``name`` and
            ``evaluate(query, timeout=...)``.
        timeout: per-query budget in seconds (the paper uses 600 s).

    Returns:
        Family name -> :class:`FamilyResult`.
    """
    del db
    results: dict[str, FamilyResult] = {}
    for family, queries in workload.items():
        series = {engine.name: EngineSeries() for engine in engines}
        for query in queries:
            for engine in engines:
                outcome = engine.evaluate(query, timeout=timeout)
                s = series[engine.name]
                s.times.append(outcome.elapsed)
                s.solutions.append(len(outcome.solutions))
                if outcome.timed_out:
                    s.timeouts += 1
                fraction = outcome.stats.first_sim_bind_fraction
                if fraction is not None:
                    s.sim_bind_fractions.append(fraction)
        results[family] = FamilyResult(family, series)
    return results


def figure2_rows(results: dict[str, FamilyResult]) -> list[list[object]]:
    """Flatten to printable rows: one per (family, engine)."""
    rows: list[list[object]] = []
    for family, family_result in results.items():
        for engine_name, s in family_result.series.items():
            rows.append(
                [
                    family,
                    engine_name,
                    len(s.times),
                    s.mean,
                    s.median,
                    s.percentile(90),
                    s.timeouts,
                    int(np.sum(s.solutions)),
                    (
                        round(s.mean_sim_bind_fraction, 3)
                        if s.mean_sim_bind_fraction is not None
                        else "-"
                    ),
                ]
            )
    return rows


FIGURE2_HEADERS = [
    "family",
    "engine",
    "queries",
    "mean_s",
    "median_s",
    "p90_s",
    "timeouts",
    "solutions",
    "sim_bind_pos",
]
