"""Experiment E10 (ablation): variable orderings vs the LP bound.

Sec. 4.2 opens with the motivating observation that on the query of
Example 4, the order ``y, z, x`` can cost up to ``N^{3/2}`` variable
eliminations while ``y, x, z`` costs only ``kN``. This harness measures,
for a set of queries:

* the LP bound ``Q*`` of program (2);
* the classic AGM bound with the clause treated as an opaque relation;
* the *measured* number of elimination attempts under each ordering
  strategy (Ring-KNN, Ring-KNN-S, topological when acyclic).

The wco shape to verify: measured work of the constraint-aware order
stays within a (polylog) factor of ``Q*``, while unrestricted orders can
exceed it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.agm import agm_bound
from repro.bounds.constraint_graph import ConstraintGraph
from repro.bounds.linear_program import solve_size_bound
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.query.model import ExtendedBGP


@dataclass
class BoundsRow:
    """One query's bounds and measured work."""

    query: str
    q_star: float
    agm: float
    acyclic: bool
    single_2_cyclic: bool
    attempts: dict[str, int]
    solutions: int


def run_bounds_ablation(
    db: GraphDatabase,
    queries: list[ExtendedBGP],
    timeout: float | None = 60.0,
) -> list[BoundsRow]:
    """Compute bounds and measured attempts for each query."""
    engines = [RingKnnEngine(db), RingKnnSEngine(db)]
    rows: list[BoundsRow] = []
    for query in queries:
        graph = ConstraintGraph(query)
        bound = solve_size_bound(
            query, db.graph.num_edges, domain_size=max(db.graph.domain_size, 2)
        )
        agm = agm_bound(query, db.graph.num_edges)
        attempts: dict[str, int] = {}
        solutions = 0
        for engine in engines:
            outcome = engine.evaluate(query, timeout=timeout)
            attempts[engine.name] = outcome.stats.attempts
            solutions = len(outcome.solutions)
        rows.append(
            BoundsRow(
                query=repr(query),
                q_star=bound.q_star,
                agm=agm,
                acyclic=graph.is_acyclic(),
                single_2_cyclic=graph.is_single_2_cyclic(),
                attempts=attempts,
                solutions=solutions,
            )
        )
    return rows


def bounds_rows(rows: list[BoundsRow]) -> list[list[object]]:
    out: list[list[object]] = []
    for row in rows:
        out.append(
            [
                row.query[:60],
                round(row.q_star, 1),
                round(row.agm, 1),
                row.acyclic,
                row.single_2_cyclic,
                row.attempts.get("ring-knn", 0),
                row.attempts.get("ring-knn-s", 0),
                row.solutions,
            ]
        )
    return out


BOUNDS_HEADERS = [
    "query",
    "Q*_LP",
    "AGM",
    "acyclic",
    "single2cyc",
    "attempts_knn",
    "attempts_knn_s",
    "solutions",
]
