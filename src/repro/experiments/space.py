"""Experiment E6: the space accounting of Sec. 6.2.

The paper reports: "both Ring variants need 12.15 GB to store the Ring
and the K-NN graph. This is almost the same space [as] the raw data
(which our index replaces) ... The baseline uses more space, 17.99 GB,
as it stores the K-NN graph in plain form." The shape to reproduce:

* ``ring_total / raw_total`` close to 1 (same order), and
* ``baseline_total > ring_total``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.database import GraphDatabase


@dataclass
class SpaceReport:
    """Byte counts of the competing representations."""

    ring_bytes: int
    """Ring + succinct K-NN structure (Ring-KNN / Ring-KNN-S)."""

    baseline_bytes: int
    """Ring + plain-form direct and reverse K-NN adjacency."""

    raw_bytes: int
    """Plain edge table + plain K-NN table (the data itself)."""

    @property
    def ring_vs_raw(self) -> float:
        return self.ring_bytes / self.raw_bytes if self.raw_bytes else 0.0

    @property
    def baseline_vs_ring(self) -> float:
        return self.baseline_bytes / self.ring_bytes if self.ring_bytes else 0.0

    def rows(self) -> list[list[object]]:
        return [
            ["ring (Ring + succinct K-NN)", self.ring_bytes, self.ring_bytes / 2**20],
            ["baseline (Ring + plain K-NN)", self.baseline_bytes, self.baseline_bytes / 2**20],
            ["raw data (edge + K-NN tables)", self.raw_bytes, self.raw_bytes / 2**20],
            ["ratio ring/raw", round(self.ring_vs_raw, 3), ""],
            ["ratio baseline/ring", round(self.baseline_vs_ring, 3), ""],
        ]


SPACE_HEADERS = ["representation", "bytes", "MiB"]


def run_space_comparison(db: GraphDatabase) -> SpaceReport:
    """Measure the three representations over one database."""
    return SpaceReport(
        ring_bytes=db.ring_size_in_bytes(),
        baseline_bytes=db.baseline_size_in_bytes(),
        raw_bytes=db.raw_size_in_bytes(),
    )
