"""Worst-case-optimal similarity joins on graph databases.

A from-scratch Python reproduction of Arroyuelo, Bustos, Gómez-Brandón,
Hogan, Navarro & Reutter, *Worst-Case-Optimal Similarity Joins on Graph
Databases* (SIGMOD 2024): the Ring index, the succinct K-NN structure
(S, S', B), Leapfrog TrieJoin extended with ``x <|_k y`` similarity
clauses, the Ring-KNN / Ring-KNN-S variable orderings, the Sec. 5.3
baseline, the output-size linear programs, and the full experimental
harness (Figures 2-3 plus the space and materialization measurements).

Start with the worked examples rather than inline snippets — they stay
runnable (and seeded, per the RPL004 determinism rule)::

    python examples/quickstart.py        # graph + K-NN + one mixed query
    python examples/query_plans.py       # EXPLAIN / EXPLAIN ANALYZE tour

``examples/`` also covers multimedia search, social recommendation and
geo range joins; the public API surface is re-exported below.
"""

from repro.engines import (
    AutoEngine,
    BaselineEngine,
    ClassicSixPermEngine,
    GraphDatabase,
    KStarResult,
    MaterializeEngine,
    QueryResult,
    RingKnnEngine,
    RingKnnSEngine,
    evaluate_k_star,
)
from repro.explain import PlanReport, explain
from repro.graph import GraphData, TermDictionary
from repro.knn import (
    DistanceRangeIndex,
    KnnGraph,
    KnnRing,
    build_knn_graph,
)
from repro.query import (
    DistClause,
    ExtendedBGP,
    SimClause,
    TriplePattern,
    UndirectedSim,
    Var,
    orient_clauses,
    parse_query,
    sym_clauses,
    symmetric_to_directed,
)

__version__ = "1.0.0"

__all__ = [
    "GraphData",
    "TermDictionary",
    "KnnGraph",
    "KnnRing",
    "DistanceRangeIndex",
    "build_knn_graph",
    "Var",
    "TriplePattern",
    "SimClause",
    "DistClause",
    "sym_clauses",
    "ExtendedBGP",
    "parse_query",
    "UndirectedSim",
    "orient_clauses",
    "symmetric_to_directed",
    "GraphDatabase",
    "QueryResult",
    "RingKnnEngine",
    "RingKnnSEngine",
    "BaselineEngine",
    "MaterializeEngine",
    "ClassicSixPermEngine",
    "AutoEngine",
    "evaluate_k_star",
    "KStarResult",
    "explain",
    "PlanReport",
    "__version__",
]
