"""Worst-case-optimal similarity joins on graph databases.

A from-scratch Python reproduction of Arroyuelo, Bustos, Gómez-Brandón,
Hogan, Navarro & Reutter, *Worst-Case-Optimal Similarity Joins on Graph
Databases* (SIGMOD 2024): the Ring index, the succinct K-NN structure
(S, S', B), Leapfrog TrieJoin extended with ``x <|_k y`` similarity
clauses, the Ring-KNN / Ring-KNN-S variable orderings, the Sec. 5.3
baseline, the output-size linear programs, and the full experimental
harness (Figures 2-3 plus the space and materialization measurements).

Quickstart::

    import numpy as np
    from repro import (
        GraphData, GraphDatabase, RingKnnEngine, build_knn_graph, parse_query,
    )

    graph = GraphData([(0, 9, 1), (1, 9, 2), (2, 9, 3)])
    points = np.random.default_rng(0).normal(size=(4, 2))
    knn = build_knn_graph(points, K=2)
    db = GraphDatabase(graph, knn)
    result = RingKnnEngine(db).evaluate(
        parse_query("(?x, 9, ?y) . knn(?x, ?y, 2)")
    )
    print(result.solutions)
"""

from repro.engines import (
    AutoEngine,
    BaselineEngine,
    ClassicSixPermEngine,
    GraphDatabase,
    KStarResult,
    MaterializeEngine,
    QueryResult,
    RingKnnEngine,
    RingKnnSEngine,
    evaluate_k_star,
)
from repro.explain import PlanReport, explain
from repro.graph import GraphData, TermDictionary
from repro.knn import (
    DistanceRangeIndex,
    KnnGraph,
    KnnRing,
    build_knn_graph,
)
from repro.query import (
    DistClause,
    ExtendedBGP,
    SimClause,
    TriplePattern,
    UndirectedSim,
    Var,
    orient_clauses,
    parse_query,
    sym_clauses,
    symmetric_to_directed,
)

__version__ = "1.0.0"

__all__ = [
    "GraphData",
    "TermDictionary",
    "KnnGraph",
    "KnnRing",
    "DistanceRangeIndex",
    "build_knn_graph",
    "Var",
    "TriplePattern",
    "SimClause",
    "DistClause",
    "sym_clauses",
    "ExtendedBGP",
    "parse_query",
    "UndirectedSim",
    "orient_clauses",
    "symmetric_to_directed",
    "GraphDatabase",
    "QueryResult",
    "RingKnnEngine",
    "RingKnnSEngine",
    "BaselineEngine",
    "MaterializeEngine",
    "ClassicSixPermEngine",
    "AutoEngine",
    "evaluate_k_star",
    "KStarResult",
    "explain",
    "PlanReport",
    "__version__",
]
