"""Persistent on-disk index store with mmap zero-copy instant load.

The Ring + K-NN structures are build-once artifacts: :func:`save`
writes them to a versioned index file — a fixed header (magic, format
version, endianness flag, checksum, JSON manifest) followed by the
*same* 8-byte-aligned little-endian segment the shared-memory worker
transport produces (:mod:`repro.parallel.shm`) — and :func:`load`
memory-maps that file and rebuilds the structures as read-only numpy
views over it with zero deserialization. Cold start becomes O(page
faults) instead of O(index build), and worker pools attach their spawn
workers directly to the file-backed mapping instead of copying the
database into a fresh shared segment.

See ``docs/persistence.md`` for the format layout, the versioning
policy, and the mmap lifecycle rules.
"""

from repro.store.format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    StoreManifest,
)
from repro.store.io import (
    AttachedStore,
    IndexStore,
    attach_store_manifest,
    load,
    save,
)

__all__ = [
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "MAGIC",
    "StoreManifest",
    "AttachedStore",
    "IndexStore",
    "attach_store_manifest",
    "load",
    "save",
]
