"""On-disk index format: header layout, manifest codec, validation.

An index file is::

    +--------------------------------------------------------------+
    | header (40 bytes, little-endian struct "<8sIIQQII")          |
    |   magic          8s  b"REPROIDX"                             |
    |   version        u32 FORMAT_VERSION                          |
    |   flags          u32 bit0 = payload is little-endian         |
    |   manifest_len   u64 bytes of manifest JSON                  |
    |   segment_len    u64 bytes of the flattened segment          |
    |   checksum       u32 crc32 over everything after the header  |
    |   reserved       u32 zero                                    |
    +--------------------------------------------------------------+
    | manifest JSON (UTF-8), zero-padded to an 8-byte boundary     |
    +--------------------------------------------------------------+
    | segment: the 8-byte-aligned array pack of                    |
    | repro.parallel.shm (identical bytes to a shared segment)     |
    +--------------------------------------------------------------+

The manifest JSON carries the same information as a
:class:`~repro.parallel.shm.ShmManifest` — the ``(offset, dtype,
shape)`` entry table and the nested structure-tree ``root`` — so
attaching a file is exactly the shm attach path over a different
buffer. The segment start is aligned so every array keeps the 8-byte
alignment the flatten layer guarantees.

Versioning policy: the format is versioned without migration shims. An
index file is a cache of a deterministic build, so a reader that sees
any other version refuses with :class:`StoreVersionError` and the
remedy is ``repro build``, not an in-place upgrade. Anything that
changes the segment layout, the manifest schema, or a flattened
structure's fields must bump :data:`FORMAT_VERSION`.

Every validation failure raises a typed :mod:`repro.utils.errors`
exception (:class:`StoreFormatError`, :class:`StoreVersionError`,
:class:`StoreChecksumError`, :class:`StoreEndiannessError`) — a
corrupt or foreign file is never attached.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.utils.errors import (
    StoreEndiannessError,
    StoreFormatError,
    StoreVersionError,
)

MAGIC = b"REPROIDX"
FORMAT_VERSION = 1

#: Header flag bit: the payload (manifest offsets + segment arrays) is
#: little-endian. Always set by :func:`pack_header`; readers refuse
#: files without it rather than byte-swap on attach.
FLAG_LITTLE_ENDIAN = 0x1

_HEADER = struct.Struct("<8sIIQQII")
HEADER_SIZE = _HEADER.size


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def require_little_endian_host(action: str) -> None:
    """Refuse to read or write index files on a big-endian host.

    The zero-copy contract maps ``<u8``/``<i8``/``<f8`` buffers
    directly into the hot path's plain-int caches; a big-endian host
    would need a byte-swapping copy, which this format deliberately
    does not provide. (``sys.byteorder`` is read at call time so the
    guard is testable.)
    """
    if sys.byteorder != "little":
        raise StoreEndiannessError(
            f"cannot {action} an index file on a big-endian host: the "
            "format is little-endian and attaches buffers zero-copy"
        )


@dataclass(frozen=True)
class StoreManifest:
    """Picklable description of one index file's flattened segment.

    The file-backed twin of :class:`~repro.parallel.shm.ShmManifest`:
    ``entries`` and ``root`` are identical in meaning; ``path`` and
    ``segment_offset`` locate the segment in the file instead of a
    shared-memory name. Workers receive this through the pool
    initializer and attach the file mapping directly — no per-worker
    copy of the index, not even into shared memory.
    """

    path: str
    segment_offset: int
    segment_len: int
    entries: tuple[tuple[int, str, tuple[int, ...]], ...]
    root: dict[str, Any] = field(hash=False)


def encode_manifest(
    entries: tuple[tuple[int, str, tuple[int, ...]], ...],
    root: dict[str, Any],
) -> bytes:
    """Serialize the entry table + structure tree to manifest JSON."""
    doc = {
        "entries": [
            [offset, dtype, list(shape)] for offset, dtype, shape in entries
        ],
        "root": root,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode_manifest(
    raw: bytes, path: str
) -> tuple[tuple[tuple[int, str, tuple[int, ...]], ...], dict[str, Any]]:
    """Parse manifest JSON back into ``(entries, root)``."""
    try:
        doc = json.loads(raw.decode("utf-8"))
        entries = tuple(
            (int(offset), str(dtype), tuple(int(d) for d in shape))
            for offset, dtype, shape in doc["entries"]
        )
        root = doc["root"]
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise StoreFormatError(
            f"{path}: malformed index manifest ({exc})"
        ) from exc
    if not isinstance(root, dict) or "kind" not in root:
        raise StoreFormatError(
            f"{path}: index manifest root carries no structure kind"
        )
    return entries, root


def pack_header(
    manifest_len: int, segment_len: int, checksum: int
) -> bytes:
    return _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        FLAG_LITTLE_ENDIAN,
        manifest_len,
        segment_len,
        checksum & 0xFFFFFFFF,
        0,
    )


@dataclass(frozen=True)
class Header:
    """Decoded and validated index-file header."""

    manifest_len: int
    segment_len: int
    checksum: int

    @property
    def manifest_offset(self) -> int:
        return HEADER_SIZE

    @property
    def segment_offset(self) -> int:
        return _align8(HEADER_SIZE + self.manifest_len)

    @property
    def total_size(self) -> int:
        return self.segment_offset + self.segment_len


def unpack_header(raw: bytes, path: str) -> Header:
    """Decode + validate a header; raises typed store errors."""
    if len(raw) < HEADER_SIZE:
        raise StoreFormatError(
            f"{path}: truncated index file ({len(raw)} bytes, header "
            f"needs {HEADER_SIZE})"
        )
    magic, version, flags, manifest_len, segment_len, checksum, _reserved = (
        _HEADER.unpack_from(raw)
    )
    if magic != MAGIC:
        raise StoreFormatError(
            f"{path}: not a repro index file (magic {magic!r})"
        )
    if version != FORMAT_VERSION:
        raise StoreVersionError(
            f"{path}: index format version {version} != {FORMAT_VERSION}; "
            "rebuild the index with 'repro build'"
        )
    if not flags & FLAG_LITTLE_ENDIAN:
        raise StoreEndiannessError(
            f"{path}: index file is not marked little-endian; this "
            "format attaches buffers zero-copy and performs no byte swap"
        )
    return Header(
        manifest_len=int(manifest_len),
        segment_len=int(segment_len),
        checksum=int(checksum),
    )


def payload_checksum(buf: Any, start: int, end: int) -> int:
    """crc32 over ``buf[start:end]`` without copying the range."""
    return zlib.crc32(memoryview(buf)[start:end]) & 0xFFFFFFFF


def checksum_parts(*parts: Any) -> int:
    """crc32 chained over several buffers (the save-side counterpart)."""
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    return crc & 0xFFFFFFFF
