"""Save/load of persistent index files and their mmap attachments.

:func:`save` flattens a structure tree through the shared-memory
transport's flatten layer (:func:`repro.parallel.shm.flatten_segment`)
and writes header + manifest + segment atomically (temp file +
``os.replace``), so a crashed build never leaves a half-written index
at the target path.

:func:`load` validates the header, memory-maps the whole file
read-only, optionally verifies the payload checksum, and rebuilds the
structures as zero-copy numpy views over the mapping
(:func:`repro.parallel.shm.attach_buffer`). Nothing is deserialized:
until a page is touched, it is not even read.

mmap lifecycle: the returned :class:`IndexStore` owns the mapping. The
attached structures hold numpy views *into* it, so the mapping must
outlive every structure reference; :meth:`IndexStore.close` drops the
store's own structure reference first and tolerates a caller who kept
views alive (the OS unmaps at process exit regardless — the same
contract as :class:`repro.parallel.shm.AttachedShm`). Worker processes
attach the same file through :func:`attach_store_manifest`; an
already-attached mapping survives even deletion of the file, so a
parent may rebuild an index while a warm pool is still serving the old
one.
"""

from __future__ import annotations

import mmap
import os
from typing import Any

from repro.parallel.shm import attach_buffer, flatten_segment, prime_hot_caches
from repro.store.format import (
    HEADER_SIZE,
    Header,
    StoreManifest,
    checksum_parts,
    decode_manifest,
    encode_manifest,
    pack_header,
    payload_checksum,
    require_little_endian_host,
    unpack_header,
)
from repro.utils.errors import StoreChecksumError, StoreFormatError


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def save(structure: object, path: str) -> int:
    """Write ``structure`` as a versioned index file; returns its size.

    Any structure the shm transport can flatten is accepted — the whole
    :class:`~repro.engines.database.GraphDatabase` for ``repro build``,
    or a single succinct structure in tests. Only the succinct
    structures travel: for a database, the raw graph and K-NN tables
    are not part of the artifact (exactly as with worker attachment).
    """
    require_little_endian_host("write")
    root, entries, segment = flatten_segment(structure)
    manifest = encode_manifest(entries, root)
    pad_len = _align8(HEADER_SIZE + len(manifest)) - HEADER_SIZE - len(manifest)
    pad = b"\0" * pad_len
    checksum = checksum_parts(manifest, pad, segment)
    header = pack_header(len(manifest), len(segment), checksum)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(manifest)
            handle.write(pad)
            handle.write(segment)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error path only
            os.unlink(tmp)
    return HEADER_SIZE + len(manifest) + len(pad) + len(segment)


def _map_file(path: str) -> tuple[mmap.mmap, int]:
    """Memory-map ``path`` read-only; returns ``(mapping, file size)``."""
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        raise StoreFormatError(f"{path}: cannot read index file ({exc})") from exc
    if size < HEADER_SIZE:
        raise StoreFormatError(
            f"{path}: truncated index file ({size} bytes, header needs "
            f"{HEADER_SIZE})"
        )
    with open(path, "rb") as handle:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return mapping, size


def _validated_header(
    path: str, mapping: mmap.mmap, size: int, verify: bool
) -> Header:
    header = unpack_header(mapping[:HEADER_SIZE], path)
    if size < header.total_size:
        raise StoreFormatError(
            f"{path}: truncated index file ({size} bytes, manifest + "
            f"segment need {header.total_size})"
        )
    if verify:
        got = payload_checksum(mapping, HEADER_SIZE, header.total_size)
        if got != header.checksum:
            raise StoreChecksumError(
                f"{path}: index payload checksum {got:#010x} != recorded "
                f"{header.checksum:#010x}; the file is corrupt — rebuild "
                "it with 'repro build'"
            )
    return header


class IndexStore:
    """Owner of one loaded index file: the mapping plus the attachment."""

    def __init__(
        self,
        path: str,
        header: Header,
        mapping: mmap.mmap,
        manifest: StoreManifest,
    ) -> None:
        self.path = path
        self.header = header
        self.manifest = manifest
        self._mmap: mmap.mmap | None = mapping
        self.structure: Any = attach_buffer(
            manifest.root, manifest.entries, mapping, base=header.segment_offset
        )
        if manifest.root.get("kind") == "database":
            # Back-reference so worker pools can detect a store-backed
            # database and attach workers to the file mapping directly.
            self.structure._store = self

    @property
    def database(self) -> Any:
        """The attached :class:`GraphDatabase` (the common case)."""
        if self.manifest.root.get("kind") != "database":
            raise StoreFormatError(
                f"{self.path}: index holds a "
                f"'{self.manifest.root.get('kind')}', not a database"
            )
        return self.structure

    @property
    def nbytes(self) -> int:
        """Total file size in bytes (header + manifest + segment)."""
        return self.header.total_size

    def worker_manifest(self) -> StoreManifest:
        """The picklable manifest pool workers attach from."""
        return self.manifest

    def describe(self) -> dict:
        """JSON-friendly summary of the mapped file (``/healthz``, CLI).

        Structural facts only — nothing here touches the segment, so
        describing a store never faults pages in.
        """
        return {
            "path": self.path,
            "kind": self.manifest.root.get("kind"),
            "nbytes": self.nbytes,
            "segment_bytes": self.header.segment_len,
            "checksum": f"{self.header.checksum:#010x}",
            "entries": len(self.manifest.entries),
            "mapped": self._mmap is not None,
        }

    def close(self) -> None:
        """Drop the attachment and the mapping.

        Mirrors ``AttachedShm.close``: the structure reference is
        dropped so refcounting frees the views; a caller who kept a
        view alive only defers the unmap to process exit.
        """
        self.structure = None
        mapping = self._mmap
        self._mmap = None
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:  # pragma: no cover - caller kept views
                pass


def load(path: str, verify: bool = True, prime: bool = False) -> IndexStore:
    """Memory-map an index file and attach its structures zero-copy.

    With ``verify`` (the default) the payload checksum is confirmed
    before anything is attached — one streaming read of the file, still
    orders of magnitude cheaper than an index build. ``verify=False``
    skips it for the pure O(page faults) cold start. ``prime``
    eagerly materializes the plain-int hot-path caches
    (:func:`repro.parallel.shm.prime_hot_caches`), trading load time
    for first-query latency.
    """
    require_little_endian_host("read")
    mapping, size = _map_file(path)
    try:
        header = _validated_header(path, mapping, size, verify)
        entries, root = decode_manifest(
            mapping[HEADER_SIZE : HEADER_SIZE + header.manifest_len], path
        )
        manifest = StoreManifest(
            path=os.path.abspath(path),
            segment_offset=header.segment_offset,
            segment_len=header.segment_len,
            entries=entries,
            root=root,
        )
        store = IndexStore(path, header, mapping, manifest)
    except Exception:
        mapping.close()
        raise
    if prime:
        try:
            prime_hot_caches(store.structure)
        except Exception:
            # Priming walks attached views; if the segment data is bad
            # past header validation, the store (and its mapping) must
            # not leak on the way out.
            store.close()
            raise
    return store


class AttachedStore:
    """Worker-side handle over a file-backed mapping.

    The structural twin of :class:`repro.parallel.shm.AttachedShm`
    (``.structure`` + ``.close()``), so the pool initializer treats shm
    and file manifests uniformly. No checksum verification: the parent
    verified the file when it loaded the store, and worker attach must
    stay near-free.
    """

    def __init__(self, manifest: StoreManifest) -> None:
        mapping, size = _map_file(manifest.path)
        try:
            # Cheap structural sanity only (magic/version/length): a
            # worker never attaches a path the parent did not already
            # validate.
            header = _validated_header(
                manifest.path, mapping, size, verify=False
            )
            structure = attach_buffer(
                manifest.root,
                manifest.entries,
                mapping,
                base=header.segment_offset,
            )
        except Exception:
            # No owner exists yet: a failed attach must close the
            # mapping here or it leaks with the discarded instance.
            mapping.close()
            raise
        self._mmap = mapping
        self.structure: Any = structure

    def close(self) -> None:
        self.structure = None
        try:
            self._mmap.close()
        except BufferError:  # pragma: no cover - caller kept views
            pass


def attach_store_manifest(manifest: StoreManifest) -> AttachedStore:
    """Attach a worker to an index file described by ``manifest``."""
    require_little_endian_host("attach")
    return AttachedStore(manifest)
