"""Semantic cross-query caching (ROADMAP item 4).

Canonical BGP signatures (:mod:`repro.cache.canonical`), a cost-aware
epoch-invalidated result/subplan store (:mod:`repro.cache.store`), and
the glue the engines, scheduler and server thread through.
"""

from repro.cache.canonical import (
    CanonicalizationError,
    CanonicalQuery,
    canonicalize,
    first_seen_variables,
    profile_of,
)
from repro.cache.store import (
    CacheConfig,
    DEFAULT_MAX_BYTES,
    FirstLevelHit,
    QueryCache,
    database_epoch,
)

__all__ = [
    "CacheConfig",
    "CanonicalQuery",
    "CanonicalizationError",
    "DEFAULT_MAX_BYTES",
    "FirstLevelHit",
    "QueryCache",
    "canonicalize",
    "database_epoch",
    "first_seen_variables",
    "profile_of",
]
