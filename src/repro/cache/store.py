"""Cost-aware, epoch-invalidated cross-query result cache.

:class:`QueryCache` stores fully-enumerated query results keyed on the
canonical form of :mod:`repro.cache.canonical`:

* **Key** — ``(signature, profile, engine)``. The signature groups
  isomorphic queries; the profile restricts reuse to pure variable
  renamings (the only transformation guaranteed to preserve the
  engines' solution enumeration order, see the canonical module); the
  engine name keeps ``ring-knn`` and ``ring-knn-s`` entries apart
  (they enumerate in different orders).

* **Payload** — solutions packed as one little-endian ``int64``
  matrix (the same representation the shared-memory transport ships
  between processes), one column per variable in first-seen order,
  plus the :class:`~repro.ltj.stats.EvaluationStats` counters with
  variables recorded as first-seen *ranks* so a hit can rebuild
  byte-identical stats under the probing query's own variable names.

* **Admission** — cost-aware: an entry is admitted only when its
  observed cost (EWMA seconds fed back from
  ``QueryScheduler.record_elapsed``, or the measured elapsed time)
  clears ``CacheConfig.min_cost_s``, it did not time out, and it fits
  the byte budget. Timed-out results are never cached (they are
  truncated at a wall-clock-dependent point).

* **Eviction** — cost×recency: when the byte budget overflows, the
  entry with the lowest ``cost / age`` score goes first, so cheap
  stale entries make room before expensive recent ones.

* **Invalidation** — every entry is stamped with the database's
  mutation epoch (:attr:`repro.engines.database.GraphDatabase.epoch`,
  seeded from the persistent store's payload checksum) and checked on
  lookup; a bumped epoch or a hot-swapped index file silently
  invalidates on first probe.

A second, first-level table caches the leading variable and its
candidate list for the domain-sharded parallel executor — the subplan
granularity of Mhedhbi & Salihoglu — together with the leapfrog
counter deltas the computation would have added, so replaying a hit
keeps merged op counts byte-identical to a cold run.

All counters and tables are guarded by one lock: the serve layer
mutates the cache from its dispatch thread while ``/metrics`` scrapes
:meth:`QueryCache.stats` from the asyncio loop thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.cache.canonical import (
    CanonicalizationError,
    canonicalize,
    first_seen_variables,
)
from repro.engines.result import QueryResult
from repro.ltj.stats import EvaluationStats
from repro.query.model import ExtendedBGP, Var

#: Default byte budget for packed solution matrices (32 MiB).
DEFAULT_MAX_BYTES = 32 << 20

#: Fixed per-entry overhead charged against the byte budget (keys,
#: counters, dict slots) on top of the packed matrix itself.
ENTRY_OVERHEAD_BYTES = 512


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and admission policy of one :class:`QueryCache`."""

    max_bytes: int = DEFAULT_MAX_BYTES
    """Byte budget over all packed solution matrices."""

    min_cost_s: float = 0.0
    """Observed-cost admission floor in seconds (0 admits everything
    that completed; a server can raise it to keep only queries worth
    remembering)."""

    max_entry_fraction: float = 0.5
    """A single entry larger than this fraction of ``max_bytes`` is
    inadmissible outright (it would evict half the cache)."""

    first_level_entries: int = 256
    """LRU capacity of the first-level candidate/subplan table."""


@dataclass
class _Entry:
    engine: str
    packed: np.ndarray  # (solutions, variables) little-endian int64
    n_vars: int
    stat_counters: tuple[int, int, int, int]  # solutions/bindings/attempts/leaps
    descent_ranks: tuple[int, ...]
    sim_ranks: tuple[int, ...]
    epoch: int
    cost_s: float
    nbytes: int
    last_used: int = 0
    hits: int = 0


@dataclass
class FirstLevelHit:
    """A cached leading-variable subplan, remapped to the probe query."""

    variable: Var
    candidates: tuple[int, ...]
    attempts: int
    leap_calls: int


@dataclass
class _FirstLevelEntry:
    epoch: int
    variable_rank: int
    candidates: tuple[int, ...]
    attempts: int
    leap_calls: int


def database_epoch(db) -> int:
    """Mutation epoch of ``db`` (0 for objects that predate epochs)."""
    epoch = getattr(db, "epoch", None)
    return int(epoch) if epoch is not None else 0


def _pack(solutions: list[dict[Var, int]], variables: tuple[Var, ...]):
    packed = np.empty((len(solutions), len(variables)), dtype="<i8")
    for row, solution in enumerate(solutions):
        packed[row] = [solution[var] for var in variables]
    return packed


class QueryCache:
    """Size-bounded semantic result cache shared across queries."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._first_level: OrderedDict[tuple, _FirstLevelEntry] = OrderedDict()
        self._bytes = 0
        self._tick = 0
        self._hits = 0
        self._misses = 0
        self._fills = 0
        self._evictions = 0
        self._invalidations = 0
        self._inadmissible = 0
        self._first_level_hits = 0
        self._first_level_misses = 0

    # -- canonical forms -------------------------------------------------
    def _canonical(self, query: ExtendedBGP):
        try:
            return canonicalize(query)
        except CanonicalizationError:
            return None

    # -- result cache -----------------------------------------------------
    def probe(
        self,
        db,
        query: ExtendedBGP,
        *,
        engine: str,
        meta: dict | None = None,
    ) -> QueryResult | None:
        """Look up ``query`` for ``engine``; rebuild the result on a hit.

        The returned :class:`QueryResult` carries ``cached=True``,
        solutions byte-identical to the producing cold run (remapped to
        this query's variable names), the producer's replayed counters,
        and the real retrieval time as ``elapsed``.
        """
        started = perf_counter()
        form = self._canonical(query)
        if form is None:
            if meta is not None:
                meta["outcome"] = "inadmissible"
                meta["reason"] = "uncanonical"
            with self._lock:
                self._inadmissible += 1
            return None
        key = (form.signature, form.profile, engine)
        epoch = database_epoch(db)
        with self._lock:
            self._tick += 1
            entry = self._entries.get(key)
            if entry is not None and entry.epoch != epoch:
                self._drop_locked(key, entry)
                self._invalidations += 1
                entry = None
            if entry is None:
                self._misses += 1
                if meta is not None:
                    meta["outcome"] = "miss"
                    meta["signature"] = form.signature
                return None
            entry.last_used = self._tick
            entry.hits += 1
            self._hits += 1
            rows = entry.packed.tolist()
        variables = form.variables
        solutions = [dict(zip(variables, row)) for row in rows]
        stats = EvaluationStats()
        (
            stats.solutions,
            stats.bindings,
            stats.attempts,
            stats.leap_calls,
        ) = entry.stat_counters
        stats.first_descent_order = [
            variables[rank] for rank in entry.descent_ranks
        ]
        stats.sim_variables = frozenset(
            variables[rank] for rank in entry.sim_ranks
        )
        stats.elapsed = perf_counter() - started
        if meta is not None:
            meta["event"] = "cache_hit"
            meta["outcome"] = "hit"
            meta["signature"] = form.signature
            meta["engine"] = entry.engine
        return QueryResult(
            engine=entry.engine,
            solutions=solutions,
            stats=stats,
            phase_seconds={"cache": stats.elapsed},
            cached=True,
        )

    def fill(
        self,
        db,
        query: ExtendedBGP,
        result: QueryResult,
        *,
        engine: str | None = None,
        cost_s: float | None = None,
        meta: dict | None = None,
    ) -> bool:
        """Admit a cold ``result`` if the policy allows; returns success.

        ``cost_s`` is the observed cost driving admission and eviction —
        pass the scheduler's EWMA estimate when one exists, else the
        measured ``result.elapsed`` is used.
        """
        engine_name = engine if engine is not None else result.engine

        def note(stored: bool, reason: str) -> bool:
            if meta is not None:
                meta["stored"] = stored
                if not stored:
                    meta["store_reason"] = reason
            return stored

        if result.timed_out:
            with self._lock:
                self._inadmissible += 1
            return note(False, "timed out")
        form = self._canonical(query)
        if form is None:
            with self._lock:
                self._inadmissible += 1
            return note(False, "uncanonical")
        if meta is not None:
            meta.setdefault("signature", form.signature)
        cost = float(cost_s) if cost_s is not None else float(result.elapsed)
        if cost < self.config.min_cost_s:
            with self._lock:
                self._inadmissible += 1
            return note(False, "below cost floor")
        variables = form.variables
        try:
            packed = _pack(result.solutions, variables)
        except KeyError:
            # A projected/partial solution set cannot be replayed.
            with self._lock:
                self._inadmissible += 1
            return note(False, "unbound variable")
        nbytes = int(packed.nbytes) + ENTRY_OVERHEAD_BYTES
        if nbytes > self.config.max_bytes * self.config.max_entry_fraction:
            with self._lock:
                self._inadmissible += 1
            return note(False, "over byte budget")

        rank_of = {var: i for i, var in enumerate(variables)}
        stats = result.stats
        entry = _Entry(
            engine=engine_name,
            packed=packed,
            n_vars=len(variables),
            stat_counters=(
                int(stats.solutions),
                int(stats.bindings),
                int(stats.attempts),
                int(stats.leap_calls),
            ),
            descent_ranks=tuple(
                rank_of[var]
                for var in stats.first_descent_order
                if var in rank_of
            ),
            sim_ranks=tuple(
                sorted(
                    rank_of[var]
                    for var in stats.sim_variables
                    if var in rank_of
                )
            ),
            epoch=database_epoch(db),
            cost_s=cost,
            nbytes=nbytes,
        )
        key = (form.signature, form.profile, engine_name)
        with self._lock:
            self._tick += 1
            entry.last_used = self._tick
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._evict_locked(nbytes)
            self._entries[key] = entry
            self._bytes += nbytes
            self._fills += 1
        return note(True, "")

    def _drop_locked(self, key: tuple, entry: _Entry) -> None:
        del self._entries[key]
        self._bytes -= entry.nbytes

    def _evict_locked(self, incoming: int) -> None:
        while self._entries and self._bytes + incoming > self.config.max_bytes:
            victim_key = min(
                self._entries,
                key=lambda k: self._score_locked(self._entries[k]),
            )
            victim = self._entries.pop(victim_key)
            self._bytes -= victim.nbytes
            self._evictions += 1

    def _score_locked(self, entry: _Entry) -> float:
        age = self._tick - entry.last_used + 1
        return entry.cost_s / age

    # -- first-level subplan cache -----------------------------------------
    def first_level_probe(
        self, db, query: ExtendedBGP, engine: str
    ) -> FirstLevelHit | None:
        """Cached leading variable + candidates for the parallel executor."""
        form = self._canonical(query)
        if form is None:
            return None
        key = (form.signature, form.profile, engine)
        epoch = database_epoch(db)
        with self._lock:
            entry = self._first_level.get(key)
            if entry is not None and entry.epoch != epoch:
                del self._first_level[key]
                self._invalidations += 1
                entry = None
            if entry is None:
                self._first_level_misses += 1
                return None
            self._first_level.move_to_end(key)
            self._first_level_hits += 1
            return FirstLevelHit(
                variable=form.variables[entry.variable_rank],
                candidates=entry.candidates,
                attempts=entry.attempts,
                leap_calls=entry.leap_calls,
            )

    def first_level_fill(
        self,
        db,
        query: ExtendedBGP,
        engine: str,
        variable: Var,
        candidates,
        *,
        attempts: int,
        leap_calls: int,
    ) -> bool:
        form = self._canonical(query)
        if form is None:
            return False
        try:
            rank = form.variables.index(variable)
        except ValueError:
            return False
        key = (form.signature, form.profile, engine)
        entry = _FirstLevelEntry(
            epoch=database_epoch(db),
            variable_rank=rank,
            candidates=tuple(int(c) for c in candidates),
            attempts=int(attempts),
            leap_calls=int(leap_calls),
        )
        with self._lock:
            self._first_level[key] = entry
            self._first_level.move_to_end(key)
            while len(self._first_level) > self.config.first_level_entries:
                self._first_level.popitem(last=False)
        return True

    # -- maintenance --------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._entries.clear()
            self._first_level.clear()
            self._bytes = 0

    def stats(self) -> dict[str, int]:
        """Lifetime counters plus current occupancy (thread-safe snapshot)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "fills": self._fills,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "inadmissible": self._inadmissible,
                "first_level_hits": self._first_level_hits,
                "first_level_misses": self._first_level_misses,
                "entries": len(self._entries),
                "first_level_entries": len(self._first_level),
                "bytes": self._bytes,
                "max_bytes": self.config.max_bytes,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
