"""Isomorphism-invariant canonicalization of extended BGPs.

The cross-query cache must recognise that ``(x,knn,y),(y,p,z)`` and
``(a,knn,b),(b,p,c)`` are the *same* query up to variable names. This
module maps an :class:`~repro.query.model.ExtendedBGP` to a
:class:`CanonicalQuery` carrying two keys at different strengths:

* ``signature`` — an isomorphism-invariant digest. Any variable
  renaming *or* atom reordering of a query produces the same
  signature; structurally distinct queries (different constants,
  kinds, ``k`` values, or co-occurrence shape) produce different ones.
  The cache groups entries and accounts hits/misses per signature.

* ``profile`` — an order-sensitive shape: the atoms in their original
  written order with every variable replaced by its first-seen rank.
  Two queries share a profile iff one is a pure variable renaming of
  the other (same atoms, same order). This is the key that gates
  actual result reuse, because the engines' variable-ordering
  tie-break is *positional* (``OrderingStrategy._min_estimate`` breaks
  estimate ties by position in the unbound list, never by name), so a
  pure renaming provably enumerates solutions in the same order —
  byte-identical read-out is guaranteed. Atom-*permuted* probes still
  collide on the signature (shared stats, shared admission history)
  but fill their own profile variant rather than risking a
  differently-ordered solution list.

The signature is computed by Weisfeiler-Leman colour refinement over
the variable co-occurrence structure, followed by an exact
minimisation over the (usually singleton) residual colour-class
permutations. The permutation count is capped at
:data:`MAX_LABELINGS`; pathological queries past the cap raise
:class:`CanonicalizationError` and are simply not cached.

Digests use :func:`hashlib.blake2b`, never the builtin ``hash`` —
``PYTHONHASHSEED`` must not leak into cache keys.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.query.model import (
    DistClause,
    ExtendedBGP,
    SimClause,
    TriplePattern,
    Var,
)

#: Upper bound on the number of candidate labelings tried while
#: minimising within tied WL colour classes (7! — seven mutually
#: symmetric variables). Queries beyond it are declared uncanonical.
MAX_LABELINGS = 5040


class CanonicalizationError(ValueError):
    """The query is too symmetric to canonicalize within the cap."""


@dataclass(frozen=True)
class CanonicalQuery:
    """Canonical form of one extended BGP.

    ``var_order`` records the variable remapping: ``var_order[i]`` is
    the original variable assigned canonical index ``i``. ``profile``
    is the renaming-invariant (but order-sensitive) atom shape used to
    gate byte-identical reuse, and ``variables`` lists the query's
    variables in first-seen order over *all* atoms — the column order
    of packed solution matrices (note ``ExtendedBGP.variables`` omits
    variables that appear only in distance clauses; this one does not).
    """

    signature: str
    var_order: tuple[Var, ...]
    profile: tuple
    variables: tuple[Var, ...]


def first_seen_variables(query: ExtendedBGP) -> tuple[Var, ...]:
    """Every variable of ``query`` in first-seen order over all atoms."""
    seen: list[Var] = []
    for atom in query.atoms:
        for var in atom.variables:
            if var not in seen:
                seen.append(var)
    return tuple(seen)


def _term_key(term, index_of):
    if isinstance(term, Var):
        return ("v", index_of[term])
    return ("c", int(term))


def _atom_key(atom, index_of, *, symmetric_dist: bool):
    """Serialise one atom under a variable labeling.

    ``symmetric_dist`` orients distance clauses canonically (their
    semantics are symmetric) — used for the signature. The profile
    keeps the written orientation so it stays a pure positional shape.
    """
    if isinstance(atom, TriplePattern):
        return (
            "t",
            _term_key(atom.s, index_of),
            _term_key(atom.p, index_of),
            _term_key(atom.o, index_of),
        )
    if isinstance(atom, SimClause):
        return (
            "k",
            atom.relation,
            int(atom.k),
            _term_key(atom.x, index_of),
            _term_key(atom.y, index_of),
        )
    assert isinstance(atom, DistClause)
    x = _term_key(atom.x, index_of)
    y = _term_key(atom.y, index_of)
    if symmetric_dist and y < x:
        x, y = y, x
    return ("d", float(atom.d), x, y)


def _context_key(atom, var: Var, colors: dict[Var, int]):
    """One occurrence of ``var`` in ``atom``, other vars by colour."""

    def term(t):
        if t == var:
            return ("s",)
        if isinstance(t, Var):
            return ("o", colors[t])
        return ("c", int(t))

    if isinstance(atom, TriplePattern):
        return ("t", term(atom.s), term(atom.p), term(atom.o))
    if isinstance(atom, SimClause):
        return ("k", atom.relation, int(atom.k), term(atom.x), term(atom.y))
    assert isinstance(atom, DistClause)
    x, y = term(atom.x), term(atom.y)
    if y < x:
        x, y = y, x
    return ("d", float(atom.d), x, y)


def _refine(query: ExtendedBGP, variables: tuple[Var, ...]) -> dict[Var, int]:
    """Weisfeiler-Leman colour refinement over atom co-occurrence."""
    colors = {var: 0 for var in variables}
    for _ in range(len(variables) + 1):
        keys = {
            var: (
                colors[var],
                tuple(
                    sorted(
                        _context_key(atom, var, colors)
                        for atom in query.atoms
                        if var in atom.variables
                    )
                ),
            )
            for var in variables
        }
        ranked = {key: i for i, key in enumerate(sorted(set(keys.values())))}
        refined = {var: ranked[keys[var]] for var in variables}
        if refined == colors:
            break
        colors = refined
    return colors


def profile_of(query: ExtendedBGP) -> tuple:
    """Order-sensitive shape: atoms as written, vars by first-seen rank."""
    variables = first_seen_variables(query)
    index_of = {var: i for i, var in enumerate(variables)}
    return tuple(
        _atom_key(atom, index_of, symmetric_dist=False)
        for atom in query.atoms
    )


def canonicalize(query: ExtendedBGP) -> CanonicalQuery:
    """Compute the canonical form of ``query``.

    Raises :class:`CanonicalizationError` when the residual symmetry
    after WL refinement exceeds :data:`MAX_LABELINGS` candidate
    labelings (such a query is declared uncacheable rather than paying
    a factorial minimisation).
    """
    variables = first_seen_variables(query)
    profile = profile_of(query)
    if not variables:
        atoms = tuple(
            sorted(_atom_key(a, {}, symmetric_dist=True) for a in query.atoms)
        )
        return CanonicalQuery(
            signature=_digest((0, atoms)),
            var_order=(),
            profile=profile,
            variables=(),
        )

    colors = _refine(query, variables)
    groups: dict[int, list[Var]] = {}
    for var in variables:  # first-seen order makes ties deterministic
        groups.setdefault(colors[var], []).append(var)
    ordered_groups = [groups[color] for color in sorted(groups)]

    n_labelings = 1
    for group in ordered_groups:
        for i in range(2, len(group) + 1):
            n_labelings *= i
        if n_labelings > MAX_LABELINGS:
            raise CanonicalizationError(
                f"query has {n_labelings}+ candidate labelings after "
                f"colour refinement (cap {MAX_LABELINGS})"
            )

    best_atoms: tuple | None = None
    best_order: tuple[Var, ...] | None = None
    for parts in itertools.product(
        *(itertools.permutations(group) for group in ordered_groups)
    ):
        order = tuple(itertools.chain.from_iterable(parts))
        index_of = {var: i for i, var in enumerate(order)}
        atoms = tuple(
            sorted(
                _atom_key(atom, index_of, symmetric_dist=True)
                for atom in query.atoms
            )
        )
        if best_atoms is None or atoms < best_atoms:
            best_atoms = atoms
            best_order = order
    assert best_atoms is not None and best_order is not None

    return CanonicalQuery(
        signature=_digest((len(variables), best_atoms)),
        var_order=best_order,
        profile=profile,
        variables=variables,
    )


def _digest(payload: object) -> str:
    return hashlib.blake2b(
        repr(payload).encode("utf-8"), digest_size=16
    ).hexdigest()
