"""The Ring-KNN and Ring-KNN-S engines (Secs. 5.1-5.2).

Both compile an extended BGP into leapfrog relations — triple patterns
over the Ring, similarity clauses over the succinct K-NN structure,
distance clauses over the distance-range index — and run the LTJ engine.
They differ *only* in the variable-ordering strategy:

* **Ring-KNN** uses :class:`ConstraintAwareOrdering`, never binding the
  target ``y`` of an unresolved ``x <|_k y`` edge while an unmarked
  variable exists (the wco recipe of Sec. 4);
* **Ring-KNN-S** uses the unrestricted :class:`MinCandidatesOrdering`,
  "free to bind y before x" (Sec. 5.1).
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.ltj.distance_relation import DistanceClauseRelation
from repro.ltj.engine import LTJEngine
from repro.ltj.knn_relation import KnnClauseRelation
from repro.ltj.ordering import (
    ConstraintAwareOrdering,
    MinCandidatesOrdering,
    OrderingStrategy,
)
from repro.ltj.triple_relation import RingTripleRelation
from repro.obs.trace import attach_wavelets, instrument_relations, wavelet_targets
from repro.parallel.forced import forced_workers
from repro.query.model import ExtendedBGP


class _RingEngineBase:
    """Shared compile-and-run logic of the two Ring variants.

    ``exact_estimates=True`` switches the per-pattern ``l_x`` values
    from range sizes to exact distinct counts where available (an
    ablation of the Sec. 5 estimation choice).
    """

    name = "ring-base"

    def __init__(self, db: GraphDatabase, exact_estimates: bool = False) -> None:
        self._db = db
        self._exact_estimates = exact_estimates

    def _ordering(self, query: ExtendedBGP) -> OrderingStrategy:
        raise NotImplementedError

    def compile(self, query: ExtendedBGP) -> list[object]:
        """Build the leapfrog relations for a query (fresh state)."""
        self._db.validate_query(query)
        relations: list[object] = [
            RingTripleRelation(
                self._db.ring, t, exact_estimates=self._exact_estimates
            )
            for t in query.triples
        ]
        relations.extend(
            KnnClauseRelation(self._db.knn_ring_for(c.relation), c)
            for c in query.clauses
        )
        relations.extend(
            DistanceClauseRelation(self._db.distance_index, c)
            for c in query.dist_clauses
        )
        return relations

    def evaluate(
        self,
        query: ExtendedBGP,
        timeout: float | None = None,
        limit: int | None = None,
        project: list | None = None,
        distinct: bool = False,
        trace: object | None = None,
    ) -> QueryResult:
        """Run the query, returning solutions and instrumentation.

        Args:
            query: the extended BGP.
            timeout: wall-clock budget in seconds (sets ``timed_out``).
            limit: cap on the number of (projected) solutions.
            project: keep only these variables in each solution
                (SPARQL SELECT-style projection).
            distinct: deduplicate the (projected) solutions.
            trace: optional :class:`~repro.obs.trace.QueryTrace`. When
                given, per-variable/relation/wavelet counters are
                recorded and the trace is attached to the result.
        """
        workers = forced_workers()
        if (
            workers
            and trace is None
            and timeout is None
            and limit is None
            and not project
            and not distinct
        ):
            # CI smoke mode (REPRO_PARALLEL_WORKERS): transparently
            # domain-shard full enumerations; the merged outcome is
            # byte-identical to the serial path, so callers can't tell.
            # Traced/limited runs stay serial — their shapes are the
            # serial engine's contract, not worth re-deriving here —
            # and so do timed runs, whose partial answers under a
            # timeout are a *prefix* of the serial enumeration, which
            # per-shard budgets cannot reproduce.
            from repro.parallel.executor import evaluate_parallel

            outcome = evaluate_parallel(self, query, workers=workers)
            if outcome is not None:
                result = QueryResult(
                    self.name, outcome.solutions, outcome.stats
                )
                return result
        relations = self.compile(query)
        engine = LTJEngine(
            relations,
            ordering=self._ordering(query),
            timeout=timeout,
            limit=None if (project and distinct) else limit,
            trace=trace,
        )
        if trace is None:
            attached = nullcontext()
        else:
            trace.engine = self.name
            if trace.query is None:
                trace.query = repr(query)
            instrument_relations(trace, relations)
            attached = attach_wavelets(wavelet_targets(trace, self._db, query))
        with attached:
            timed = nullcontext() if trace is None else trace.phase("evaluate")
            with timed:
                solutions = self._collect(engine, project, distinct, limit)
        return QueryResult(self.name, solutions, engine.stats, trace=trace)

    @staticmethod
    def _collect(
        engine: LTJEngine,
        project: list | None,
        distinct: bool,
        limit: int | None,
    ) -> list[dict]:
        if not project and not distinct:
            return engine.evaluate()
        solutions: list[dict] = []
        seen: set[tuple] = set()
        run = engine.run()
        try:
            for solution in run:
                if project:
                    solution = {v: solution[v] for v in project}
                if distinct:
                    key = tuple(
                        sorted((v.name, c) for v, c in solution.items())
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                solutions.append(solution)
                if limit is not None and len(solutions) >= limit:
                    break
        finally:
            # Deterministically finalize engine.stats (the generator's
            # `finally` runs on close, not only on exhaustion).
            run.close()
        return solutions


class RingKnnEngine(_RingEngineBase):
    """Ring-KNN: constraint-aware ordering (the paper's full technique)."""

    name = "ring-knn"

    def _ordering(self, query: ExtendedBGP) -> OrderingStrategy:
        return ConstraintAwareOrdering()


class RingKnnSEngine(_RingEngineBase):
    """Ring-KNN-S: unrestricted adaptive min-``l_x`` ordering."""

    name = "ring-knn-s"

    def _ordering(self, query: ExtendedBGP) -> OrderingStrategy:
        return MinCandidatesOrdering()
