"""Strategy auto-selection based on the paper's Sec. 6.2 findings.

The evaluation's summary: "In simpler cases (Q1), Ring-KNN-S is more
effective by exploiting the opportunity of binding the variables
involved in similarity clauses earlier ... As the queries get more
complicated, however, with more similarity constraints or with
constraints involved in cycles (Q2 onwards), the careful variable
ordering of Ring-KNN protects it against bad cases."

:class:`AutoEngine` encodes that decision rule: queries with at most one
similarity clause and an acyclic constraint graph run under the
unrestricted Ring-KNN-S ordering; everything else — multiple clauses,
2-cycles from the symmetric operator, general cycles — runs under the
constraint-aware Ring-KNN ordering (which also carries the Thm. 2/3 wco
guarantees where they apply).
"""

from __future__ import annotations

from repro.bounds.constraint_graph import ConstraintGraph
from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.query.model import ExtendedBGP


class AutoEngine:
    """Pick Ring-KNN or Ring-KNN-S per query, per the Sec. 6.2 summary.

    With ``workers >= 2`` the selected strategy runs domain-sharded over
    a worker pool (:class:`~repro.engines.parallel_knn.ParallelRingKnnEngine`
    wrapping it); the strategy selection itself is unchanged, and so are
    the results — sharded execution is byte-identical.
    """

    name = "auto"

    def __init__(
        self,
        db: GraphDatabase,
        exact_estimates: bool = False,
        workers: int = 1,
        cache: object | None = None,
    ) -> None:
        self._db = db
        self._exact_estimates = exact_estimates
        self._ring_knn = RingKnnEngine(db, exact_estimates=exact_estimates)
        self._ring_knn_s = RingKnnSEngine(db, exact_estimates=exact_estimates)
        self.workers = int(workers)
        self._parallel: dict[str, object] = {}
        self._owned_store: object | None = None
        #: Optional :class:`repro.cache.QueryCache` probed before and
        #: filled after every full (un-limited) evaluation.
        self.cache = cache

    @classmethod
    def from_index(
        cls,
        path: str,
        exact_estimates: bool = False,
        workers: int = 1,
        verify: bool = True,
        prime: bool = False,
    ) -> "AutoEngine":
        """Construct an engine over an mmap-loaded persistent index.

        The engine owns the store it loaded: :meth:`close` releases the
        mapping along with any worker pools. With ``workers >= 2`` the
        pools attach their spawn workers directly to the index file —
        warm-up skips the flatten-into-shared-memory step entirely.
        """
        db = GraphDatabase.from_index(path, verify=verify, prime=prime)
        engine = cls(db, exact_estimates=exact_estimates, workers=workers)
        engine._owned_store = db.store
        return engine

    def _parallel_for(self, base: str):
        """Cached sharding wrapper around the selected serial engine."""
        engine = self._parallel.get(base)
        if engine is None:
            from repro.engines.parallel_knn import ParallelRingKnnEngine

            engine = ParallelRingKnnEngine(
                self._db,
                workers=self.workers,
                exact_estimates=self._exact_estimates,
                base=base,
            )
            self._parallel[base] = engine
        return engine

    def close(self) -> None:
        """Release any worker pools (and shm segments) for this
        database, plus the index-store mapping when this engine was
        built via :meth:`from_index`. No-op when nothing parallel ever
        ran and no store is owned."""
        from repro.parallel.executor import close_pools_for

        close_pools_for(self._db)
        store = self._owned_store
        self._owned_store = None
        if store is not None:
            store.close()  # type: ignore[attr-defined]

    def select(self, query: ExtendedBGP) -> str:
        """Return the chosen engine name for ``query``."""
        n_constraints = len(query.clauses) + len(query.dist_clauses)
        if n_constraints <= 1 and ConstraintGraph(query).is_acyclic():
            return self._ring_knn_s.name
        return self._ring_knn.name

    def evaluate(
        self,
        query: ExtendedBGP,
        timeout: float | None = None,
        limit: int | None = None,
        trace: object | None = None,
    ) -> QueryResult:
        """Evaluate with the per-query selected strategy.

        The result's ``engine`` field names the strategy actually used;
        with ``trace``, the selection and its reason land in
        ``trace.meta["auto"]``.

        When a :attr:`cache` is attached and no ``limit`` is set, the
        cache is probed before execution and filled afterwards; a hit
        returns the replayed result (``cached=True``) and, with
        ``trace``, records a ``cache_hit`` event in
        ``trace.meta["cache"]`` with the replayed counters — never
        silent zeros.
        """
        selected = self.select(query)
        if trace is not None:
            n_constraints = len(query.clauses) + len(query.dist_clauses)
            trace.meta["auto"] = {
                "selected": selected,
                "constraints": n_constraints,
                "acyclic": ConstraintGraph(query).is_acyclic(),
            }
        cache = self.cache if limit is None else None
        cache_info: dict[str, object] = {}
        if cache is not None:
            hit = cache.probe(  # type: ignore[attr-defined]
                self._db, query, engine=selected, meta=cache_info
            )
            if hit is not None:
                if trace is not None:
                    if trace.engine is None:
                        trace.engine = hit.engine
                    trace.meta["cache"] = cache_info
                    trace.finish(hit.stats)
                    hit.trace = trace
                return hit
        if self.workers >= 2:
            engine = self._parallel_for(selected)
            result = engine.evaluate(
                query, timeout=timeout, limit=limit, trace=trace
            )
        elif selected == self._ring_knn_s.name:
            result = self._ring_knn_s.evaluate(
                query, timeout=timeout, limit=limit, trace=trace
            )
        else:
            result = self._ring_knn.evaluate(
                query, timeout=timeout, limit=limit, trace=trace
            )
        if cache is not None:
            cache.fill(  # type: ignore[attr-defined]
                self._db, query, result, engine=selected, meta=cache_info
            )
            if trace is not None:
                trace.meta["cache"] = cache_info
        return result
