"""The materialization strawman (Sec. 3.2 of the paper).

For every clause ``x <|_k y`` it *materializes* the relation
``kNN(.,.)`` — all pairs ``(a, b)`` with ``b in k-NN(a)`` — as triples
under a fresh predicate, sorts and indexes them into their own LTJ
tries (a dedicated Ring), and runs classic LTJ on the rewritten query.

The paper dismisses this approach because the extraction + sorting +
re-indexing cost is paid before query processing even starts (their
measurement: 260 s of setup against 1.3-103 s total for the integrated
index). :class:`MaterializeEngine` reports the two phases separately so
the materialization-cost experiment (E7 in DESIGN.md) can reproduce that
comparison.
"""

from __future__ import annotations

import time

from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.graph.triples import GraphData
from repro.ltj.engine import LTJEngine
from repro.ltj.ordering import MinCandidatesOrdering
from repro.ltj.triple_relation import RingTripleRelation
from repro.obs.trace import attach_wavelets, instrument_relations
from repro.query.model import ExtendedBGP, TriplePattern
from repro.ring.index import RingIndex
from repro.utils.errors import QueryError


class MaterializeEngine:
    """Materialize ``kNN`` relations into triples, then run plain LTJ."""

    name = "materialize"

    def __init__(self, db: GraphDatabase) -> None:
        self._db = db

    def evaluate(
        self,
        query: ExtendedBGP,
        timeout: float | None = None,
        limit: int | None = None,
        trace: object | None = None,
    ) -> QueryResult:
        self._db.validate_query(query)
        if query.dist_clauses:
            raise QueryError(
                "materialization strawman only covers <|_k clauses"
            )

        started = time.perf_counter()
        # Phase 1: extract the k-prefixes of the K-NN lists per clause
        # and sort/index them as the relation kNN(.,.) under a fresh
        # predicate id (one per distinct k, since the pairs depend on
        # k). As in Sec. 3.2, the relation gets its *own* LTJ tries — a
        # separate Ring — so data patterns never see the virtual pairs.
        base_domain = self._db.graph.domain_size
        for graph in self._db.knn_graphs.values():
            if graph.num_members:
                base_domain = max(base_domain, int(graph.members.max()) + 1)
        predicate_for: dict[tuple[str, int], int] = {}
        extra_triples: list[tuple[int, int, int]] = []
        clause_patterns: list[TriplePattern] = []
        for clause in query.clauses:
            key = (clause.relation, clause.k)
            pred = predicate_for.get(key)
            if pred is None:
                pred = base_domain + len(predicate_for)
                predicate_for[key] = pred
                knn = self._db.knn_graphs[clause.relation]
                for u in knn.members:
                    u = int(u)
                    for v in knn.neighbors_of(u, clause.k):
                        extra_triples.append((u, pred, int(v)))
            clause_patterns.append(TriplePattern(clause.x, pred, clause.y))
        knn_ring = RingIndex(GraphData(extra_triples))
        materialize_seconds = time.perf_counter() - started

        # Phase 2: classic LTJ; data patterns run over the existing data
        # Ring, the rewritten clause patterns over the kNN-pairs Ring.
        remaining = None
        if timeout is not None:
            remaining = max(0.0, timeout - materialize_seconds)
        relations = [
            RingTripleRelation(self._db.ring, t) for t in query.triples
        ]
        relations.extend(
            RingTripleRelation(knn_ring, t) for t in clause_patterns
        )
        engine = LTJEngine(
            relations,
            ordering=MinCandidatesOrdering(),
            timeout=remaining,
            limit=limit,
            trace=trace,
        )
        if trace is None:
            solutions = engine.evaluate()
        else:
            trace.engine = self.name
            if trace.query is None:
                trace.query = repr(query)
            trace.add_phase("materialize", materialize_seconds)
            trace.meta["materialized_pairs"] = len(extra_triples)
            instrument_relations(trace, relations)
            # Two Rings are live here: the data Ring and the fresh Ring
            # over the materialized kNN pairs.
            pairs = [
                (self._db.ring.column(c), trace.wavelet("ring"))
                for c in "spo"
            ]
            pairs.extend(
                (knn_ring.column(c), trace.wavelet("materialized_ring"))
                for c in "spo"
            )
            with attach_wavelets(pairs), trace.phase("query"):
                solutions = engine.evaluate()
        stats = engine.stats
        stats.elapsed += materialize_seconds
        if trace is not None:
            trace.finish(stats)
        return QueryResult(
            self.name,
            solutions,
            stats,
            phase_seconds={
                "materialize": materialize_seconds,
                "query": stats.elapsed - materialize_seconds,
                "materialized_pairs": float(len(extra_triples)),
            },
            trace=trace,
        )
