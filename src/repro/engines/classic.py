"""Ablation engine: classic six-permutation index instead of the Ring.

Sec. 1 of the paper notes that wco algorithms "typically require extra
index permutations, and thus more space" — the Ring's contribution is
removing that overhead. :class:`ClassicSixPermEngine` evaluates the
same extended BGPs with the same LTJ machinery and the same succinct
K-NN clauses, but backs triple patterns by the six sorted permutations.
It gives the space/time ablation: ~6x the raw data in space, with
array-binary-search navigation.
"""

from __future__ import annotations

from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.graph.sixperm import SixPermIndex
from repro.ltj.distance_relation import DistanceClauseRelation
from repro.ltj.engine import LTJEngine
from repro.ltj.knn_relation import KnnClauseRelation
from repro.ltj.ordering import ConstraintAwareOrdering
from repro.ltj.sixperm_relation import SixPermTripleRelation
from repro.obs.trace import attach_wavelets, instrument_relations, wavelet_targets
from repro.query.model import ExtendedBGP


class ClassicSixPermEngine:
    """Extended LTJ over six sorted permutations (space-heavy classic)."""

    name = "sixperm-knn"

    def __init__(self, db: GraphDatabase) -> None:
        self._db = db
        self._index = SixPermIndex(db.graph)

    @property
    def index(self) -> SixPermIndex:
        return self._index

    def compile(self, query: ExtendedBGP) -> list[object]:
        self._db.validate_query(query)
        relations: list[object] = [
            SixPermTripleRelation(self._index, t) for t in query.triples
        ]
        relations.extend(
            KnnClauseRelation(self._db.knn_ring_for(c.relation), c)
            for c in query.clauses
        )
        relations.extend(
            DistanceClauseRelation(self._db.distance_index, c)
            for c in query.dist_clauses
        )
        return relations

    def evaluate(
        self,
        query: ExtendedBGP,
        timeout: float | None = None,
        limit: int | None = None,
        trace: object | None = None,
    ) -> QueryResult:
        relations = self.compile(query)
        engine = LTJEngine(
            relations,
            ordering=ConstraintAwareOrdering(),
            timeout=timeout,
            limit=limit,
            trace=trace,
        )
        if trace is None:
            solutions = engine.evaluate()
            return QueryResult(self.name, solutions, engine.stats)
        trace.engine = self.name
        if trace.query is None:
            trace.query = repr(query)
        instrument_relations(trace, relations)
        # Six-permutation triple patterns run over sorted arrays, not
        # wavelet trees, so only the K-NN/distance structures apply.
        pairs = wavelet_targets(trace, self._db, query, include_ring=False)
        with attach_wavelets(pairs), trace.phase("evaluate"):
            solutions = engine.evaluate()
        return QueryResult(self.name, solutions, engine.stats, trace=trace)

    def size_in_bytes(self) -> int:
        """Index footprint (six permutations + succinct K-NN)."""
        return self._index.size_in_bytes() + sum(
            ring.size_in_bytes() for ring in self._db.knn_rings.values()
        )
