"""The parallel-knn engine: domain-sharded Ring-KNN execution.

A thin engine facade over :func:`repro.parallel.executor.evaluate_parallel`:
it borrows a serial Ring engine (Ring-KNN by default, Ring-KNN-S via
``base=``) for query compilation and variable ordering, shards the first
variable's candidate range across a worker pool, and returns the
byte-identical ordered solution list the serial engine would produce —
with merged stats and (when traced) a merged trace whose op counters
equal the serial counts for any pool size.

Queries the executor cannot shard (no variables) transparently fall back
to the serial base engine.
"""

from __future__ import annotations

from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.parallel.executor import (
    DEFAULT_WORKERS,
    SHARDS_PER_WORKER,
    evaluate_parallel,
)
from repro.query.model import ExtendedBGP


class ParallelRingKnnEngine:
    """Domain-sharded execution of the Ring engines over a pool."""

    name = "parallel-knn"

    def __init__(
        self,
        db: GraphDatabase,
        workers: int = DEFAULT_WORKERS,
        exact_estimates: bool = False,
        base: str = "ring-knn",
        shards_per_worker: int = SHARDS_PER_WORKER,
    ) -> None:
        if base == RingKnnSEngine.name:
            self._base = RingKnnSEngine(db, exact_estimates=exact_estimates)
        elif base == RingKnnEngine.name:
            self._base = RingKnnEngine(db, exact_estimates=exact_estimates)
        else:
            raise ValueError(f"unknown base engine: {base!r}")
        self._db = db
        self.workers = int(workers)
        self.shards_per_worker = shards_per_worker

    @property
    def base_name(self) -> str:
        """Name of the serial engine providing compile order/ordering."""
        return self._base.name

    def close(self) -> None:
        """Release the worker pools (and their shared-memory segments)
        bound to this engine's database. Safe to call repeatedly; the
        next evaluation transparently starts a fresh pool."""
        from repro.parallel.executor import close_pools_for

        close_pools_for(self._db)

    def compile(self, query: ExtendedBGP) -> list[object]:
        """Compile exactly as the serial base engine does."""
        return self._base.compile(query)

    def evaluate(
        self,
        query: ExtendedBGP,
        timeout: float | None = None,
        limit: int | None = None,
        project: list | None = None,
        distinct: bool = False,
        trace: object | None = None,
    ) -> QueryResult:
        """Evaluate domain-sharded; same signature as the Ring engines.

        Solutions (including projection/distinct/limit handling) match
        the serial base engine's output order exactly; ``stats`` and the
        optional trace merge the parent's depth-0 counters with the
        shards' depth >= 1 counters (pool-size invariant).
        """
        if trace is not None:
            trace.engine = self.name
            if trace.query is None:
                trace.query = repr(query)
        outcome = evaluate_parallel(
            self._base,
            query,
            workers=self.workers,
            timeout=timeout,
            limit=limit,
            project=project,
            distinct=distinct,
            trace=trace,
            shards_per_worker=self.shards_per_worker,
        )
        if outcome is None:
            # Unshardable (no variables): serial fallback. The trace, if
            # any, is recorded by the base engine; keep our name on it.
            result = self._base.evaluate(
                query,
                timeout=timeout,
                limit=limit,
                project=project,
                distinct=distinct,
                trace=trace,
            )
            if trace is not None:
                trace.engine = self.name
            fallback = QueryResult(
                self.name, result.solutions, result.stats, trace=result.trace
            )
            return fallback
        result = QueryResult(
            self.name, outcome.solutions, outcome.stats, trace=trace
        )
        return result
