"""Result container returned by every engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ltj.stats import EvaluationStats
from repro.query.model import Var


@dataclass
class QueryResult:
    """Solutions plus instrumentation of one query evaluation."""

    engine: str
    """Engine name: ``ring-knn``, ``ring-knn-s``, ``baseline``, ..."""

    solutions: list[dict[Var, int]]
    """The assignments found (possibly truncated by timeout/limit)."""

    stats: EvaluationStats
    """LTJ counters (bindings, attempts, elapsed, timed_out, ...)."""

    phase_seconds: dict[str, float] = field(default_factory=dict)
    """Per-phase wall-clock breakdown (e.g. ``materialize`` vs ``query``)."""

    trace: object | None = None
    """The :class:`~repro.obs.trace.QueryTrace` passed to ``evaluate``
    (None when tracing was off)."""

    cached: bool = False
    """True when this result was served from :mod:`repro.cache` (the
    solutions and counters replay a prior cold run; ``elapsed`` is the
    retrieval time)."""

    @property
    def elapsed(self) -> float:
        """Total wall-clock seconds."""
        return self.stats.elapsed

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out

    def sorted_solutions(self) -> list[tuple[tuple[str, int], ...]]:
        """Canonical, order-independent form for comparing engines."""
        return sorted(
            tuple(sorted((v.name, c) for v, c in sol.items()))
            for sol in self.solutions
        )
