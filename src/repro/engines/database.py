"""The indexed database shared by all engines.

Owns the graph and its indexes:

* the :class:`~repro.ring.index.RingIndex` over the triples;
* one :class:`~repro.knn.succinct.KnnRing` per named K-NN relation
  (Sec. 3.1 allows several independent similarity relations in the same
  queries; the unnamed one is ``"default"``), each built once for its
  construction-time ``K`` — queries may use any ``k <= K`` (Sec. 3.2);
* lazily, the plain :class:`~repro.knn.adjacency.KnnAdjacency` forms
  the baseline uses (so Ring-only workloads don't pay for them);
* optionally a :class:`~repro.knn.distance_index.DistanceRangeIndex`
  for ``dist(x, y) <= d`` clauses.
"""

from __future__ import annotations

from repro.graph.triples import GraphData
from repro.knn.adjacency import KnnAdjacency
from repro.knn.distance_index import DistanceRangeIndex
from repro.knn.graph import KnnGraph
from repro.knn.succinct import KnnRing
from repro.query.model import DEFAULT_RELATION, ExtendedBGP
from repro.ring.index import RingIndex
from repro.utils.errors import QueryError, ValidationError


class GraphDatabase:
    """A graph database plus (optional) similarity structures."""

    def __init__(
        self,
        graph: GraphData,
        knn_graph: KnnGraph | None = None,
        distance_index: DistanceRangeIndex | None = None,
        knn_graphs: dict[str, KnnGraph] | None = None,
    ) -> None:
        """Index a graph with zero or more K-NN relations.

        Args:
            graph: the edge set.
            knn_graph: the primary (``"default"``) K-NN relation.
            distance_index: optional range-similarity index.
            knn_graphs: additional named K-NN relations; may not contain
                ``"default"`` if ``knn_graph`` is also given.
        """
        self.graph = graph
        self.ring = RingIndex(graph)
        self.knn_graphs: dict[str, KnnGraph] = dict(knn_graphs or {})
        if knn_graph is not None:
            if DEFAULT_RELATION in self.knn_graphs:
                raise ValidationError(
                    "pass the default K-NN relation either as knn_graph or "
                    "inside knn_graphs, not both"
                )
            self.knn_graphs[DEFAULT_RELATION] = knn_graph
        self.knn_rings: dict[str, KnnRing] = {
            name: KnnRing(g) for name, g in self.knn_graphs.items()
        }
        self.distance_index = distance_index
        self._adjacency: dict[str, KnnAdjacency] = {}

    # ------------------------------------------------------------------
    # persistent-store construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls, path: str, verify: bool = True, prime: bool = False
    ) -> "GraphDatabase":
        """Attach a database zero-copy from a persistent index file.

        The returned database carries only the succinct structures (the
        raw ``graph``/``knn_graphs`` tables are not part of the
        artifact — the same contract as shared-memory worker
        attachment), so the Ring/K-NN engines work but the baseline
        family does not. The backing :class:`~repro.store.IndexStore`
        is reachable as ``db._store`` and owns the mapping's lifetime;
        worker pools detect it and attach spawn workers directly to the
        file instead of flattening into a fresh shared segment.
        """
        from repro.store import load

        return load(path, verify=verify, prime=prime).database

    @property
    def store(self) -> object | None:
        """The backing :class:`~repro.store.IndexStore`, if mmap-loaded."""
        return getattr(self, "_store", None)

    # ------------------------------------------------------------------
    # mutation epoch (cache invalidation)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Mutation epoch stamped into :mod:`repro.cache` entries.

        The base is the persistent store's payload checksum when this
        database is mmap-backed (so a hot index replace — a different
        file behind the same server — invalidates every cached entry on
        first lookup) and 0 for an in-memory build; each
        :meth:`bump_epoch` call adds one on top. ``getattr`` defaults
        keep both accessors safe on instances attached without running
        ``__init__`` (the shm/store attach paths).
        """
        base = 0
        store = getattr(self, "_store", None)
        if store is not None:
            header = getattr(store, "header", None)
            if header is not None:
                base = int(getattr(header, "checksum", 0))
        return base + int(getattr(self, "_mutations", 0))

    def bump_epoch(self) -> None:
        """Record a graph mutation: every cached result becomes stale.

        The indexes themselves are immutable today; embedders that
        rebuild or patch the underlying structures in place call this
        so :class:`~repro.cache.QueryCache` drops entries produced
        against the old contents.
        """
        self._mutations = int(getattr(self, "_mutations", 0)) + 1

    def close(self) -> None:
        """Release runtime resources bound to this database.

        Closes every cached worker pool keyed on this instance (their
        processes and shared segments) and, for a store-backed
        database, the backing mmap. Idempotent; an in-memory database
        with no pools is a no-op. Owners that open a database per
        request (the CLI, embedders) must call this — dropping the
        last reference leaks the mapping until process exit, which is
        exactly what the ``REPRO_SANITIZE=1`` test mode flags.
        """
        from repro.parallel.executor import close_pools_for

        close_pools_for(self)
        store = getattr(self, "_store", None)
        if store is not None:
            self._store = None
            store.close()

    # ------------------------------------------------------------------
    # default-relation conveniences (most code uses a single relation)
    # ------------------------------------------------------------------
    @property
    def knn_graph(self) -> KnnGraph | None:
        """The ``"default"`` K-NN graph, if any."""
        return self.knn_graphs.get(DEFAULT_RELATION)

    @property
    def knn_ring(self) -> KnnRing | None:
        """The ``"default"`` succinct K-NN structure, if any."""
        return self.knn_rings.get(DEFAULT_RELATION)

    @property
    def adjacency(self) -> KnnAdjacency:
        """Plain-form adjacency of the default relation (baseline only)."""
        return self.adjacency_for(DEFAULT_RELATION)

    def adjacency_for(self, relation: str) -> KnnAdjacency:
        """Plain-form adjacency of a named relation, built on first use."""
        if relation not in self.knn_graphs:
            raise QueryError(f"database has no K-NN relation {relation!r}")
        if relation not in self._adjacency:
            self._adjacency[relation] = KnnAdjacency(
                self.knn_graphs[relation]
            )
        return self._adjacency[relation]

    def knn_ring_for(self, relation: str) -> KnnRing:
        """Succinct structure of a named relation."""
        try:
            return self.knn_rings[relation]
        except KeyError:
            raise QueryError(
                f"database has no K-NN relation {relation!r} "
                f"(available: {sorted(self.knn_rings) or 'none'})"
            ) from None

    def validate_query(self, query: ExtendedBGP) -> None:
        """Check that the database has the structures the query needs."""
        for clause in query.clauses:
            ring = self.knn_rings.get(clause.relation)
            if ring is None:
                raise QueryError(
                    f"query uses <|_k on relation {clause.relation!r} but "
                    "the database has no such K-NN graph"
                )
            if clause.k > ring.K:
                raise QueryError(
                    f"query uses k={clause.k} > construction-time K="
                    f"{ring.K} on relation {clause.relation!r} "
                    "(Sec. 3.2: K is fixed at indexing)"
                )
        if query.dist_clauses:
            if self.distance_index is None:
                raise QueryError(
                    "query uses dist clauses but the database has no "
                    "distance-range index"
                )
            worst = max(c.d for c in query.dist_clauses)
            if worst > self.distance_index.d_max:
                raise QueryError(
                    f"query distance {worst} exceeds index d_max="
                    f"{self.distance_index.d_max}"
                )

    # ------------------------------------------------------------------
    # space accounting (Sec. 6.2's space paragraph)
    # ------------------------------------------------------------------
    def ring_size_in_bytes(self) -> int:
        """Ring + succinct K-NN structures (what the Ring variants use)."""
        return self.ring.size_in_bytes() + sum(
            ring.size_in_bytes() for ring in self.knn_rings.values()
        )

    def baseline_size_in_bytes(self) -> int:
        """Ring + plain K-NN adjacency (what the baseline uses)."""
        return self.ring.size_in_bytes() + sum(
            self.adjacency_for(name).size_in_bytes()
            for name in self.knn_graphs
        )

    def raw_size_in_bytes(self) -> int:
        """Plain edge table + plain K-NN tables ("raw data" reference)."""
        return self.graph.size_in_bytes() + sum(
            g.size_in_bytes() for g in self.knn_graphs.values()
        )
