"""Query engines (Sec. 5 of the paper).

* :class:`RingKnnEngine` — the full technique: extended LTJ over the
  Ring + succinct K-NN structure with the constraint-aware variable
  ordering (**Ring-KNN**, Sec. 5.2).
* :class:`RingKnnSEngine` — same machinery with the unrestricted
  adaptive ordering (**Ring-KNN-S**, Sec. 5.1).
* :class:`BaselineEngine` — classic LTJ over the triples followed by
  similarity post-processing on plain adjacency (Sec. 5.3).
* :class:`MaterializeEngine` — the Sec. 3.2 strawman that materializes
  each ``kNN(.,.)`` relation into triples and re-indexes before running
  plain LTJ (used by the materialization-cost experiment).
* :class:`ParallelRingKnnEngine` — domain-sharded execution of the Ring
  engines over a multiprocessing pool (byte-identical results).
* :func:`evaluate_k_star` — the Sec. 7 "k* best results" semantics.

All engines operate on a shared :class:`GraphDatabase`, which owns the
indexes, and return :class:`QueryResult` objects.
"""

from repro.engines.auto import AutoEngine
from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.database import GraphDatabase
from repro.engines.kstar import KStarResult, evaluate_k_star
from repro.engines.materialize import MaterializeEngine
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.result import QueryResult
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine

__all__ = [
    "GraphDatabase",
    "QueryResult",
    "RingKnnEngine",
    "RingKnnSEngine",
    "BaselineEngine",
    "MaterializeEngine",
    "ClassicSixPermEngine",
    "AutoEngine",
    "ParallelRingKnnEngine",
    "evaluate_k_star",
    "KStarResult",
]
