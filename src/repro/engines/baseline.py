"""The baseline engine (Sec. 5.3 of the paper).

Two phases:

1. Solve the BGP *ignoring* every similarity clause, with classic LTJ
   over the Ring.
2. Post-process each solution with the similarity clauses, classified as
   ``2-ready`` (both sides resolved: filter via the direct K-NN
   adjacency), ``ready`` (one side resolved: extend via the direct or
   reverse adjacency), and ``sim`` (neither side resolved). Filtering is
   prioritized; extending a variable can promote ``sim`` clauses to
   ``ready``.

Similarity clauses *disconnected* from the rest of the query (whose
variables can never become resolved) are not supported, as in the paper.
Distance clauses are handled with the same scheme over the
distance-range index (an extension beyond the paper's baseline).
"""

from __future__ import annotations

from repro.engines.database import GraphDatabase
from repro.engines.result import QueryResult
from repro.ltj.engine import LTJEngine
from repro.ltj.ordering import MinCandidatesOrdering
from repro.ltj.stats import EvaluationStats
from repro.ltj.triple_relation import RingTripleRelation
from repro.obs.trace import attach_wavelets, instrument_relations, wavelet_targets
from repro.query.model import DistClause, ExtendedBGP, SimClause, Var, is_var
from repro.utils.errors import QueryError
from repro.utils.timing import Stopwatch


class BaselineEngine:
    """Classic LTJ + similarity post-processing (Sec. 5.3)."""

    name = "baseline"

    def __init__(self, db: GraphDatabase) -> None:
        self._db = db

    # ------------------------------------------------------------------
    def _check_supported(self, query: ExtendedBGP) -> None:
        """Reject disconnected similarity clauses (paper's restriction).

        A variable is resolvable if it occurs in a triple pattern, or in
        a clause whose other side is a constant or itself resolvable.
        """
        self._db.validate_query(query)
        if not query.triples:
            raise QueryError(
                "baseline requires at least one triple pattern (Sec. 5.3)"
            )
        resolvable: set[Var] = set()
        for t in query.triples:
            resolvable.update(t.variables)
        all_clauses = (*query.clauses, *query.dist_clauses)
        changed = True
        while changed:
            changed = False
            for clause in all_clauses:
                sides = (clause.x, clause.y)
                resolved = [
                    not is_var(side) or side in resolvable for side in sides
                ]
                if any(resolved):
                    for side in sides:
                        if is_var(side) and side not in resolvable:
                            resolvable.add(side)
                            changed = True
        for clause in all_clauses:
            for side in (clause.x, clause.y):
                if is_var(side) and side not in resolvable:
                    raise QueryError(
                        "baseline does not support similarity clauses "
                        f"disconnected from the query: {clause!r}"
                    )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: ExtendedBGP,
        timeout: float | None = None,
        limit: int | None = None,
        trace: object | None = None,
    ) -> QueryResult:
        """Run both phases, sharing one time budget.

        With ``trace``, the BGP phase records the usual LTJ counters and
        the split between the two phases lands in ``trace.phases`` (the
        post-processing phase does no leapfrog work, so its cost shows
        up there and nowhere else).
        """
        self._check_supported(query)
        stopwatch = Stopwatch(timeout)
        # Phase 1: classic LTJ over the triples only.
        relations = [
            RingTripleRelation(self._db.ring, t) for t in query.triples
        ]
        ltj = LTJEngine(
            relations,
            ordering=MinCandidatesOrdering(),
            timeout=timeout,
            trace=trace,
        )
        stats = EvaluationStats()
        stats.sim_variables = frozenset(
            v
            for clause in (*query.clauses, *query.dist_clauses)
            for v in clause.variables
        )
        if trace is not None:
            trace.engine = self.name
            if trace.query is None:
                trace.query = repr(query)
            instrument_relations(trace, relations)
        solutions: list[dict[Var, int]] = []
        base_count = 0
        wavelets = (
            attach_wavelets(wavelet_targets(trace, self._db, query))
            if trace is not None
            else None
        )
        run = ltj.run()
        try:
            if wavelets is not None:
                wavelets.__enter__()
            for base in run:
                base_count += 1
                self._postprocess(
                    base,
                    list(query.clauses),
                    list(query.dist_clauses),
                    solutions,
                    stopwatch,
                    limit,
                )
                if stopwatch.expired():
                    stats.timed_out = True
                    break
                if limit is not None and len(solutions) >= limit:
                    break
        finally:
            run.close()
            if wavelets is not None:
                wavelets.__exit__(None, None, None)
        phase1 = ltj.stats.elapsed
        stats.timed_out = stats.timed_out or ltj.stats.timed_out
        stats.bindings = ltj.stats.bindings
        stats.attempts = ltj.stats.attempts
        stats.leap_calls = ltj.stats.leap_calls
        stats.first_descent_order = ltj.stats.first_descent_order
        stats.solutions = len(solutions)
        stats.elapsed = stopwatch.elapsed()
        if trace is not None:
            trace.add_phase("bgp", phase1)
            trace.add_phase("postprocess", stats.elapsed - phase1)
            trace.meta["base_solutions"] = base_count
            trace.finish(stats)
        return QueryResult(
            self.name,
            solutions,
            stats,
            phase_seconds={
                "bgp": phase1,
                "postprocess": stats.elapsed - phase1,
                "base_solutions": float(base_count),
            },
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _postprocess(
        self,
        assignment: dict[Var, int],
        sim_clauses: list[SimClause],
        dist_clauses: list[DistClause],
        out: list[dict[Var, int]],
        stopwatch: Stopwatch,
        limit: int | None,
    ) -> None:
        """Filter/extend one base solution through the clause groups."""

        def resolve(term):
            if is_var(term):
                return assignment.get(term)
            return term

        if stopwatch.expired():
            return
        if limit is not None and len(out) >= limit:
            return

        # 2-ready first: pure filters, can preempt the whole branch.
        pending_sim: list[SimClause] = []
        for clause in sim_clauses:
            x, y = resolve(clause.x), resolve(clause.y)
            if x is not None and y is not None:
                adjacency = self._db.adjacency_for(clause.relation)
                if not adjacency.is_knn(x, y, clause.k):
                    return
            else:
                pending_sim.append(clause)
        pending_dist: list[DistClause] = []
        for clause in dist_clauses:
            x, y = resolve(clause.x), resolve(clause.y)
            if x is not None and y is not None:
                if not self._db.distance_index.contains(x, y, clause.d):
                    return
            else:
                pending_dist.append(clause)

        if not pending_sim and not pending_dist:
            out.append(dict(assignment))
            return

        # ready next: extend through the direct or reverse graph.
        for idx, clause in enumerate(pending_sim):
            x, y = resolve(clause.x), resolve(clause.y)
            if x is not None or y is not None:
                remaining = pending_sim[:idx] + pending_sim[idx + 1 :]
                adjacency = self._db.adjacency_for(clause.relation)
                if x is not None:
                    var, values = clause.y, adjacency.neighbors_of(
                        x, clause.k
                    )
                else:
                    var, values = clause.x, (
                        adjacency.reverse_neighbors_of(y, clause.k)
                    )
                for value in values:
                    assignment[var] = int(value)
                    self._postprocess(
                        assignment, remaining, pending_dist, out,
                        stopwatch, limit,
                    )
                    del assignment[var]
                return
        for idx, clause in enumerate(pending_dist):
            x, y = resolve(clause.x), resolve(clause.y)
            if x is not None or y is not None:
                remaining = pending_dist[:idx] + pending_dist[idx + 1 :]
                anchor = x if x is not None else y
                var = clause.y if x is not None else clause.x
                values = self._db.distance_index.neighbors_within(
                    anchor, clause.d
                )
                for value in values:
                    assignment[var] = int(value)
                    self._postprocess(
                        assignment, pending_sim, remaining, out,
                        stopwatch, limit,
                    )
                    del assignment[var]
                return
        # Only sim clauses with both sides unresolved remain; they were
        # ruled out statically by _check_supported.
        raise QueryError(  # pragma: no cover - guarded statically
            "unreachable: disconnected similarity clause at runtime"
        )
