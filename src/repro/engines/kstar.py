"""The "k* best results" semantics sketched in Sec. 7 (future work).

Instead of fixing ``k`` in every similarity clause, the user asks for the
``k*`` best results; the system grows ``k`` until at least ``k*``
solutions exist (or the construction-time ``K`` is exhausted), then
reports the solutions at the *smallest* such ``k`` — so the answers
involve the most similar nodes possible.

The search doubles ``k`` and then binary-searches the minimal
sufficient value, evaluating with any of the Ring engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.model import ExtendedBGP, SimClause, Var
from repro.utils.errors import QueryError


@dataclass
class KStarResult:
    """Outcome of a k*-best evaluation."""

    k: int
    """Smallest k at which at least ``k_star`` solutions exist (or K)."""

    solutions: list[dict[Var, int]]
    """The solutions at that k."""

    satisfied: bool
    """Whether ``k_star`` solutions were actually reached."""

    evaluations: int
    """Number of query evaluations the search performed."""


def _with_k(query: ExtendedBGP, k: int) -> ExtendedBGP:
    """Copy of ``query`` with every similarity clause's k replaced."""
    return ExtendedBGP(
        list(query.triples),
        [SimClause(c.x, k, c.y, c.relation) for c in query.clauses],
        list(query.dist_clauses),
    )


def evaluate_k_star(
    engine: object,
    query: ExtendedBGP,
    k_star: int,
    max_k: int,
    timeout: float | None = None,
    trace: object | None = None,
) -> KStarResult:
    """Find the smallest ``k <= max_k`` yielding ``>= k_star`` solutions.

    Args:
        engine: any object with ``evaluate(query, timeout=...)`` (the
            Ring engines).
        query: template query; its clauses' ``k`` values are overridden.
        k_star: requested number of results.
        max_k: the construction-time ``K`` bound.
        timeout: per-evaluation time budget.
        trace: optional :class:`~repro.obs.trace.QueryTrace`. The search
            itself runs untraced (a single trace would smear counters
            across evaluations at different ``k``); the winning ``k`` is
            then re-evaluated once with the trace attached, and the
            search shape lands in ``trace.meta["kstar"]``.

    Returns:
        The minimal-k solutions, or the ``max_k`` solutions flagged
        ``satisfied=False`` when even ``K`` does not reach ``k_star``.
    """
    if not query.clauses:
        raise QueryError("k* semantics requires at least one <|_k clause")
    if k_star < 1:
        raise QueryError(f"k_star must be >= 1, got {k_star}")
    evaluations = 0

    def solutions_at(k: int) -> list[dict[Var, int]]:
        nonlocal evaluations
        evaluations += 1
        return engine.evaluate(_with_k(query, k), timeout=timeout).solutions

    def traced(result: KStarResult) -> KStarResult:
        if trace is None:
            return result
        nonlocal evaluations
        evaluations += 1
        engine.evaluate(
            _with_k(query, result.k), timeout=timeout, trace=trace
        )
        trace.meta["kstar"] = {
            "k": result.k,
            "k_star": k_star,
            "max_k": max_k,
            "satisfied": result.satisfied,
            "evaluations": evaluations,
        }
        return KStarResult(
            result.k, result.solutions, result.satisfied, evaluations
        )

    # Doubling phase: find some sufficient k.
    k = 1
    best: list[dict[Var, int]] | None = None
    while k <= max_k:
        sols = solutions_at(k)
        if len(sols) >= k_star:
            best = sols
            break
        k = min(k * 2, max_k) if k < max_k else max_k + 1
    if best is None:
        return traced(
            KStarResult(max_k, solutions_at(max_k), False, evaluations)
        )

    # Binary search the minimal sufficient k in (k/2, k].
    lo = max(1, (k // 2) + 1) if k > 1 else 1
    hi = k
    best_k = k
    while lo < hi:
        mid = (lo + hi) // 2
        sols = solutions_at(mid)
        if len(sols) >= k_star:
            best, best_k, hi = sols, mid, mid
        else:
            lo = mid + 1
    return traced(KStarResult(best_k, best, True, evaluations))
