"""Command-line interface.

Subcommands::

    repro generate  --out bench.npz [--entities N --images N --k K ...]
    repro build     --data bench.npz --out bench.idx
    repro query     --data bench.npz --query "(?x, 0, ?y) . knn(?x, ?y, 5)"
    repro explain   --data bench.npz --query "..." [--engine ring-knn --analyze]
    repro trace     --data bench.npz --query "..." [--engine auto --out t.json]
    repro serve-batch --data bench.npz --queries q.txt [--workers N --no-cache]
    repro serve     --from-index bench.idx [--port P --workers N --no-cache ...]
    repro cache     stats [--server http://host:port | --data ... --queries ...]
    repro figure2   --timeout 15 [--scale flags]
    repro figure3   [--dataset anuran|drybean --scale 0.12 --K 40]
    repro space     [--scale flags]
    repro bench     [--out BENCH.json --scale flags --baseline OLD.json]
    repro bench     --diff OLD.json NEW.json [--tolerance 0.2]
    repro lint      [paths...] [--format text|json|sarif --changed ...]

``generate`` writes an ``.npz`` bundle (see :mod:`repro.graph.io`);
``build`` indexes a bundle once and writes the persistent index file
(:mod:`repro.store`) that ``--from-index`` memory-maps back in with
zero deserialization. ``query``/``explain``/``trace`` read either a
bundle (``--data``) or a built index (``--from-index``). ``trace`` evaluates the query
under a :class:`~repro.obs.trace.QueryTrace` and emits the
schema-validated JSON document (:mod:`repro.obs.schema`) that
:mod:`repro.obs.diff` can compare across runs. The figure subcommands
regenerate the paper artifacts at a configurable scale and print the
tables.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.datasets.classification import make_anuran_like, make_drybean_like
from repro.datasets.wikimedia import WikimediaConfig, generate_benchmark
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.engines.auto import AutoEngine
from repro.engines.baseline import BaselineEngine
from repro.engines.classic import ClassicSixPermEngine
from repro.engines.database import GraphDatabase
from repro.engines.materialize import MaterializeEngine
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.experiments.figure2 import FIGURE2_HEADERS, figure2_rows, run_figure2
from repro.experiments.figure3 import FIGURE3_HEADERS, figure3_rows, run_figure3
from repro.experiments.report import format_table
from repro.experiments.space import SPACE_HEADERS, run_space_comparison
from repro.graph.io import load_bundle, save_bundle
from repro.explain import explain
from repro.obs import QueryTrace, validate_trace
from repro.query.parser import parse_query

ENGINES = {
    "auto": AutoEngine,
    "ring-knn": RingKnnEngine,
    "ring-knn-s": RingKnnSEngine,
    "parallel-knn": ParallelRingKnnEngine,
    "baseline": BaselineEngine,
    "materialize": MaterializeEngine,
    "sixperm-knn": ClassicSixPermEngine,
}


def _make_engine(name: str, db: GraphDatabase, workers: int = 1):
    """Instantiate an engine, threading ``--workers`` where it applies."""
    if name == "parallel-knn":
        return ParallelRingKnnEngine(db, workers=max(2, workers))
    if name == "auto" and workers >= 2:
        return AutoEngine(db, workers=workers)
    return ENGINES[name](db)


def _add_scale_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--entities", type=int, default=600)
    parser.add_argument("--images", type=int, default=250)
    parser.add_argument("--misc-triples", type=int, default=4000)
    parser.add_argument("--K", type=int, default=16, dest="big_k")
    parser.add_argument("--seed", type=int, default=7)


def _benchmark_from_args(args: argparse.Namespace):
    return generate_benchmark(
        WikimediaConfig(
            n_entities=args.entities,
            n_images=args.images,
            n_misc_triples=args.misc_triples,
            K=args.big_k,
            seed=args.seed,
        )
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    bench = _benchmark_from_args(args)
    save_bundle(args.out, bench.graph, bench.knn_graph, bench.points)
    print(
        f"wrote {args.out}: {bench.graph.num_edges} triples, "
        f"{bench.knn_graph.num_members} K-NN members (K={bench.knn_graph.K})"
    )
    return 0


def _load_db(path: str) -> GraphDatabase:
    graph, knn_graph, _points = load_bundle(path)
    return GraphDatabase(graph, knn_graph)


# Engines that need the raw graph/K-NN tables, which a persistent index
# deliberately does not carry (it holds the succinct structures only).
_GRAPH_REQUIRED = {"baseline", "materialize", "sixperm-knn"}


def _db_from_args(args: argparse.Namespace) -> GraphDatabase:
    """Open the database from ``--data`` (build) or ``--from-index`` (mmap).

    OS-level open failures are re-raised as typed
    :class:`~repro.utils.errors.ValidationError` so ``main`` turns them
    into a message and a nonzero exit, not a traceback. Structurally
    bad index files already raise the typed ``Store*`` family from
    :mod:`repro.store`.
    """
    from repro.utils.errors import ValidationError

    from_index = getattr(args, "from_index", None)
    if not from_index:
        try:
            return _load_db(args.data)
        except OSError as exc:
            raise ValidationError(
                f"cannot read data bundle {args.data!r}: {exc}"
            ) from exc
    # Reject graph-requiring engines before mapping the file: the check
    # is static, and bailing afterwards would strand the open mapping.
    engine = getattr(args, "engine", None)
    if engine in _GRAPH_REQUIRED:
        raise ValidationError(
            f"engine {engine!r} needs the raw graph tables, which a "
            "persistent index does not carry; use --data, or one of the "
            "Ring engines (ring-knn, ring-knn-s, parallel-knn, auto)"
        )
    try:
        return GraphDatabase.from_index(from_index, verify=not args.no_verify)
    except OSError as exc:
        raise ValidationError(
            f"cannot open index file {from_index!r}: {exc}"
        ) from exc


def _add_source_flags(p: argparse.ArgumentParser) -> None:
    """``--data`` / ``--from-index``: exactly one input source."""
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--data", help=".npz bundle (indexed on load)")
    group.add_argument(
        "--from-index",
        help="persistent index file from 'repro build' (mmap, instant load)",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the --from-index payload checksum for the fastest "
        "possible cold start",
    )


def _cmd_build(args: argparse.Namespace) -> int:
    import time as _time

    from repro.store import save

    t0 = _time.perf_counter()
    db = _load_db(args.data)
    t1 = _time.perf_counter()
    nbytes = save(db, args.out)
    t2 = _time.perf_counter()
    print(
        f"wrote {args.out}: {nbytes} bytes "
        f"(index build {t1 - t0:.3f}s, serialize {t2 - t1:.3f}s)"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _db_from_args(args)
    try:
        query = parse_query(args.query)
        engine = _make_engine(args.engine, db, workers=args.workers)
        result = engine.evaluate(
            query, timeout=args.timeout, limit=args.limit
        )
        for solution in result.solutions[: args.print_limit]:
            print(
                "  " + ", ".join(
                    f"?{v.name}={c}" for v, c in sorted(
                        solution.items(), key=lambda item: item[0].name
                    )
                )
            )
        shown = min(len(result.solutions), args.print_limit)
        if shown < len(result.solutions):
            print(f"  ... ({len(result.solutions) - shown} more)")
        flag = " (TIMED OUT)" if result.timed_out else ""
        print(
            f"{len(result.solutions)} solutions in {result.elapsed:.3f}s "
            f"via {engine.name}{flag}"
        )
        return 0
    finally:
        # A per-invocation database owns its pools and (for
        # --from-index) the file mapping; release both even on error.
        db.close()


def _cmd_explain(args: argparse.Namespace) -> int:
    cache = None
    if args.analyze and args.cache:
        from repro.cache import QueryCache

        cache = QueryCache()
    db = _db_from_args(args)
    try:
        query = parse_query(args.query)
        report = explain(
            db,
            query,
            engine=args.engine,
            analyze=args.analyze,
            timeout=args.timeout,
            workers=args.workers,
            cache=cache,
        )
        print(report.format())
        return 0
    finally:
        db.close()


def _read_query_file(path: str) -> tuple[list[str], list]:
    """Parse a one-query-per-line file (``#`` comments allowed).

    Returns ``(texts, queries)``; raises typed errors naming the
    offending line so ``main`` renders them without a traceback.
    """
    from repro.utils.errors import QueryError, ValidationError

    try:
        with open(path, encoding="utf-8") as handle:
            texts = [
                line.strip()
                for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            ]
    except OSError as exc:
        raise ValidationError(
            f"cannot read query file {path!r}: {exc}"
        ) from exc
    queries = []
    for number, text in enumerate(texts, start=1):
        try:
            queries.append(parse_query(text))
        except (QueryError, ValidationError) as exc:
            raise QueryError(
                f"{path}: malformed query on non-comment "
                f"line {number}: {text!r}: {exc}"
            ) from exc
    return texts, queries


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.parallel.scheduler import QueryScheduler

    cache = None
    if args.cache:
        from repro.cache import QueryCache

        cache = QueryCache()
    db = _db_from_args(args)
    try:
        texts, queries = _read_query_file(args.queries)
        scheduler = QueryScheduler(
            db,
            workers=args.workers,
            parallel_threshold=args.parallel_threshold,
            cache=cache,
        )
        try:
            plans = [
                scheduler.classify(query, index)
                for index, query in enumerate(queries)
            ]
            results = scheduler.run_batch(
                queries, timeout=args.timeout, limit=args.limit
            )
        finally:
            # Always unlink the shared-memory segments the pool
            # published, even when a worker raised mid-batch.
            scheduler.close()
        for text, plan, result in zip(texts, plans, results):
            flag = " (TIMED OUT)" if result.timed_out else ""
            print(
                f"[{plan.index}] {len(result.solutions)} solutions in "
                f"{result.elapsed:.3f}s via {result.engine} "
                f"[{plan.route}: {plan.reason}]{flag}"
            )
            if args.verbose:
                print(f"      {text}")
        total = sum(len(result.solutions) for result in results)
        print(
            f"{len(results)} queries, {total} solutions "
            f"({args.workers} workers)"
        )
        if cache is not None:
            stats = cache.stats()
            print(
                f"cache: {stats['hits']} hits, {stats['misses']} misses, "
                f"{stats['fills']} fills, {stats['bytes']} bytes"
            )
        return 0
    finally:
        db.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_server

    db = _db_from_args(args)
    overrides = {}
    if args.cache_bytes is not None:
        overrides["cache_bytes"] = args.cache_bytes
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        capacity=args.capacity,
        parallel_threshold=args.parallel_threshold,
        default_timeout=args.timeout,
        drain_grace=args.drain_grace,
        debug_faults=args.debug_faults,
        cache=args.cache,
        **overrides,
    )
    try:
        return run_server(db, config)
    finally:
        db.close()


def _cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache stats``: scrape a server or replay a workload."""
    from repro.utils.errors import ValidationError

    if args.server:
        from urllib.request import urlopen

        url = args.server.rstrip("/") + "/metrics?format=json"
        try:
            with urlopen(url, timeout=args.timeout) as response:
                document = json.loads(response.read().decode("utf-8"))
        except OSError as exc:
            raise ValidationError(
                f"cannot scrape {url!r}: {exc}"
            ) from exc
        stats = document.get("cache")
        if stats is None:
            print(
                "repro cache: the server runs without a cache "
                "(started with --no-cache)",
                file=sys.stderr,
            )
            return 1
    else:
        if not (args.data or args.from_index) or not args.queries:
            raise ValidationError(
                "repro cache stats needs --server URL, or a database "
                "(--data/--from-index) plus --queries to replay locally"
            )
        from repro.cache import QueryCache
        from repro.parallel.scheduler import QueryScheduler

        db = _db_from_args(args)
        try:
            _texts, queries = _read_query_file(args.queries)
            cache = QueryCache()
            scheduler = QueryScheduler(
                db,
                workers=args.workers,
                parallel_threshold=args.parallel_threshold,
                cache=cache,
            )
            try:
                for _ in range(max(1, args.repeat)):
                    scheduler.run_batch(queries, timeout=args.timeout)
            finally:
                scheduler.close()
            stats = dict(cache.stats())
        finally:
            db.close()
    probes = stats.get("hits", 0) + stats.get("misses", 0)
    stats["hit_rate"] = (
        round(stats.get("hits", 0) / probes, 4) if probes else 0.0
    )
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    db = _db_from_args(args)
    try:
        query = parse_query(args.query)
        engine = _make_engine(args.engine, db, workers=args.workers)
        trace = QueryTrace(query=args.query)
        engine.evaluate(
            query, timeout=args.timeout, limit=args.limit, trace=trace
        )
        document = trace.to_dict()
        validate_trace(document)
        text = json.dumps(document, indent=args.indent, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0
    finally:
        db.close()


def _cmd_figure2(args: argparse.Namespace) -> int:
    bench = _benchmark_from_args(args)
    db = GraphDatabase(bench.graph, bench.knn_graph)
    workload = generate_workload(
        bench,
        WorkloadConfig(
            k=args.k,
            n_q1=args.queries,
            n_q2=max(1, args.queries // 2),
            n_q3=args.queries,
            n_q4=max(1, args.queries // 2),
            n_q5=args.queries,
            seed=2,
        ),
    )
    engines = [BaselineEngine(db), RingKnnEngine(db), RingKnnSEngine(db)]
    results = run_figure2(db, workload, engines, timeout=args.timeout)
    print(
        format_table(
            FIGURE2_HEADERS,
            figure2_rows(results),
            title="Figure 2: query time distribution per family (seconds)",
        )
    )
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    maker = {"anuran": make_anuran_like, "drybean": make_drybean_like}[
        args.dataset
    ]
    points, labels = maker(seed=10, scale=args.scale)
    rows = run_figure3(
        points, labels, K=args.knn_k, ks=list(range(5, args.knn_k + 1, 5))
    )
    print(
        format_table(
            FIGURE3_HEADERS,
            figure3_rows(rows),
            title=f"Figure 3 ({args.dataset}-like): average Precision@k",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time as _time

    from repro.bench.harness import (
        BenchConfig,
        default_filename,
        diff_bench,
        format_diff,
        load_bench,
        run_bench,
        write_bench,
    )

    if args.diff:
        before = load_bench(args.diff[0])
        after = load_bench(args.diff[1])
        diff = diff_bench(
            before,
            after,
            tolerance=args.tolerance,
            use_calibration=not args.no_calibration,
            min_seconds=args.min_seconds,
        )
        print(format_diff(diff, args.tolerance))
        return 0 if diff.ok else 1

    parallel_workers: tuple[int, ...] = ()
    if not args.no_parallel:
        parallel_workers = tuple(
            int(w) for w in args.parallel_workers.split(",") if w.strip()
        )
    config = BenchConfig(
        entities=args.entities,
        images=args.images,
        misc_triples=args.misc_triples,
        big_k=args.big_k,
        seed=args.seed,
        k=args.k,
        queries=args.queries,
        timeout=args.timeout,
        engines=tuple(args.engines.split(",")),
        micro=not args.no_micro,
        parallel_workers=parallel_workers,
        store=not args.no_store,
        cache=args.cache,
        label=args.label,
    )
    date = _time.strftime("%Y-%m-%d")
    doc = run_bench(config, date=date)
    out = args.out or default_filename(date)
    write_bench(doc, out)
    totals = doc["totals"]
    print(
        f"wrote {out}: figure2 {totals['figure2_wall_s']:.2f}s, "
        f"micro {totals['micro_wall_s']:.2f}s, "
        f"{totals['wavelet_ops']} wavelet ops"
    )
    store = doc.get("store") or {}
    if store:
        print(
            "store: load-to-first-query "
            f"{store['load_first_query']['total_s'] * 1e3:.1f}ms vs build "
            f"{store['build_first_query']['total_s'] * 1e3:.1f}ms "
            f"({store['load_first_query']['speedup_vs_build']:.0f}x), "
            "mapped steady-state "
            f"{store['mapped_steady']['parity_vs_built']:.2f}x of built"
        )
    cache = doc.get("cache") or {}
    if cache:
        warm = cache["warm"]
        print(
            f"cache: warm pass {warm['speedup_vs_cold']:.1f}x faster "
            f"than cold, hit rate {warm['hit_rate']:.0%} "
            f"({warm['hits']}/{warm['queries']} warm hits)"
        )
    if args.baseline:
        baseline = load_bench(args.baseline)
        diff = diff_bench(
            baseline,
            doc,
            tolerance=args.tolerance,
            use_calibration=not args.no_calibration,
            min_seconds=args.min_seconds,
        )
        print(format_diff(diff, args.tolerance))
        return 0 if diff.ok else 1
    return 0


def _changed_python_files() -> list[str] | None:
    """Repo-relative ``.py`` paths that differ from ``HEAD``.

    Staged, unstaged and untracked files all count — the pre-commit
    path lints what is about to land, not what already did. Returns
    ``None`` when git is unavailable or the cwd is not a work tree.
    """
    import subprocess
    from pathlib import Path

    def git(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True
        ).stdout

    try:
        top = Path(git("rev-parse", "--show-toplevel").strip())
        listed = set(git("diff", "--name-only", "HEAD").splitlines())
        listed |= set(
            git("ls-files", "--others", "--exclude-standard").splitlines()
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return [
        str(top / rel)
        for rel in sorted(listed)
        if rel.endswith(".py") and (top / rel).is_file()
    ]


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        Project,
        format_findings,
        format_json,
        format_sarif,
        get_rules,
        lint,
        rule_catalog,
    )

    if args.list_rules:
        for code, name, summary in rule_catalog():
            print(f"{code}  {name:<20} {summary}")
        return 0

    paths = args.paths
    if args.changed:
        changed = _changed_python_files()
        if changed is None:
            print(
                "repro lint: --changed requires git and a work tree",
                file=sys.stderr,
            )
            return 2
        paths = changed
    elif not paths:
        # Default target: the installed repro package itself.
        paths = [str(Path(__file__).resolve().parent)]
    try:
        rules = get_rules(args.rules.split(",") if args.rules else None)
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    fmt = "sarif" if args.sarif else args.format
    result = lint(Project.from_paths(paths), rules)
    if fmt == "json":
        print(format_json(result))
    elif fmt == "sarif":
        print(format_sarif(result))
    else:
        print(format_findings(result, verbose=args.verbose))
    return 0 if result.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graph.stats import STATS_HEADERS, compute_graph_stats

    graph, knn_graph, _points = load_bundle(args.data)
    stats = compute_graph_stats(graph)
    print(format_table(STATS_HEADERS, stats.rows(), title="graph statistics"))
    if knn_graph is not None:
        print(
            f"K-NN graph: {knn_graph.num_members} members, K={knn_graph.K}"
            + (", truncated rows" if knn_graph.is_truncated else "")
        )
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    bench = _benchmark_from_args(args)
    db = GraphDatabase(bench.graph, bench.knn_graph)
    report = run_space_comparison(db)
    print(
        format_table(
            SPACE_HEADERS,
            report.rows(),
            title="Sec 6.2: index space",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worst-case-optimal similarity joins on graph databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a benchmark bundle")
    _add_scale_flags(p)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser(
        "build",
        help="index a bundle and write a persistent index file",
    )
    p.add_argument("--data", required=True, help=".npz bundle")
    p.add_argument("--out", required=True, help="index file path")
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("query", help="evaluate an extended BGP")
    _add_source_flags(p)
    p.add_argument("--query", required=True)
    p.add_argument("--engine", choices=sorted(ENGINES), default="ring-knn")
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--print-limit", type=int, default=20)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker pool size for parallel-knn (and auto with >= 2)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("explain", help="explain a query plan")
    _add_source_flags(p)
    p.add_argument("--query", required=True)
    p.add_argument(
        "--engine",
        choices=["ring-knn", "ring-knn-s", "parallel-knn"],
        default="ring-knn",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool size of the parallel-knn analyze run",
    )
    p.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute the query and report the "
        "observed leap/intersection/binding counters and phase timings",
    )
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="probe/fill a cross-query cache during --analyze and "
        "render the outcome (hit/miss/inadmissible + signature)",
    )
    p.add_argument("--timeout", type=float, default=60.0)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "trace", help="evaluate a query and emit its JSON trace"
    )
    _add_source_flags(p)
    p.add_argument("--query", required=True)
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto")
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--out", default=None, help="write JSON here (else stdout)")
    p.add_argument("--indent", type=int, default=2)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker pool size for parallel-knn (and auto with >= 2)",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "serve-batch",
        help="schedule a batch of queries over one worker pool",
    )
    _add_source_flags(p)
    p.add_argument(
        "--queries",
        required=True,
        help="text file, one query per line ('#' comments allowed)",
    )
    p.add_argument("--workers", type=int, default=2)
    p.add_argument(
        "--parallel-threshold",
        type=int,
        default=256,
        help="first-level estimate above which a query is domain-sharded",
    )
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share a cross-query result cache across the batch "
        "(repeated/renamed queries answer from it)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="echo each query text"
    )
    p.set_defaults(func=_cmd_serve_batch)

    p = sub.add_parser(
        "serve",
        help="run the long-running HTTP query server",
    )
    _add_source_flags(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="0 binds an ephemeral port (printed on the ready line)",
    )
    p.add_argument("--workers", type=int, default=2)
    p.add_argument(
        "--capacity",
        type=int,
        default=16,
        help="admission window; beyond it queries shed with 429",
    )
    p.add_argument(
        "--parallel-threshold",
        type=int,
        default=256,
        help="first-level estimate above which a query is domain-sharded",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="default per-query deadline (seconds, end-to-end)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        help="seconds a SIGTERM drain waits for in-flight queries",
    )
    p.add_argument(
        "--debug-faults",
        action="store_true",
        help="allow the 'debug' request field (fault-injection tests)",
    )
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share a cross-query result cache between all routes "
        "(per-request 'cached' field, /metrics counters)",
    )
    p.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="byte budget of the cache's packed solution matrices "
        "(default 32 MiB)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "cache",
        help="inspect the cross-query cache (see docs/caching.md)",
    )
    p.add_argument(
        "action",
        choices=["stats"],
        help="'stats' prints hit/miss/fill/eviction counters as JSON",
    )
    p.add_argument(
        "--server",
        default=None,
        help="scrape a running 'repro serve' (http://host:port); "
        "otherwise replay --queries locally against --data/--from-index",
    )
    group = p.add_mutually_exclusive_group(required=False)
    group.add_argument("--data", help=".npz bundle (indexed on load)")
    group.add_argument(
        "--from-index",
        help="persistent index file from 'repro build' (mmap)",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the --from-index payload checksum",
    )
    p.add_argument(
        "--queries",
        default=None,
        help="text file, one query per line ('#' comments allowed)",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="times to replay the workload (>= 2 exercises warm hits)",
    )
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--parallel-threshold",
        type=int,
        default=256,
        help="first-level estimate above which a query is domain-sharded",
    )
    p.add_argument("--timeout", type=float, default=60.0)
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("figure2", help="regenerate Figure 2")
    _add_scale_flags(p)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--queries", type=int, default=4)
    p.add_argument("--timeout", type=float, default=15.0)
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser("figure3", help="regenerate one Figure 3 panel")
    p.add_argument(
        "--dataset", choices=["anuran", "drybean"], default="anuran"
    )
    p.add_argument("--scale", type=float, default=0.12)
    p.add_argument("--K", type=int, default=40, dest="knn_k")
    p.set_defaults(func=_cmd_figure3)

    p = sub.add_parser(
        "bench",
        help="run the benchmark-regression harness (or diff two results)",
    )
    _add_scale_flags(p)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--queries", type=int, default=4)
    p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-query budget of the timed pass (the traced op-count "
        "pass always runs to completion for determinism)",
    )
    p.add_argument(
        "--engines",
        default="baseline,ring-knn,ring-knn-s",
        help="comma-separated engine subset",
    )
    p.add_argument("--no-micro", action="store_true")
    p.add_argument(
        "--no-store",
        action="store_true",
        help="skip the persistent-index build-vs-load cold-start section",
    )
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run (default) or skip (--no-cache) the cross-query cache "
        "cold/fill/warm section",
    )
    p.add_argument(
        "--parallel-workers",
        default="1,2,4",
        help="comma-separated pool sizes of the parallel scaling curve",
    )
    p.add_argument(
        "--no-parallel",
        action="store_true",
        help="skip the parallel scaling pass",
    )
    p.add_argument("--label", default="", help="free-form run label")
    p.add_argument(
        "--out", default=None, help="output path (default BENCH_<date>.json)"
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="after running, diff against this BENCH_*.json and exit "
        "non-zero on regression",
    )
    p.add_argument(
        "--diff",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="compare two existing BENCH_*.json files instead of running",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed relative wall-time regression (default 0.2 = 20%%)",
    )
    p.add_argument(
        "--no-calibration",
        action="store_true",
        help="skip cross-machine wall-time normalization when diffing",
    )
    p.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="absolute noise floor: a wall-time entry only counts as a "
        "regression when it also exceeds the baseline by this many "
        "seconds (default 0.05)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "lint",
        help="run the reprolint invariant checks (RPL001-RPL010)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    p.add_argument("--format", choices=["text", "json", "sarif"], default="text")
    p.add_argument(
        "--sarif",
        action="store_true",
        help="shorthand for --format sarif (GitHub code-scanning upload)",
    )
    p.add_argument(
        "--changed",
        action="store_true",
        help="lint only .py files that differ from git HEAD (staged, "
        "unstaged or untracked) — the pre-commit fast path; exits 0 "
        "when nothing changed, 2 when git is unavailable",
    )
    p.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset, e.g. RPL001,RPL003",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="also show suppressed findings with their justifications",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("stats", help="describe a data bundle")
    p.add_argument("--data", required=True)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("space", help="regenerate the space comparison")
    _add_scale_flags(p)
    p.set_defaults(func=_cmd_space)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library-originated failures (:class:`~repro.utils.errors.ReproError`
    — malformed queries, missing/corrupt inputs, store format errors)
    become a typed one-line message on stderr and exit code 2, never a
    traceback. Genuine bugs still propagate.
    """
    from repro.utils.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro {args.command}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
