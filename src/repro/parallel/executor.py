"""Domain-sharded parallel LTJ execution over a multiprocessing pool.

The decomposition (Mhedhbi & Salihoglu, VLDB 2019; the LogicBlox
"old dog" line): LTJ's search tree is embarrassingly parallel at the
first variable. The parent process replays the serial engine's depth-0
work verbatim — ordering choice, full leapfrog intersection of the first
variable — then splits the candidate list into contiguous shards and
hands each to a pool worker, which binds its candidates and searches
depth >= 1 with the identical compile order and ordering strategy.
Merging shard solution streams *in shard order* reproduces the serial
solution list byte for byte, and summing shard counters with the
parent's reproduces the serial stats and trace op counts for any pool
size (see :mod:`repro.obs.merge` for the invariance argument).

Transport is zero-copy (:mod:`repro.parallel.shm`): when a pool starts,
the database's succinct structures are flattened once into a shared
segment that workers attach; tasks carry ``(segment, start, stop)``
candidate spans through a reusable scratch segment; results come back
as packed int64 matrices, streamed in fixed-size chunks through a
queue when large. Nothing per-dispatch scales with the index size.

Pools are cached per (database, pool size): the cache holds a strong
reference to the database (so the id-based key can never alias a
collected object) and each pool owns its shared segments, unlinking
them on ``close`` — including the error path where a worker raised
mid-shard (the pool survives a task exception; the segments are only
torn down with the pool itself).

Known, documented divergences from the serial engine:

* under a ``timeout``, partial results may differ (shards poll their
  own budgets);
* under a ``limit``, the returned solutions are identical but the
  stats may over-count (shards cap at ``limit`` each, the serial
  engine stops globally).

Full enumerations — the differential/equivalence suites, the forced
CI smoke mode — are byte-identical.
"""

from __future__ import annotations

import atexit
import multiprocessing
import queue as queue_mod
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.ltj.engine import FirstLevelPlan, LTJEngine
from repro.ltj.stats import EvaluationStats
from repro.obs.merge import merge_shard_traces
from repro.obs.trace import (
    attach_wavelets,
    instrument_relations,
    wavelet_targets,
)
from repro.parallel import forced
from repro.parallel.shm import ScratchBuffer, StructureShm
from repro.parallel.worker import (
    QueryBatchTask,
    QueryOutcome,
    ShardOutcome,
    ShardTask,
    _init_worker,
    run_query_batch,
    run_shard,
    unpack_solutions,
)
from repro.query.model import ExtendedBGP, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.database import GraphDatabase

#: Default pool size of the parallel engine and the scheduler.
DEFAULT_WORKERS = 2

#: Contiguous shards handed out per worker. Finer than the pool size for
#: load balancing; any split yields the same merged results/counters.
SHARDS_PER_WORKER = 2

#: Seconds to wait for an announced-but-missing streamed chunk before
#: declaring the pool wedged. Generous: chunks are announced only after
#: they were put on the queue, so this only fires on a dead worker.
CHUNK_TIMEOUT = 120.0


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------
class WorkerPool:
    """A lazily started multiprocessing pool bound to one database.

    Starting the pool flattens the database into a shared-memory
    segment (:class:`StructureShm`); workers attach it in their
    initializer, so the per-dispatch payload is a descriptor, never an
    index. The pool also owns the scratch segment candidate spans are
    published through and the queue large results stream back on — all
    three are torn down together in :meth:`close`.
    """

    def __init__(self, db: "GraphDatabase", workers: int) -> None:
        self._db = db  # strong ref: pins id(db) while the pool is cached
        self.workers = max(2, int(workers))
        self.start_method = "unstarted"
        self._pool: Any = None
        self._shm: StructureShm | None = None
        self._manifest: Any = None
        self._scratch: ScratchBuffer | None = None
        self._chunks: Any = None
        self._chunk_buf: dict[int, dict[int, np.ndarray]] = {}
        self._uid = 0

    def next_uid(self) -> int:
        """Pool-unique task id (correlates streamed chunks to tasks)."""
        self._uid += 1
        return self._uid

    def _start(self) -> Any:
        if self._pool is None:
            method = forced.forced_start_method()
            if method is None:
                try:
                    multiprocessing.get_context("fork")
                    method = "fork"
                except ValueError:  # pragma: no cover - non-fork platforms
                    method = "spawn"
            ctx = multiprocessing.get_context(method)
            self.start_method = method
            store = getattr(self._db, "_store", None)
            if store is not None:
                # Store-backed database: workers attach the persistent
                # file's mapping directly — no flatten, no shared
                # segment, pool warm-up is near-free.
                self._manifest = store.worker_manifest()
            else:
                self._shm = StructureShm.create(self._db)
                self._manifest = self._shm.manifest
            self._scratch = ScratchBuffer()
            self._chunks = ctx.Queue()
            self._pool = ctx.Pool(
                self.workers,
                initializer=_init_worker,
                initargs=(self._manifest, self._chunks),
            )
        return self._pool

    def warmup(self) -> None:
        """Start the pool and wait until every worker has attached."""
        pool = self._start()
        # A no-op barrier: one trivial task per worker forces all the
        # initializers (segment attach included) to finish.
        pool.map(_noop, range(self.workers), chunksize=1)

    def publish_candidates(self, candidates: Sequence[int]) -> str:
        """Publish a candidate list to the scratch segment; returns the
        segment name tasks should carry in their spans."""
        self._start()
        assert self._scratch is not None
        name, _n = self._scratch.publish(candidates)
        return name

    def map_shards(self, tasks: Sequence[ShardTask]) -> list[ShardOutcome]:
        """Run shard tasks, returning outcomes in task (shard) order."""
        pool = self._start()
        try:
            outcomes = list(pool.map(run_shard, tasks, chunksize=1))
        except Exception:
            self._drop_pending_chunks()
            raise
        self.reconcile(outcomes)
        return outcomes

    def submit_batch(self, batch: QueryBatchTask) -> Any:
        """Submit one whole-query batch; returns an ``AsyncResult``
        whose ``get()`` yields ``list[QueryOutcome]``."""
        pool = self._start()
        return pool.apply_async(run_query_batch, (batch,))

    def run_fault_probe(self) -> None:
        """Raise a RuntimeError from inside a real pool worker.

        Exercises the task-exception path end to end — the exception
        crosses the process boundary and re-raises here, while the pool
        itself survives (see the class docstring) and keeps serving.
        The query server's fault battery uses this to prove a crashed
        worker yields one failed request, not a poisoned pool. A
        genuine ``SIGKILL`` of a pool worker would wedge ``get()``
        instead, which is why injection happens as a raising task.
        """
        pool = self._start()
        pool.apply(_injected_worker_fault)

    def reconcile(
        self, outcomes: Sequence[ShardOutcome | QueryOutcome]
    ) -> None:
        """Fill in ``packed`` for outcomes whose solutions streamed back
        through the chunk queue rather than the result pipe."""
        needed = {
            outcome.uid: outcome
            for outcome in outcomes
            if outcome.packed is None and outcome.n_chunks > 0
        }
        while needed:
            done = [
                uid
                for uid, outcome in needed.items()
                if len(self._chunk_buf.get(uid, {})) == outcome.n_chunks
            ]
            for uid in done:
                outcome = needed.pop(uid)
                parts = self._chunk_buf.pop(uid)
                outcome.packed = np.concatenate(
                    [parts[seq] for seq in range(outcome.n_chunks)]
                )
            if not needed:
                break
            try:
                uid, seq, chunk = self._chunks.get(timeout=CHUNK_TIMEOUT)
            except queue_mod.Empty:  # pragma: no cover - dead worker
                raise RuntimeError(
                    "worker pool stopped streaming announced chunks"
                ) from None
            self._chunk_buf.setdefault(uid, {})[seq] = chunk

    def _drop_pending_chunks(self) -> None:
        """Best-effort drain after a task exception, so chunks from
        sibling shards of the failed dispatch cannot satisfy a later
        reconcile by uid collision (uids are unique, so dropping is
        purely hygiene — it bounds the buffer)."""
        self._chunk_buf.clear()
        if self._chunks is None:
            return
        while True:
            try:
                self._chunks.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break

    def close(self) -> None:
        """Tear down the pool and unlink every owned shared segment."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._chunks is not None:
            self._chunks.close()
            self._chunks = None
        self._chunk_buf.clear()
        if self._scratch is not None:
            self._scratch.close()
            self._scratch = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        self._manifest = None
        self.start_method = "unstarted"


def _noop(_: int) -> None:
    """Warmup barrier task (must be a module-level picklable)."""
    return None


def _injected_worker_fault() -> None:
    """Deliberately failing task of :meth:`WorkerPool.run_fault_probe`."""
    raise RuntimeError("injected worker fault (repro.serve debug probe)")


_POOLS: "OrderedDict[tuple[int, int], WorkerPool]" = OrderedDict()

#: Cached pools (each holds ``workers`` processes). Small LRU so runs
#: that churn through many databases (forced-mode test suites) do not
#: accumulate processes or shared segments.
_MAX_POOLS = 4


def pool_for(db: "GraphDatabase", workers: int) -> WorkerPool:
    """Get-or-create the cached pool for ``(db, workers)``."""
    key = (id(db), workers)
    pool = _POOLS.get(key)
    if pool is None:
        pool = WorkerPool(db, workers)
        _POOLS[key] = pool
        while len(_POOLS) > _MAX_POOLS:
            _key, evicted = _POOLS.popitem(last=False)
            evicted.close()
    else:
        _POOLS.move_to_end(key)
    return pool


def close_pools_for(db: "GraphDatabase") -> None:
    """Close (and unlink the segments of) every pool bound to ``db``."""
    for key in [k for k in _POOLS if k[0] == id(db)]:
        _POOLS.pop(key).close()


def shutdown_pools() -> None:
    """Close every cached pool (atexit hook; also handy in tests)."""
    while _POOLS:
        _key, pool = _POOLS.popitem(last=False)
        pool.close()


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# sharded evaluation
# ----------------------------------------------------------------------
@dataclass
class ParallelOutcome:
    """Merged outcome of a domain-sharded evaluation."""

    solutions: list[dict[Var, int]]
    stats: EvaluationStats
    meta: dict[str, Any] = field(default_factory=dict)
    """Execution shape: workers, start method, per-shard breakdown."""


def _bounds(n: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ``(start, stop)`` slices of ``range(n)``."""
    base, extra = divmod(n, n_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _finalize(
    solutions: list[dict[Var, int]],
    project: list | None,
    distinct: bool,
    limit: int | None,
) -> list[dict[Var, int]]:
    """Apply projection/dedup/limit exactly as the serial engines do.

    Mirrors ``_RingEngineBase._collect``: without ``project and
    distinct`` the serial engine caps the *raw* enumeration at ``limit``
    (so dedup may return fewer); with both, it dedups the full stream
    and truncates after. Replicating that shape keeps the parallel
    output byte-identical.
    """
    if limit is not None and not (project and distinct):
        solutions = solutions[:limit]
    if not project and not distinct:
        return solutions
    out: list[dict[Var, int]] = []
    seen: set[tuple] = set()
    for solution in solutions:
        if project:
            solution = {v: solution[v] for v in project}
        if distinct:
            key = tuple(sorted((v.name, c) for v, c in solution.items()))
            if key in seen:
                continue
            seen.add(key)
        out.append(solution)
        if limit is not None and len(out) >= limit:
            break
    return out


def evaluate_parallel(
    driver,
    query: ExtendedBGP,
    *,
    workers: int = DEFAULT_WORKERS,
    timeout: float | None = None,
    limit: int | None = None,
    project: list | None = None,
    distinct: bool = False,
    trace=None,
    shards_per_worker: int = SHARDS_PER_WORKER,
    subplan_cache=None,
) -> ParallelOutcome | None:
    """Evaluate ``query`` domain-sharded, using ``driver``'s compile
    order and ordering strategy (``driver`` is a serial Ring engine).

    Returns ``None`` when the query cannot be sharded — it has no
    variables — in which case the caller should evaluate serially.
    The caller owns the trace's ``engine``/``query`` labels; this
    function records counters, shard metadata (``meta["parallel"]``)
    and finalizes the trace from the merged stats.

    ``subplan_cache`` is an optional :class:`repro.cache.QueryCache`
    whose first-level table short-circuits the leading-variable
    leapfrog intersection on repeat shapes; a hit replays the cached
    candidates *and* the leapfrog counter deltas the computation would
    have produced, so merged stats stay byte-identical to a cold run.
    Only untraced runs use it — traced runs must surface real per-op
    counters.
    """
    db = driver._db
    relations = driver.compile(query)
    engine = LTJEngine(
        relations,
        ordering=driver._ordering(query),
        timeout=timeout,
        trace=trace,
    )
    if not engine.variables:
        return None
    started = time.perf_counter()
    if trace is None:
        attached = nullcontext()
    else:
        if trace.query is None:
            trace.query = repr(query)
        instrument_relations(trace, relations)
        attached = attach_wavelets(wavelet_targets(trace, db, query))
    first_level_hit = None
    if subplan_cache is not None and trace is None:
        first_level_hit = subplan_cache.first_level_probe(
            db, query, driver.name
        )
    if first_level_hit is not None:
        # Replay the cached subplan: the fresh engine's stats carry the
        # structural fields (sim_variables) from construction; the
        # counters and descent entry below are exactly what
        # ``first_level()`` would have added.
        parent = engine.stats
        parent.attempts = first_level_hit.attempts
        parent.leap_calls = first_level_hit.leap_calls
        parent.first_descent_order.append(first_level_hit.variable)
        plan = FirstLevelPlan(
            first_level_hit.variable, first_level_hit.candidates
        )
    else:
        with attached:
            plan = engine.first_level()
        parent = engine.stats
        if (
            subplan_cache is not None
            and trace is None
            and plan.variable is not None
            and not parent.timed_out
        ):
            subplan_cache.first_level_fill(
                db,
                query,
                driver.name,
                plan.variable,
                plan.candidates,
                attempts=parent.attempts,
                leap_calls=parent.leap_calls,
            )

    bounds: list[tuple[int, int]] = []
    outcomes: list[ShardOutcome] = []
    mode = "empty"
    engine_limit = None if (project and distinct) else limit
    if plan.variable is not None and plan.candidates and not parent.timed_out:
        n_shards = min(
            len(plan.candidates), max(1, workers) * max(1, shards_per_worker)
        )
        bounds = _bounds(len(plan.candidates), n_shards)
        remaining = None
        if timeout is not None:
            remaining = max(timeout - (time.perf_counter() - started), 0.0)
        if workers <= 1:
            mode = "inline"
            tasks = [
                ShardTask(
                    uid=0,
                    index=i,
                    query=query,
                    engine=driver.name,
                    exact_estimates=driver._exact_estimates,
                    variable=plan.variable.name,
                    span=None,
                    candidates=tuple(plan.candidates[start:stop]),
                    budget=remaining,
                    limit=engine_limit,
                    traced=trace is not None,
                )
                for i, (start, stop) in enumerate(bounds)
            ]
            outcomes = [run_shard(task, db=db) for task in tasks]
        else:
            pool = pool_for(db, workers)
            segment = pool.publish_candidates(plan.candidates)
            tasks = [
                ShardTask(
                    uid=pool.next_uid(),
                    index=i,
                    query=query,
                    engine=driver.name,
                    exact_estimates=driver._exact_estimates,
                    variable=plan.variable.name,
                    span=(segment, start, stop),
                    candidates=None,
                    budget=remaining,
                    limit=engine_limit,
                    traced=trace is not None,
                )
                for i, (start, stop) in enumerate(bounds)
            ]
            outcomes = pool.map_shards(tasks)
            mode = pool.start_method

    # ------------------------------------------------------------------
    # merge (shard order == candidate order == serial order)
    # ------------------------------------------------------------------
    merged = EvaluationStats()
    merged.sim_variables = parent.sim_variables
    merged.attempts = parent.attempts
    merged.leap_calls = parent.leap_calls
    merged.timed_out = parent.timed_out
    order: list[Var] = list(parent.first_descent_order)
    solutions: list[dict[Var, int]] = []
    shards_meta: list[dict[str, Any]] = []
    for outcome in outcomes:
        merged.solutions += outcome.solutions_found
        merged.bindings += outcome.bindings
        merged.attempts += outcome.attempts
        merged.leap_calls += outcome.leap_calls
        merged.timed_out = merged.timed_out or outcome.timed_out
        if len(order) == 1 and outcome.first_descent:
            order.extend(Var(name) for name in outcome.first_descent)
        solutions.extend(unpack_solutions(outcome.var_names, outcome.packed))
        start, stop = bounds[outcome.index]
        shards_meta.append(
            {
                "shard": outcome.index,
                "candidates": stop - start,
                "solutions": outcome.solutions_found,
                "streamed_chunks": outcome.n_chunks,
                "elapsed_s": outcome.elapsed,
            }
        )
    merged.first_descent_order = order
    merged.elapsed = time.perf_counter() - started
    meta: dict[str, Any] = {
        "workers": workers,
        "mode": mode,
        "first_variable": (
            None if plan.variable is None else plan.variable.name
        ),
        "candidates": len(plan.candidates),
        "shards": shards_meta,
    }
    final = _finalize(solutions, project, distinct, limit)
    if trace is not None:
        merge_shard_traces(
            trace,
            [o.trace for o in outcomes if o.trace is not None],
        )
        trace.meta["parallel"] = meta
        trace.add_phase("evaluate", merged.elapsed)
        trace.finish(merged)
    return ParallelOutcome(solutions=final, stats=merged, meta=meta)
