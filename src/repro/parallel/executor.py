"""Domain-sharded parallel LTJ execution over a multiprocessing pool.

The decomposition (Mhedhbi & Salihoglu, VLDB 2019; the LogicBlox
"old dog" line): LTJ's search tree is embarrassingly parallel at the
first variable. The parent process replays the serial engine's depth-0
work verbatim — ordering choice, full leapfrog intersection of the first
variable — then splits the candidate list into contiguous shards and
hands each to a pool worker, which binds its candidates and searches
depth >= 1 with the identical compile order and ordering strategy.
Merging shard solution streams *in shard order* reproduces the serial
solution list byte for byte, and summing shard counters with the
parent's reproduces the serial stats and trace op counts for any pool
size (see :mod:`repro.obs.merge` for the invariance argument).

Pools are cached per (database, pool size): the cache holds a strong
reference to the database (so the id-based key can never alias a
collected object) and workers inherit the indexes by fork where
available, falling back to pickling through the succinct structures'
cache-dropping ``__getstate__``.

Known, documented divergences from the serial engine:

* under a ``timeout``, partial results may differ (shards poll their
  own budgets);
* under a ``limit``, the returned solutions are identical but the
  stats may over-count (shards cap at ``limit`` each, the serial
  engine stops globally).

Full enumerations — the differential/equivalence suites, the forced
CI smoke mode — are byte-identical.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.ltj.engine import LTJEngine
from repro.ltj.stats import EvaluationStats
from repro.obs.merge import merge_shard_traces
from repro.obs.trace import (
    attach_wavelets,
    instrument_relations,
    wavelet_targets,
)
from repro.parallel.worker import (
    QueryTask,
    ShardOutcome,
    ShardTask,
    _init_worker,
    run_query,
    run_shard,
)
from repro.query.model import ExtendedBGP, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.database import GraphDatabase

#: Default pool size of the parallel engine and the scheduler.
DEFAULT_WORKERS = 2

#: Contiguous shards handed out per worker. Finer than the pool size for
#: load balancing; any split yields the same merged results/counters.
SHARDS_PER_WORKER = 2


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------
class WorkerPool:
    """A lazily started multiprocessing pool bound to one database."""

    def __init__(self, db: "GraphDatabase", workers: int) -> None:
        self._db = db  # strong ref: pins id(db) while the pool is cached
        self.workers = max(2, int(workers))
        self.start_method = "unstarted"
        self._pool: Any = None

    def _start(self) -> Any:
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
                self.start_method = "fork"
            except ValueError:  # pragma: no cover - non-fork platforms
                ctx = multiprocessing.get_context("spawn")
                self.start_method = "spawn"
            self._pool = ctx.Pool(
                self.workers,
                initializer=_init_worker,
                initargs=(self._db,),
            )
        return self._pool

    def map_shards(self, tasks: Sequence[ShardTask]) -> list[ShardOutcome]:
        """Run shard tasks, returning outcomes in task (shard) order."""
        pool = self._start()
        return list(pool.map(run_shard, tasks, chunksize=1))

    def submit_query(self, task: QueryTask) -> Any:
        """Submit one whole-query task; returns an ``AsyncResult``."""
        pool = self._start()
        return pool.apply_async(run_query, (task,))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


_POOLS: "OrderedDict[tuple[int, int], WorkerPool]" = OrderedDict()

#: Cached pools (each holds ``workers`` processes). Small LRU so runs
#: that churn through many databases (forced-mode test suites) do not
#: accumulate processes.
_MAX_POOLS = 4


def pool_for(db: "GraphDatabase", workers: int) -> WorkerPool:
    """Get-or-create the cached pool for ``(db, workers)``."""
    key = (id(db), workers)
    pool = _POOLS.get(key)
    if pool is None:
        pool = WorkerPool(db, workers)
        _POOLS[key] = pool
        while len(_POOLS) > _MAX_POOLS:
            _key, evicted = _POOLS.popitem(last=False)
            evicted.close()
    else:
        _POOLS.move_to_end(key)
    return pool


def shutdown_pools() -> None:
    """Close every cached pool (atexit hook; also handy in tests)."""
    while _POOLS:
        _key, pool = _POOLS.popitem(last=False)
        pool.close()


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# sharded evaluation
# ----------------------------------------------------------------------
@dataclass
class ParallelOutcome:
    """Merged outcome of a domain-sharded evaluation."""

    solutions: list[dict[Var, int]]
    stats: EvaluationStats
    meta: dict[str, Any] = field(default_factory=dict)
    """Execution shape: workers, start method, per-shard breakdown."""


def _split(
    candidates: tuple[int, ...], n_shards: int
) -> list[tuple[int, ...]]:
    """Contiguous near-equal slices preserving candidate order."""
    base, extra = divmod(len(candidates), n_shards)
    shards: list[tuple[int, ...]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(candidates[start : start + size])
        start += size
    return shards


def _finalize(
    solutions: list[dict[Var, int]],
    project: list | None,
    distinct: bool,
    limit: int | None,
) -> list[dict[Var, int]]:
    """Apply projection/dedup/limit exactly as the serial engines do.

    Mirrors ``_RingEngineBase._collect``: without ``project and
    distinct`` the serial engine caps the *raw* enumeration at ``limit``
    (so dedup may return fewer); with both, it dedups the full stream
    and truncates after. Replicating that shape keeps the parallel
    output byte-identical.
    """
    if limit is not None and not (project and distinct):
        solutions = solutions[:limit]
    if not project and not distinct:
        return solutions
    out: list[dict[Var, int]] = []
    seen: set[tuple] = set()
    for solution in solutions:
        if project:
            solution = {v: solution[v] for v in project}
        if distinct:
            key = tuple(sorted((v.name, c) for v, c in solution.items()))
            if key in seen:
                continue
            seen.add(key)
        out.append(solution)
        if limit is not None and len(out) >= limit:
            break
    return out


def evaluate_parallel(
    driver,
    query: ExtendedBGP,
    *,
    workers: int = DEFAULT_WORKERS,
    timeout: float | None = None,
    limit: int | None = None,
    project: list | None = None,
    distinct: bool = False,
    trace=None,
    shards_per_worker: int = SHARDS_PER_WORKER,
) -> ParallelOutcome | None:
    """Evaluate ``query`` domain-sharded, using ``driver``'s compile
    order and ordering strategy (``driver`` is a serial Ring engine).

    Returns ``None`` when the query cannot be sharded — it has no
    variables — in which case the caller should evaluate serially.
    The caller owns the trace's ``engine``/``query`` labels; this
    function records counters, shard metadata (``meta["parallel"]``)
    and finalizes the trace from the merged stats.
    """
    db = driver._db
    relations = driver.compile(query)
    engine = LTJEngine(
        relations,
        ordering=driver._ordering(query),
        timeout=timeout,
        trace=trace,
    )
    if not engine.variables:
        return None
    started = time.perf_counter()
    if trace is None:
        attached = nullcontext()
    else:
        if trace.query is None:
            trace.query = repr(query)
        instrument_relations(trace, relations)
        attached = attach_wavelets(wavelet_targets(trace, db, query))
    with attached:
        plan = engine.first_level()
    parent = engine.stats

    shard_lists: list[tuple[int, ...]] = []
    outcomes: list[ShardOutcome] = []
    mode = "empty"
    engine_limit = None if (project and distinct) else limit
    if plan.variable is not None and plan.candidates and not parent.timed_out:
        n_shards = min(
            len(plan.candidates), max(1, workers) * max(1, shards_per_worker)
        )
        shard_lists = _split(plan.candidates, n_shards)
        remaining = None
        if timeout is not None:
            remaining = max(timeout - (time.perf_counter() - started), 0.0)
        tasks = [
            ShardTask(
                index=i,
                query=query,
                engine=driver.name,
                exact_estimates=driver._exact_estimates,
                variable=plan.variable.name,
                candidates=chunk,
                budget=remaining,
                limit=engine_limit,
                traced=trace is not None,
            )
            for i, chunk in enumerate(shard_lists)
        ]
        if workers <= 1:
            mode = "inline"
            outcomes = [run_shard(task, db=db) for task in tasks]
        else:
            pool = pool_for(db, workers)
            outcomes = pool.map_shards(tasks)
            mode = pool.start_method

    # ------------------------------------------------------------------
    # merge (shard order == candidate order == serial order)
    # ------------------------------------------------------------------
    merged = EvaluationStats()
    merged.sim_variables = parent.sim_variables
    merged.attempts = parent.attempts
    merged.leap_calls = parent.leap_calls
    merged.timed_out = parent.timed_out
    order: list[Var] = list(parent.first_descent_order)
    solutions: list[dict[Var, int]] = []
    shards_meta: list[dict[str, Any]] = []
    for outcome in outcomes:
        merged.solutions += outcome.solutions_found
        merged.bindings += outcome.bindings
        merged.attempts += outcome.attempts
        merged.leap_calls += outcome.leap_calls
        merged.timed_out = merged.timed_out or outcome.timed_out
        if len(order) == 1 and outcome.first_descent:
            order.extend(Var(name) for name in outcome.first_descent)
        solutions.extend(
            {Var(name): value for name, value in solution.items()}
            for solution in outcome.solutions
        )
        shards_meta.append(
            {
                "shard": outcome.index,
                "candidates": len(shard_lists[outcome.index]),
                "solutions": outcome.solutions_found,
                "elapsed_s": outcome.elapsed,
            }
        )
    merged.first_descent_order = order
    merged.elapsed = time.perf_counter() - started
    meta: dict[str, Any] = {
        "workers": workers,
        "mode": mode,
        "first_variable": (
            None if plan.variable is None else plan.variable.name
        ),
        "candidates": len(plan.candidates),
        "shards": shards_meta,
    }
    final = _finalize(solutions, project, distinct, limit)
    if trace is not None:
        merge_shard_traces(
            trace,
            [o.trace for o in outcomes if o.trace is not None],
        )
        trace.meta["parallel"] = meta
        trace.add_phase("evaluate", merged.elapsed)
        trace.finish(merged)
    return ParallelOutcome(solutions=final, stats=merged, meta=meta)
